//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build sandbox for this repository cannot reach the crates
//! registry, so the workspace vendors the slice of the Criterion API its
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of Criterion's statistical analysis, each benchmark is run
//! for a fixed number of timed iterations (after warmup) and the mean
//! and minimum wall-clock time per iteration are printed. That is enough
//! to compare hot paths before and after a change in this repository.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    target: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per invocation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: one untimed call.
        black_box(f());
        let iters = self.target.max(1);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) -> Summary {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return Summary { name: name.to_string(), mean_ns: 0.0, min_ns: 0.0, samples: 0 };
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        println!("{name:<44} mean {:>12?}   min {:>12?}", mean, min);
        Summary {
            name: name.to_string(),
            mean_ns: mean.as_secs_f64() * 1e9,
            min_ns: min.as_secs_f64() * 1e9,
            samples: self.samples.len(),
        }
    }
}

/// Recorded result of one benchmark: per-iteration wall-clock statistics.
///
/// Summaries accumulate on the [`Criterion`] driver
/// ([`Criterion::summaries`]) so a custom `main` can compute derived
/// quantities (speedup ratios) and write machine-readable artifacts —
/// real Criterion exposes this through its JSON output directory instead.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark name (`group/id` for grouped benchmarks).
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Minimum wall-clock time per iteration, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// Names a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
    summaries: Vec<Summary>,
}

impl Criterion {
    /// Overrides the default per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let s = run_one(name, self.effective_samples(), &mut f);
        self.summaries.push(s);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: 0 }
    }

    /// All summaries recorded so far, in execution order.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    /// The summary of the named benchmark, if it ran.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.iter().find(|s| s.name == name)
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 { 10 } else { self.sample_size }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let s = run_one(&full, self.effective_samples(), &mut f);
        self.parent.summaries.push(s);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        let s = run_one(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self.parent.summaries.push(s);
        self
    }

    /// Ends the group (report is printed as benchmarks run).
    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 { self.parent.effective_samples() } else { self.sample_size }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) -> Summary {
    let mut bencher = Bencher { target: samples, samples: Vec::with_capacity(samples) };
    f(&mut bencher);
    bencher.report(name)
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| b.iter(|| n + n));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn summaries_are_recorded() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("a", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_function("b", |b| b.iter(|| 2 + 2));
        g.finish();
        assert_eq!(c.summaries().len(), 2);
        assert_eq!(c.summary("a").unwrap().samples, 2);
        assert!(c.summary("g/b").is_some());
        assert!(c.summary("g/b").unwrap().min_ns <= c.summary("g/b").unwrap().mean_ns);
    }
}
