//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build sandbox for this repository has no access to the crates
//! registry, so the workspace vendors the small slice of the proptest API
//! its property tests actually use: the [`proptest!`] macro, range /
//! tuple / collection strategies, `prop_map` / `prop_flat_map`
//! combinators, `any::<T>()`, and the `prop_assert*` family.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **Deterministic sampling.** Each test derives its RNG seed from the
//!   test's name, so a failure reproduces on every run. There is no
//!   persistence file. Case *counts* are tunable: the default config and
//!   [`ProptestConfig::env_cases`] honour `LANCET_PROPTEST_CASES`
//!   (upstream's `PROPTEST_CASES` is not consulted), so CI can crank up
//!   coverage without editing tests — sampled inputs for the first `N`
//!   cases are identical regardless of the count.
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   embedded in the panic message instead of searching for a minimal
//!   counterexample.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit generator (SplitMix64) used to drive sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires n > 0");
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of sampled values for one test argument.
///
/// This is the shim's analogue of proptest's `Strategy`: `sample` draws a
/// value directly instead of building a shrinkable value tree.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Samples a value, then samples from the strategy `f` builds from it
    /// (proptest's `prop_flat_map`).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (proptest's `any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors, mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification for [`vec`]: an exact length or a range.
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                Strategy::sample(self, rng)
            }
        }

        /// Strategy producing `Vec`s of values drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `Vec` strategy with the given element strategy and length spec.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// A test-case failure or rejection, mirroring proptest's `TestCaseError`
/// closely enough that helper functions can return
/// `Result<(), TestCaseError>` and be `?`-chained from a [`proptest!`]
/// body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy an assumption; the case is
    /// skipped, not failed.
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (skipped case).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::env_cases(32)
    }
}

impl ProptestConfig {
    /// A configuration running exactly `cases` sampled cases (ignores the
    /// environment).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A configuration running `LANCET_PROPTEST_CASES` cases, falling
    /// back to `default` when the variable is unset, empty, unparsable,
    /// or zero. Lets CI scale property coverage up without code changes;
    /// determinism is unaffected (case `i` sees the same inputs at every
    /// count).
    pub fn env_cases(default: u32) -> Self {
        let cases = std::env::var("LANCET_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default);
        ProptestConfig { cases }
    }
}

/// Drives the sampled cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    master: TestRng,
}

impl TestRunner {
    /// Creates a runner whose RNG seed derives from `name`, so a given
    /// test always sees the same inputs.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRunner { config, master: TestRng::seed(h.finish() ^ 0x5EED_1A5C_E715_0000) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// A fresh per-case RNG.
    pub fn next_rng(&mut self) -> TestRng {
        TestRng::seed(self.master.next_u64())
    }
}

/// Defines property tests: `fn name(pattern in strategy, ...) { body }`
/// items become `#[test]` functions running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for case in 0..runner.cases() {
                let mut rng = runner.next_rng();
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                // An immediately invoked closure returning a `Result` so
                // bodies can `?`-chain helpers and `prop_assume!` can skip
                // the case with an early `return`.
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                match run() {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("case {case}: {reason}");
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRunner::new(ProptestConfig::default(), "x");
        let mut b = TestRunner::new(ProptestConfig::default(), "x");
        assert_eq!(a.next_rng().next_u64(), b.next_rng().next_u64());
    }

    #[test]
    fn env_cases_parses_and_falls_back() {
        // All variants in one test: process-global env mutation is not
        // safe under the parallel test harness otherwise.
        let set = |v: Option<&str>| match v {
            Some(v) => std::env::set_var("LANCET_PROPTEST_CASES", v),
            None => std::env::remove_var("LANCET_PROPTEST_CASES"),
        };
        set(None);
        assert_eq!(ProptestConfig::env_cases(10).cases, 10, "unset ⇒ default");
        set(Some("64"));
        assert_eq!(ProptestConfig::env_cases(10).cases, 64, "valid ⇒ env value");
        assert_eq!(ProptestConfig::default().cases, 64, "default config honours env");
        set(Some(" 7 "));
        assert_eq!(ProptestConfig::env_cases(10).cases, 7, "whitespace tolerated");
        set(Some("garbage"));
        assert_eq!(ProptestConfig::env_cases(10).cases, 10, "garbage ⇒ default");
        set(Some("0"));
        assert_eq!(ProptestConfig::env_cases(10).cases, 10, "zero cases would test nothing");
        set(None);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::sample(&(-2.0f32..5.0), &mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = Strategy::sample(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself works end to end.
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..5), exact in prop::collection::vec(0u64..3, 4usize)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn flat_map_composes(pair in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            prop::collection::vec(0u32..9, r * c).prop_map(move |v| (r, c, v))
        })) {
            let (r, c, v) = pair;
            prop_assert_eq!(v.len(), r * c);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
