//! Differential conformance suite for tile-granular overlap.
//!
//! The tile scheduler (`lancet_core::apply_tile_schedule`) promises that
//! splitting uniform all-to-all → expert-FFN → all-to-all segments into
//! capacity tiles changes *scheduling only*: for every zoo model, the
//! tile-scheduled plan's executed forward must be **bit-identical** to
//! the partition-level plan's, at every tile count and worker count, and
//! `tiles = 1` must degenerate to the exact partition-level schedule —
//! op-order equality of the printed graph, not just equal numerics.
//!
//! Weights and inputs are bound by *name* (FNV-1a of the tensor name
//! seeds the RNG), because the tile rewrite renumbers tensor ids and the
//! two plans must still receive identical values.

use lancet_repro::core::{Lancet, LancetOptions, TileSchedule};
use lancet_repro::cost::ClusterSpec;
use lancet_repro::exec::{Bindings, Executor};
use lancet_repro::ir::{to_text, GateKind, Graph, TensorKind};
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::tensor::{Tensor, TensorRng};

/// Model zoo: every architectural axis the scheduler touches — switch,
/// top-k and batch-prioritized routing, shared experts, SwiGLU experts
/// (mixtral), multi-device expert parallelism.
fn zoo() -> Vec<(&'static str, GptMoeConfig)> {
    vec![
        ("tiny-switch", GptMoeConfig::tiny(2, GateKind::Switch)),
        ("tiny-top2-shared", GptMoeConfig::tiny(2, GateKind::TopK { k: 2 }).with_shared_expert(true)),
        ("tiny-bpr", GptMoeConfig::tiny(2, GateKind::BatchPrioritized)),
        ("mixtral-tiny", GptMoeConfig::mixtral_tiny(2)),
    ]
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Name-keyed deterministic binding: identical tensor values regardless
/// of how a rewrite renumbered ids. Mirrors `init_weights`' layout
/// conventions (expert weights per-device, everything else replicated);
/// inputs get small non-negative values valid as token/target ids.
fn bind(graph: &Graph, devices: usize, seed: u64) -> Bindings {
    let mut b = Bindings::new(devices);
    for t in graph.tensors() {
        let h = fnv1a(&t.name);
        match t.kind {
            TensorKind::Weight => {
                let rank = t.shape.rank();
                let fan_in =
                    if rank >= 2 { t.shape.dim(rank - 2) } else { t.shape.volume().max(1) };
                let std = 1.0 / (fan_in as f32).sqrt();
                if t.name.contains("expert") {
                    for d in 0..devices {
                        let salt = (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let mut rng = TensorRng::seed(seed ^ h ^ salt);
                        b.set(d, t.id, rng.normal(t.shape.clone(), std));
                    }
                } else {
                    let mut rng = TensorRng::seed(seed ^ h);
                    b.set_all(t.id, rng.normal(t.shape.clone(), std));
                }
            }
            TensorKind::Input => {
                let n = t.shape.volume();
                let vals: Vec<f32> =
                    (0..n).map(|i| ((i as u64 * 7919 + seed * 31 + h) % 11) as f32).collect();
                b.set_all(t.id, Tensor::from_vec(t.shape.dims().to_vec(), vals).unwrap());
            }
            _ => {}
        }
    }
    b
}

/// Executes the graph's forward pass and returns the final instruction's
/// outputs on every device as raw f32 bits.
fn run_forward(g: &Graph, devices: usize, seed: u64) -> Vec<Vec<u32>> {
    let bindings = bind(g, devices, seed);
    let out = Executor::new(g, devices).unwrap().run(bindings).unwrap();
    let last = g.instrs().last().expect("non-empty graph");
    let mut result = Vec::new();
    for d in 0..devices {
        for &o in &last.outputs {
            result.push(out.get(d, o).unwrap().data().iter().map(|x| x.to_bits()).collect());
        }
    }
    result
}

fn optimizer(cfg: &GptMoeConfig, tile: Option<TileSchedule>, workers: usize) -> Lancet {
    let mut options = LancetOptions { tile, ..LancetOptions::default() };
    options.partition.workers = workers;
    Lancet::new(ClusterSpec::v100(2), cfg.gpus, options)
}

fn forward_graph(cfg: &GptMoeConfig) -> Graph {
    build_forward(cfg).expect("zoo model builds").graph
}

/// The headline differential contract: executed forward outputs are
/// bit-identical between partition-level and tile-scheduled plans, for
/// every zoo model at every tile count. Also asserts the sweep is not
/// vacuous — at least one (model, K) pair must actually tile a segment.
#[test]
fn tile_schedule_is_bit_identical_across_zoo_and_tile_counts() {
    let mut tiled_somewhere = 0usize;
    for (name, cfg) in zoo() {
        let base = optimizer(&cfg, None, 0)
            .optimize_forward(forward_graph(&cfg))
            .expect("partition-level plan");
        assert!(base.tile.is_none(), "{name}: no tile report without a schedule");
        let reference = run_forward(&base.graph, cfg.gpus, 0xD1FF);
        for k in [1usize, 2, 4, 8] {
            let tiled = optimizer(&cfg, Some(TileSchedule::new(k)), 0)
                .optimize_forward(forward_graph(&cfg))
                .expect("tile-scheduled plan");
            let report = tiled.tile.expect("tile report present when scheduled");
            if report.segments > 0 {
                tiled_somewhere += 1;
            }
            let got = run_forward(&tiled.graph, cfg.gpus, 0xD1FF);
            assert_eq!(reference, got, "{name}: K={k} changed executed forward bits");
        }
    }
    assert!(tiled_somewhere > 0, "sweep vacuous: no zoo plan had a tileable segment");
}

/// `tiles = 1` must be the *exact* partition-level schedule: the printed
/// op order is equal, not merely the numerics.
#[test]
fn tiles_one_degenerates_to_partition_level_schedule() {
    for (name, cfg) in zoo() {
        let base = optimizer(&cfg, None, 0).optimize_forward(forward_graph(&cfg)).unwrap();
        let one = optimizer(&cfg, Some(TileSchedule::new(1)), 0)
            .optimize_forward(forward_graph(&cfg))
            .unwrap();
        assert_eq!(
            to_text(&base.graph),
            to_text(&one.graph),
            "{name}: K=1 must emit the partition-level op order exactly"
        );
        let report = one.tile.unwrap();
        assert_eq!(report.segments, 0, "{name}");
        assert_eq!(report.ops_added, 0, "{name}");
    }
}

/// Tile-scheduled plans are identical at every DP worker count (the
/// parallel partition search is deterministic, and the tile rewrite sits
/// on top of it deterministically).
#[test]
fn tiled_plans_identical_across_worker_counts() {
    for (name, cfg) in zoo() {
        let reference = optimizer(&cfg, Some(TileSchedule::new(4)), 1)
            .optimize_forward(forward_graph(&cfg))
            .unwrap();
        for workers in [2usize, 4] {
            let got = optimizer(&cfg, Some(TileSchedule::new(4)), workers)
                .optimize_forward(forward_graph(&cfg))
                .unwrap();
            assert_eq!(
                to_text(&reference.graph),
                to_text(&got.graph),
                "{name}: workers={workers} changed the tiled plan"
            );
        }
    }
}

/// The option plumbing: the default keeps partition-level scheduling
/// (when `LANCET_TILE_COUNT` is not exported — guaranteed in tests), and
/// decode-serving options force tiling off for tensor-id stability.
#[test]
fn option_defaults_keep_partition_level() {
    if std::env::var("LANCET_TILE_COUNT").is_err() {
        assert!(LancetOptions::default().tile.is_none());
    }
    assert!(LancetOptions::decode_serving().tile.is_none());
}
