//! Cross-crate integration: the complete Lancet flow from model
//! construction through optimization to simulated measurement.

use lancet_repro::baselines::{run_system, System};
use lancet_repro::cost::ClusterKind;
use lancet_repro::ir::GateKind;
use lancet_repro::models::GptMoeConfig;

fn benchmark_cfg(gate: GateKind) -> GptMoeConfig {
    GptMoeConfig::gpt2_s_moe(16, gate).with_layers(6).with_batch(8)
}

#[test]
fn lancet_dominates_every_baseline_on_both_clusters() {
    for cluster in [ClusterKind::A100, ClusterKind::V100] {
        let cfg = benchmark_cfg(GateKind::Switch);
        let lancet = run_system(System::Lancet, &cfg, cluster).unwrap();
        for baseline in [System::DeepSpeed, System::Tutel, System::Raf] {
            let out = run_system(baseline, &cfg, cluster).unwrap();
            assert!(
                lancet.report.iteration_time < out.report.iteration_time,
                "{cluster}: Lancet {:.1}ms !< {} {:.1}ms",
                lancet.report.iteration_time * 1e3,
                baseline.name(),
                out.report.iteration_time * 1e3
            );
        }
    }
}

#[test]
fn speedup_magnitude_matches_paper_band() {
    // The paper reports 1.1–1.3x end-to-end vs the best baseline at
    // multi-node scale; assert we land in a generous version of that band
    // (regression guard for calibration drift).
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(16);
    let lancet = run_system(System::Lancet, &cfg, ClusterKind::V100).unwrap();
    let best_baseline = [System::DeepSpeed, System::Tutel, System::Raf]
        .into_iter()
        .map(|s| run_system(s, &cfg, ClusterKind::V100).unwrap().report.iteration_time)
        .fold(f64::INFINITY, f64::min);
    let speedup = best_baseline / lancet.report.iteration_time;
    assert!(
        (1.05..1.6).contains(&speedup),
        "speedup {speedup:.2}x outside expected band"
    );
}

#[test]
fn bpr_gate_still_accelerates() {
    // Batch-prioritized routing restricts partitioning to after the MoE
    // layer (paper Fig. 4c) but Lancet must still win.
    let cfg = benchmark_cfg(GateKind::BatchPrioritized);
    let lancet = run_system(System::Lancet, &cfg, ClusterKind::V100).unwrap();
    let raf = run_system(System::Raf, &cfg, ClusterKind::V100).unwrap();
    assert!(lancet.report.iteration_time < raf.report.iteration_time);
}

#[test]
fn cost_model_prediction_is_tight() {
    let cfg = benchmark_cfg(GateKind::Switch);
    let out = run_system(System::Lancet, &cfg, ClusterKind::V100).unwrap();
    let predicted = out.predicted.unwrap();
    let measured = out.report.iteration_time;
    let err = (predicted - measured).abs() / measured;
    assert!(err < 0.10, "prediction error {:.1}% ≥ 10%", err * 100.0);
}

#[test]
fn weak_scaling_increases_iteration_time() {
    // More nodes → more inter-node all-to-all traffic → slower iterations
    // for everyone (the premise of the weak-scaling figures).
    let mut prev = 0.0;
    for gpus in [8usize, 16, 32] {
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch).with_layers(6).with_batch(8);
        let t = run_system(System::Raf, &cfg, ClusterKind::V100)
            .unwrap()
            .report
            .iteration_time;
        assert!(t > prev, "{gpus} GPUs: {t} !> {prev}");
        prev = t;
    }
}

#[test]
fn exposed_communication_reduction_is_substantial() {
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(16);
    let lancet = run_system(System::Lancet, &cfg, ClusterKind::V100).unwrap();
    let raf = run_system(System::Raf, &cfg, ClusterKind::V100).unwrap();
    let reduction = 1.0 - lancet.report.exposed_comm() / raf.report.exposed_comm();
    assert!(
        reduction > 0.35,
        "non-overlapped comm reduction {:.0}% too small",
        reduction * 100.0
    );
}

/// FNV-1a 64 over the printed program — stable across processes and
/// platforms, unlike `DefaultHasher`.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn default_plan_bytes_are_golden() {
    use lancet_repro::core::{Lancet, LancetOptions};
    use lancet_repro::cost::ClusterSpec;
    use lancet_repro::models::build_forward;

    let cfg = benchmark_cfg(GateKind::Switch);
    let lancet = Lancet::new(
        ClusterSpec::v100(2),
        cfg.gpus,
        LancetOptions { tile: None, ..Default::default() },
    );
    let fwd = build_forward(&cfg).unwrap().graph;
    let out = lancet.optimize(fwd).unwrap();
    let hash = fnv1a(&lancet_repro::ir::to_text(&out.graph));
    // The partition-level training plan for the benchmark config, byte
    // for byte. This is the compatibility surface the tile scheduler (and
    // every future pass) must not move by default: serving plan caches
    // and decode snapshots key on stable tensor ids. If a change to the
    // optimizer is *intentional*, re-run this test with `--nocapture`,
    // confirm the printed hash is identical across two separate runs, and
    // update the constant together with a CHANGELOG note.
    println!("GOLDEN {hash:#018x}");
    assert_eq!(
        hash, 0x8dcae55ff5ce38d2,
        "the default partition-level plan changed: either an optimizer \
         pass regressed, or a deliberate change needs this golden hash \
         (and dependent plan caches) re-baselined"
    );
}
