//! Smoke tests for the extension studies (quick mode), asserting their
//! qualitative claims hold.

use lancet_bench::figs::extensions;

#[test]
fn shared_expert_improves_overlap() {
    let records = extensions::shared_expert(true);
    let exposed = |sys: &str| {
        records
            .iter()
            .find(|r| r.system == sys)
            .and_then(|r| r.exposed_comm_ms)
            .unwrap()
    };
    // The shared branch alone hides some communication even without
    // Lancet, and Lancet+shared is the best of all.
    assert!(exposed("RAF+shared") < exposed("RAF"));
    assert!(exposed("Lancet+shared") < exposed("RAF+shared"));
}

#[test]
fn capacity_factor_speedups_all_above_one() {
    let records = extensions::capacity_factor(true);
    assert!(!records.is_empty());
    // Lancet runs recorded at every factor.
    for r in &records {
        assert!(r.iteration_ms.unwrap() > 0.0);
    }
}

#[test]
fn hyperparams_tradeoff_recorded() {
    let records = extensions::hyperparams(true);
    assert!(records.len() >= 2);
    for r in &records {
        assert!(r.opt_time_s.unwrap() > 0.0);
    }
    // Smaller ρ explores fewer plans → strictly less optimization time.
    let t_of = |sys: &str| {
        records
            .iter()
            .find(|r| r.system == sys)
            .and_then(|r| r.opt_time_s)
            .unwrap()
    };
    assert!(t_of("rho2_gamma5_iota24") < t_of("rho8_gamma5_iota24"));
}

#[test]
fn allreduce_interference_preserves_lancet_edge() {
    let records = extensions::allreduce_interference(true);
    let iter_of = |sys: &str| {
        records
            .iter()
            .find(|r| r.system == sys)
            .and_then(|r| r.iteration_ms)
            .unwrap()
    };
    assert!(iter_of("Lancet") < iter_of("RAF"));
    assert!(iter_of("Lancet+allreduce") < iter_of("RAF+allreduce"));
    // All-reduce traffic slows everything down.
    assert!(iter_of("RAF+allreduce") > iter_of("RAF"));
}

#[test]
fn fsdp_prefetch_and_lancet_recover_time() {
    let records = extensions::fsdp(true);
    let iter_of = |sys: &str| {
        records
            .iter()
            .find(|r| r.system == sys)
            .and_then(|r| r.iteration_ms)
            .unwrap()
    };
    let none = iter_of("FSDP, no prefetch");
    let block = iter_of("FSDP, prefetch L=6 (1 block)");
    let lancet = iter_of("FSDP, prefetch L=6 + Lancet");
    assert!(block < none, "block prefetch {block} !< none {none}");
    assert!(lancet < block, "lancet {lancet} !< prefetch {block}");
}

#[test]
fn hierarchical_wins_small_messages() {
    let records = extensions::hierarchical_a2a(true);
    // The smallest profiled message must favour the hierarchical scheme
    // end-to-end: its sweep entries are sorted by size.
    let sweep: Vec<&lancet_bench::Record> =
        records.iter().filter(|r| r.system == "hierarchical").collect();
    assert!(sweep.len() >= 3);
    let e2e_naive = records
        .iter()
        .find(|r| r.system == "e2e-naive")
        .and_then(|r| r.iteration_ms)
        .unwrap();
    let e2e_hier = records
        .iter()
        .find(|r| r.system == "e2e-hierarchical")
        .and_then(|r| r.iteration_ms)
        .unwrap();
    assert!(e2e_hier <= e2e_naive);
}

#[test]
fn recompute_trades_memory_for_time() {
    let records = extensions::recompute(true);
    let of = |sys: &str| records.iter().find(|r| r.system == sys).unwrap();
    let base = of("no checkpointing");
    let ckpt = of("checkpoint every block");
    let lancet = of("checkpoint + Lancet");
    assert!(ckpt.iteration_ms.unwrap() > base.iteration_ms.unwrap());
    assert!(lancet.iteration_ms.unwrap() < ckpt.iteration_ms.unwrap());
}
