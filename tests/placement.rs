//! Property tests for the expert-placement pipeline's determinism
//! contract (docs/ARCHITECTURE.md, "Expert placement & affinity
//! routing"): the same histogram seed and worker count must yield a
//! bit-identical [`PlacementPlan`], and the skewed-routing simulation
//! win over uniform placement must reproduce exactly across replays.
//!
//! Runs 10 cases by default; set `LANCET_PROPTEST_CASES` to raise the
//! coverage without editing this file.

use lancet_repro::cost::{optimize_placement, PlacementOptions, PlacementPlan};
use lancet_repro::cost::{ClusterKind, ClusterSpec, CommModel, ComputeModel};
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::moe::{RoutingHistogram, Workload};
use lancet_repro::sim::{SimConfig, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::env_cases(10))]

    /// Same seed + worker count ⇒ the histogram, the search, and the
    /// resulting plan are all bit-identical. The search is also
    /// swap-only, so every device keeps its uniform expert count (the
    /// memory-capacity invariant).
    #[test]
    fn placement_search_is_deterministic(
        seed in any::<u64>(),
        layers in 1usize..5,
        experts_pow in 4u32..6,
        devices_pow in 3u32..5,
        tokens in 256usize..1024,
    ) {
        let experts = 1usize << experts_pow;
        let devices = (1usize << devices_pow).min(experts);
        let collect = || {
            RoutingHistogram::collect(
                Workload::Zipf { exponent: 1.2 }, layers, experts, tokens, 3072, seed,
            )
            .unwrap()
            .into_traffic()
        };
        let traffic = collect();
        prop_assert_eq!(&traffic, &collect(), "histogram collection diverged");

        let opts = PlacementOptions::default();
        let (plan_a, report_a) = optimize_placement(&traffic, devices, 8, &opts);
        let (plan_b, report_b) = optimize_placement(&traffic, devices, 8, &opts);
        prop_assert_eq!(&plan_a, &plan_b, "placement search diverged");
        prop_assert_eq!(report_a.moves, report_b.moves);
        prop_assert!(report_a.optimized.objective <= report_a.uniform.objective + 1e-9);

        // Swap-only: per-device expert counts match the uniform plan's.
        let uniform = PlacementPlan::uniform(layers, experts, devices);
        for l in 0..layers {
            let mut want = vec![0usize; devices];
            let mut got = vec![0usize; devices];
            for e in 0..experts {
                want[uniform.device_of(l, e)] += 1;
                got[plan_a.device_of(l, e)] += 1;
            }
            prop_assert_eq!(&want, &got, "layer {} capacity changed", l);
        }
    }

    /// Replaying the same schedule under the same placement is
    /// bit-identical, and the optimized placement never simulates
    /// slower than uniform on a skewed histogram.
    #[test]
    fn skewed_sim_win_reproduces(seed in any::<u64>()) {
        let (layers, experts, devices, tokens) = (2usize, 32usize, 16usize, 512usize);
        let traffic = RoutingHistogram::collect(
            Workload::Zipf { exponent: 1.2 }, layers, experts, tokens, 3072, seed,
        )
        .unwrap()
        .into_traffic();
        let (optimized, _) =
            optimize_placement(&traffic, devices, 8, &PlacementOptions::default());
        let uniform = PlacementPlan::uniform(layers, experts, devices);

        let cfg = GptMoeConfig::tiny(devices, lancet_repro::ir::GateKind::Switch);
        let graph = build_forward(&cfg).unwrap().graph;
        let spec = ClusterSpec::of(ClusterKind::V100, devices.div_ceil(8));
        let simulate = |plan: &PlacementPlan| {
            let sim = Simulator::new(
                ComputeModel::new(spec.device.clone()),
                CommModel::new(spec.clone()),
                SimConfig::new(devices).with_placement(plan.clone(), traffic.clone()),
            );
            sim.simulate(&graph).iteration_time
        };
        let t_uniform = simulate(&uniform);
        let t_optimized = simulate(&optimized);
        prop_assert!(
            t_optimized <= t_uniform + 1e-12,
            "optimized placement simulated slower: {} vs {}",
            t_optimized,
            t_uniform
        );
        prop_assert_eq!(simulate(&uniform).to_bits(), t_uniform.to_bits());
        prop_assert_eq!(simulate(&optimized).to_bits(), t_optimized.to_bits());
    }
}

/// The pinned configuration behind `results/BENCH_placement.json` must
/// keep its *strict* simulation win (the verify.sh floor) — a fixed
/// anchor alongside the randomized non-strict property above.
#[test]
fn pinned_skewed_workload_wins_strictly() {
    let (layers, experts, devices, tokens, seed) = (4usize, 32usize, 16usize, 2048usize, 0x91ACE);
    let traffic = RoutingHistogram::collect(
        Workload::Zipf { exponent: 1.2 }, layers, experts, tokens, 3072, seed,
    )
    .unwrap()
    .into_traffic();
    let (optimized, report) =
        optimize_placement(&traffic, devices, 8, &PlacementOptions::default());
    assert!(report.optimized.objective < report.uniform.objective);

    let cfg = GptMoeConfig::tiny(devices, lancet_repro::ir::GateKind::Switch);
    let graph = build_forward(&cfg).unwrap().graph;
    let spec = ClusterSpec::of(ClusterKind::V100, devices.div_ceil(8));
    let simulate = |plan: PlacementPlan| {
        let sim = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            SimConfig::new(devices).with_placement(plan, traffic.clone()),
        );
        sim.simulate(&graph).iteration_time
    };
    let t_uniform = simulate(PlacementPlan::uniform(layers, experts, devices));
    let t_optimized = simulate(optimized);
    assert!(
        t_optimized < t_uniform,
        "pinned skewed workload lost its strict sim win: {t_optimized} vs {t_uniform}"
    );
}
