//! Smoke tests for every figure harness in quick mode: each must run,
//! produce records, and satisfy the paper's qualitative claims.

use lancet_bench::figs;
use lancet_ir::GateKind;

#[test]
fn fig02_breakdown_orders() {
    let records = figs::fig02::run(true);
    assert!(!records.is_empty());
    // All-to-all must dominate expert compute (the motivation).
    for r in &records {
        assert!(r.extra.unwrap() > 1.5, "a2a/expert ratio {:?} too low", r.extra);
    }
}

#[test]
fn fig05_capacity_passing_never_overdrops() {
    let records = figs::fig05::run(true);
    let lancet_drops: f64 = records
        .iter()
        .filter(|r| r.system == "capacity-passing")
        .map(|r| r.iteration_ms.unwrap())
        .sum();
    let direct_drops: f64 = records
        .iter()
        .filter(|r| r.system == "direct-microbatch")
        .map(|r| r.iteration_ms.unwrap())
        .sum();
    assert!(lancet_drops < direct_drops, "{lancet_drops} !< {direct_drops}");
}

#[test]
fn fig06_produces_sweep_points() {
    let records = figs::fig06::run(true);
    assert!(records.len() >= 4);
}

#[test]
fn fig11_lancet_wins_quick_grid() {
    let records = figs::fig11::run(GateKind::Switch, true);
    // For each (model, cluster): Lancet has the smallest iteration time.
    for model in ["GPT2-S-MoE", "GPT2-L-MoE"] {
        for cluster in ["A100", "V100"] {
            let of = |sys: &str| {
                records
                    .iter()
                    .find(|r| r.model == model && r.cluster == cluster && r.system == sys)
                    .and_then(|r| r.iteration_ms)
            };
            let lancet = of("Lancet").unwrap();
            for sys in ["DeepSpeed", "Tutel", "RAF"] {
                if let Some(t) = of(sys) {
                    assert!(lancet < t, "{model}/{cluster}: Lancet {lancet} !< {sys} {t}");
                }
            }
        }
    }
}

#[test]
fn fig13_overlap_ordering() {
    let records = figs::fig13::run(true);
    for model in ["GPT2-S-MoE", "GPT2-L-MoE"] {
        let exposed = |sys: &str| {
            records
                .iter()
                .find(|r| r.model == model && r.cluster == "V100" && r.system == sys)
                .and_then(|r| r.exposed_comm_ms)
                .unwrap()
        };
        assert!(exposed("Lancet") < exposed("Tutel"), "{model}");
        assert!(exposed("Tutel") < exposed("DeepSpeed"), "{model}");
    }
}

#[test]
fn fig14_prediction_error_under_10_percent() {
    let records = figs::fig14::run(true);
    for r in &records {
        let (p, m) = (r.predicted_ms.unwrap(), r.iteration_ms.unwrap());
        let err = (p - m).abs() / m;
        assert!(err < 0.10, "{}/{}: error {:.1}%", r.model, r.system, err * 100.0);
    }
}

#[test]
fn fig15_opt_time_grows_with_depth() {
    let records = figs::fig15::run(true);
    let of = |model: &str| {
        records
            .iter()
            .find(|r| r.model == model)
            .and_then(|r| r.opt_time_s)
            .unwrap()
    };
    assert!(of("GPT2-L-MoE") > of("GPT2-S-MoE"));
}

#[test]
fn fig16_combined_beats_each_alone() {
    let records = figs::fig16::run(true);
    for model in ["GPT2-S-MoE", "GPT2-L-MoE"] {
        for cluster in ["A100", "V100"] {
            let speedup = |sys: &str| {
                records
                    .iter()
                    .find(|r| r.model == model && r.cluster == cluster && r.system == sys)
                    .and_then(|r| r.extra)
                    .unwrap()
            };
            let both = speedup("Lancet");
            assert!(both >= speedup("Lancet (dW only)") - 1e-9, "{model}/{cluster}");
            assert!(both >= speedup("Lancet (partition only)") - 1e-9, "{model}/{cluster}");
            assert!(both > 1.05, "{model}/{cluster}: combined speedup {both}");
        }
    }
}
