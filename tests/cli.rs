//! End-to-end tests of the `lancet` command-line binary.

use std::process::Command;

fn lancet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lancet"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = lancet(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage: lancet"));
    assert!(stdout.contains("--gate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = lancet(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("usage: lancet"));
}

#[test]
fn bad_flag_value_reported() {
    let (ok, _, stderr) = lancet(&["optimize", "--gpus", "soon"]);
    assert!(!ok);
    assert!(stderr.contains("bad --gpus"));
}

#[test]
fn optimize_small_config_reports_passes() {
    let (ok, stdout, stderr) = lancet(&[
        "optimize", "--model", "s", "--layers", "4", "--batch", "8", "--gpus", "16", "--gantt",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("partition pass:"), "{stdout}");
    assert!(stdout.contains("dW schedule pass:"), "{stdout}");
    assert!(stdout.contains("simulated iteration:"), "{stdout}");
    assert!(stdout.contains("compute |"), "missing gantt: {stdout}");
}

#[test]
fn compare_ranks_systems() {
    let (ok, stdout, stderr) = lancet(&[
        "compare", "--model", "s", "--layers", "4", "--batch", "8", "--gpus", "16",
    ]);
    assert!(ok, "stderr: {stderr}");
    for system in ["DeepSpeed", "Tutel", "RAF", "Lancet"] {
        assert!(stdout.contains(system), "{stdout}");
    }
    assert!(stdout.contains("speedup vs best baseline"), "{stdout}");
}
