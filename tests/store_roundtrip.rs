//! Store round trip over the model zoo: pack every variant to a store
//! file, load it back through the zero-copy (mmap) path, and require the
//! loaded replica to be bit-identical to the generated one — both the
//! raw weight bits and a full forward pass through the serving runtime.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use lancet_repro::exec::Bindings;
use lancet_repro::ir::GateKind;
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::serve::{canonical_weights, CanonicalWeights, ServeConfig, ServeRuntime};
use lancet_repro::store::{open_store, write_store, StoredPacks};

const SEED: u64 = 0x57_0e;

/// The variants a store file must faithfully carry: every gate family,
/// the Mixtral-style block (RMS norm + SwiGLU + MoE-every-layer), the
/// shared-expert branch, a multi-device model (exercising the replicated
/// payload dedupe), and a scaled GPT2-S with production-sized GEMMs.
fn zoo() -> Vec<GptMoeConfig> {
    let named = |mut cfg: GptMoeConfig, name: &str| {
        cfg.name = name.into();
        cfg
    };
    vec![
        named(GptMoeConfig::tiny(1, GateKind::Switch), "zoo-switch"),
        named(GptMoeConfig::tiny(1, GateKind::TopK { k: 2 }), "zoo-top2"),
        named(GptMoeConfig::tiny(1, GateKind::Hash), "zoo-hash"),
        named(GptMoeConfig::mixtral_tiny(1), "zoo-mixtral"),
        named(GptMoeConfig::tiny(1, GateKind::Switch).with_shared_expert(true), "zoo-shared"),
        named(GptMoeConfig::tiny(2, GateKind::Switch), "zoo-2dev"),
        named(
            GptMoeConfig::gpt2_s_moe(1, GateKind::Switch)
                .with_layers(2)
                .with_vocab(128)
                .with_seq(16)
                .with_batch(2),
            "zoo-gpt2s-scaled",
        ),
    ]
}

/// Builds the prepacked panels `write_store` serializes: the same
/// prepack pass the executor runs, harvested per device by weight name.
fn pack_panels(cfg: &GptMoeConfig, canonical: &CanonicalWeights) -> StoredPacks {
    let model = build_forward(cfg).expect("model graph");
    let graph = model.graph;
    let mut bindings = Bindings::new(canonical.len());
    for id in graph.weights() {
        let def = graph.tensor(id);
        for (d, map) in canonical.iter().enumerate() {
            bindings.set(d, id, map[&def.name].clone());
        }
    }
    bindings.prepack_weights(&graph);
    let mut packs: StoredPacks = vec![HashMap::new(); canonical.len()];
    for id in graph.weights() {
        let name = &graph.tensor(id).name;
        for (d, map) in packs.iter_mut().enumerate() {
            if let Some(p) = bindings.packed(d, id) {
                map.insert(name.clone(), Arc::new(p.clone()));
            }
        }
    }
    packs
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lancet-roundtrip-{}-{tag}.lancet", std::process::id()))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(1),
        exec_workers: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn every_zoo_variant_survives_the_store_bit_identical() {
    for cfg in zoo() {
        // Generate exactly what register_model would: normalized
        // capacity factor, the runtime's deterministic weight seed.
        let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        let seed = ServeConfig::default().seed;
        let canonical = canonical_weights(&normalized, seed).expect("canonical weights");
        let packs = pack_panels(&normalized, &canonical);

        let path = store_path(&cfg.name);
        write_store(&path, &normalized.name, &canonical, &packs)
            .unwrap_or_else(|e| panic!("{}: write: {e}", cfg.name));
        let stored = open_store(&path).unwrap_or_else(|e| panic!("{}: open: {e}", cfg.name));

        // Raw weight bits match on every device.
        assert_eq!(stored.devices, normalized.gpus, "{}", cfg.name);
        for (d, map) in canonical.iter().enumerate() {
            assert_eq!(stored.weights[d].len(), map.len(), "{} device {d}", cfg.name);
            for (name, tensor) in map {
                let got = &stored.weights[d][name];
                assert_eq!(got.shape(), tensor.shape(), "{} `{name}`", cfg.name);
                assert_eq!(got.data(), tensor.data(), "{} `{name}` bits", cfg.name);
            }
        }

        // A forward pass through the serving runtime agrees bit-for-bit
        // between generated weights and the store-loaded (pack-adopting)
        // replica.
        let generated = ServeRuntime::start(serve_cfg());
        generated.register_model(cfg.clone()).expect("register generated");
        let loaded = ServeRuntime::start(serve_cfg());
        loaded
            .register_model_with_weights(cfg.clone(), stored.weights.clone(), Some(stored.packs.clone()))
            .expect("register stored");

        let prompt: Vec<f32> = (0..cfg.seq).map(|t| ((t * 3 + 1) % cfg.vocab) as f32).collect();
        let want = generated.submit_blocking(&cfg.name, prompt.clone()).expect("generated forward");
        let got = loaded.submit_blocking(&cfg.name, prompt).expect("loaded forward");
        assert_eq!(want, got, "{}: store-loaded forward diverged", cfg.name);

        generated.shutdown();
        loaded.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn multi_device_store_dedupes_replicated_payloads() {
    let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, SEED).expect("canonical weights");
    let packs = pack_panels(&normalized, &canonical);

    let path = store_path("dedupe");
    let summary = write_store(&path, &normalized.name, &canonical, &packs).expect("write");
    assert!(
        summary.deduped > 0,
        "a 2-device model replicates its dense weights; the store must collapse them"
    );

    let stored = open_store(&path).expect("open");
    // Replicated entries come back on both devices with identical bits.
    for (name, tensor) in &canonical[0] {
        if canonical[1].get(name).map(|t| t.data()) == Some(tensor.data()) {
            assert_eq!(stored.weights[0][name].data(), stored.weights[1][name].data());
        }
    }
    let _ = std::fs::remove_file(&path);
}
