//! "It actually trains": run several SGD iterations of a tiny GPT-MoE
//! through the numerical executor — with and without Lancet optimization —
//! and check that (a) the loss decreases and (b) both variants follow the
//! same trajectory.

use lancet_repro::core::{apply_partitions, infer_axes, PartitionSpec};
use lancet_repro::exec::{Bindings, Executor};
use lancet_repro::ir::{build_backward, BackwardOptions, GateKind, Graph, Op, TensorId, TensorKind};
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::tensor::{Tensor, TensorRng};
use std::collections::HashMap;

const DEVICES: usize = 2;
const STEPS: usize = 5;

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Trains for `STEPS` iterations, feeding updated weights back each step;
/// returns the per-step device-0 losses.
fn train(graph: &Graph) -> Vec<f32> {
    // Weight name → current value (replicated; expert weights per device).
    let mut weights: HashMap<(String, usize), Tensor> = HashMap::new();
    for t in graph.tensors() {
        if t.kind != TensorKind::Weight {
            continue;
        }
        for d in 0..DEVICES {
            let seed = if t.name.contains("expert") {
                name_seed(&t.name) ^ (d as u64 + 1)
            } else {
                name_seed(&t.name)
            };
            let mut rng = TensorRng::seed(seed);
            weights.insert((t.name.clone(), d), rng.normal(t.shape.clone(), 0.2));
        }
    }
    let loss_tensor: TensorId = graph
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .expect("loss");
    let mut losses = Vec::new();
    for step in 0..STEPS {
        let mut b = Bindings::new(DEVICES);
        for t in graph.tensors() {
            match t.kind {
                TensorKind::Weight => {
                    for d in 0..DEVICES {
                        b.set(d, t.id, weights[&(t.name.clone(), d)].clone());
                    }
                }
                TensorKind::Input => {
                    // Same small corpus every step so the loss can drop.
                    for d in 0..DEVICES {
                        let mut rng = TensorRng::seed(name_seed(&t.name) ^ d as u64 ^ 0xDA7A);
                        let vals: Vec<f32> =
                            (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                        b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                    }
                }
                _ => {}
            }
        }
        let out = Executor::new(graph, DEVICES).unwrap().run(b).unwrap();
        losses.push(out.get(0, loss_tensor).unwrap().data()[0]);
        let _ = step;
        // Harvest updated weights.
        for instr in graph.instrs() {
            if matches!(instr.op, Op::SgdUpdate { .. }) {
                let name = graph.tensor(instr.inputs[0]).name.clone();
                for d in 0..DEVICES {
                    weights.insert((name.clone(), d), out.get(d, instr.outputs[0]).unwrap().clone());
                }
            }
        }
    }
    losses
}

fn build_graphs() -> (Graph, Graph) {
    let cfg = GptMoeConfig::tiny(DEVICES, GateKind::Switch);
    let fwd = build_forward(&cfg).unwrap().graph;
    let backward = BackwardOptions { sgd_lr: Some(0.2), optimizer: Default::default(), allreduce_grads: false };

    let start = fwd.instrs().iter().position(|i| matches!(i.op, Op::Gate { .. })).unwrap();
    let end = fwd.instrs().iter().position(|i| matches!(i.op, Op::MoeGather { .. })).unwrap() + 1;
    let axes = infer_axes(&fwd, start..end).unwrap();
    let mut optimized =
        apply_partitions(&fwd, &[PartitionSpec { range: start..end, parts: 2, axes }]).unwrap();
    build_backward(&mut optimized, &backward).unwrap();

    let mut baseline = fwd;
    build_backward(&mut baseline, &backward).unwrap();
    (baseline, optimized)
}

#[test]
fn loss_decreases_over_steps() {
    let (baseline, _) = build_graphs();
    let losses = train(&baseline);
    assert!(
        losses[STEPS - 1] < losses[0],
        "loss did not decrease: {losses:?}"
    );
}

#[test]
fn optimized_graph_trains_identically() {
    let (baseline, optimized) = build_graphs();
    let base_losses = train(&baseline);
    let opt_losses = train(&optimized);
    for (step, (a, b)) in base_losses.iter().zip(&opt_losses).enumerate() {
        assert!(
            (a - b).abs() <= 1e-4 + 1e-3 * a.abs(),
            "step {step}: baseline loss {a} vs optimized {b}"
        );
    }
}
