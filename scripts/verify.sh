#!/usr/bin/env sh
# Full verification gate (see README "Running the test suite").
# Hermetic: no network access required — external dev-deps are vendored.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> verify OK"
