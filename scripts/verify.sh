#!/usr/bin/env sh
# Full verification gate (see README "Running the test suite").
# Hermetic: no network access required — external dev-deps are vendored.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo bench -p lancet-bench --bench kernels -- --quick"
# Smoke run of the compute-backend benchmark: asserts the tiled engine is
# bit-identical to the naive reference and still beats it by the floor in
# ISSUE/EXPERIMENTS, and that prepacked weight panels beat repack-per-call
# at the decode-step shape (no artifact is written in --quick mode).
cargo bench -p lancet-bench --bench kernels -- --quick

echo "==> committed BENCH_kernels.json records the prepack win"
# The committed artifact must carry the prepacked-vs-repack speedups the
# quick run just gated on; a stale artifact (regenerated before the
# prepack benches existed, or below the floor) fails here. Regenerate
# with: cargo bench -p lancet-bench --bench kernels
awk '
    /"prepacked_vs_repack_step"/ { found = 1; v = $2 + 0
        if (v < 1.15) { printf "error: prepacked_vs_repack_step %.2f < 1.15 floor\n", v; exit 1 } }
    END { if (!found) { print "error: BENCH_kernels.json lacks prepacked_vs_repack_step"; exit 1 } }
' results/BENCH_kernels.json

echo "==> lancet tune-gemm --quick"
# Smoke of the GEMM autotuner: searches the reduced candidate grid on the
# detected ISA (no artifact written). The committed results/TUNE_gemm.json
# is the full-grid table; regenerate with: lancet tune-gemm
./target/release/lancet tune-gemm --quick --samples 1

echo "==> lancet serve-bench --quick"
# Seconds-bounded smoke of the serving runtime: replays a short open-loop
# trace and fails unless the plan-cache hit rate is nonzero and every
# admitted request got exactly one response (zero lost).
./target/release/lancet serve-bench --quick

echo "==> lancet chaos-bench --quick"
# Fault-injection conformance gate: replays a seeded fault schedule
# (LANCET_CHAOS_SEED, default 0xC4A05) through the simulator and the
# serving runtime and fails unless reports are bit-identical across
# replays, fault counters reproduce, and no admitted ticket is lost.
./target/release/lancet chaos-bench --quick

echo "==> lancet placement-bench --quick"
# Expert-placement win floor on a skewed (Zipf) routing histogram: the
# optimized placement must move no more inter-node bytes than uniform,
# beat it strictly in simulated step time, the sim replay must be
# bit-identical, and the serving runtime's affinity dispatch must land
# every single-worker request on its preferred worker (nonzero hits).
./target/release/lancet placement-bench --quick

echo "==> lancet decode-bench --quick"
# Decode-serving win floor: replays a deterministic open-loop generation
# trace through the lancet-decode runtime under continuous and windowed
# batching; fails unless continuous beats windowed on mean
# time-to-first-token, every stream is gapless, and no token is lost.
./target/release/lancet decode-bench --quick

echo "==> store round trip (pack → mmap load → bit-identical forward)"
# The on-disk model store gate: every model-zoo variant packs to a store
# file, loads back through the zero-copy path, and must be bit-identical
# to generated weights — raw bits and a full serving forward pass.
cargo test -q --release --test store_roundtrip

echo "==> lancet fleet-bench --quick"
# Fleet scaling floor: a closed burst through 1→4 store-backed replicas
# (fixed service floor emulating device time) must reach ≥ 2.5x the
# single-replica throughput at N=4, and the chaos leg (crash the routed
# replica with a full queue) must lose zero admitted tickets.
./target/release/lancet fleet-bench --quick

echo "==> overlap conformance (tile-granular schedules are bit-identical)"
# The differential suite: every zoo model executed under the tile
# scheduler must produce bit-identical forward outputs at every tile
# count, tiles=1 must reproduce the partition-level program op for op,
# and the golden hash of the default plan must not move.
cargo test -q --release --test overlap
cargo test -q --release --test end_to_end default_plan_bytes_are_golden

echo "==> lancet overlap-bench --quick"
# Tile-granular overlap floor: tiles=1 must equal the partition-level
# schedule exactly, and at least one tile count on one zoo model must
# strictly beat partition level in simulated step time.
./target/release/lancet overlap-bench --quick

echo "==> committed BENCH_overlap.json records the tile-level win"
# The committed sweep must carry a strict tile-level win; a stale or
# regressed artifact fails here. Regenerate with: lancet overlap-bench
awk '
    /"best_speedup"/ { found = 1; v = $2 + 0
        if (v < 1.002) { printf "error: best_speedup %.4f < 1.002 floor\n", v; exit 1 } }
    END { if (!found) { print "error: BENCH_overlap.json lacks best_speedup"; exit 1 } }
' results/BENCH_overlap.json

echo "==> results/BENCH_*.json are documented"
# Every committed benchmark artifact must be referenced from
# EXPERIMENTS.md so readers can find the regeneration instructions.
for f in results/BENCH_*.json; do
    base=$(basename "$f")
    if ! grep -q "$base" EXPERIMENTS.md; then
        echo "error: $base is not referenced from EXPERIMENTS.md" >&2
        exit 1
    fi
done

echo "==> verify OK"
