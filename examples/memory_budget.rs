//! Fitting a model into a memory budget: combine Lancet's overlap with
//! FSDP weight sharding and activation recomputation, and watch the
//! memory/time tradeoff on the simulated cluster.
//!
//! ```text
//! cargo run --release --example memory_budget
//! ```

use lancet_repro::core::{recompute_segments, Lancet, LancetOptions};
use lancet_repro::cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_repro::ir::{build_backward, BackwardOptions, GateKind, Graph};
use lancet_repro::models::{block_boundaries, build_forward, GptMoeConfig};
use lancet_repro::sim::{render_gantt, SimConfig, Simulator};

fn main() {
    let gpus = 16;
    let spec = ClusterSpec::a100(gpus / 8);
    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec.clone()),
        SimConfig::new(gpus),
    );
    println!(
        "GPT2-L-MoE, batch 48/GPU on {gpus} A100s (80 GB) — memory vs time:\n"
    );
    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "configuration", "iter (ms)", "peak mem", "fits?"
    );

    let build = |fsdp: bool, ckpt: bool, lancet_on: bool| -> Graph {
        let cfg = GptMoeConfig::gpt2_l_moe(gpus, GateKind::Switch)
            .with_batch(48)
            .with_fsdp(fsdp);
        let fwd = build_forward(&cfg).expect("build").graph;
        let mut g = if lancet_on {
            let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
            lancet.optimize(fwd).expect("optimize").graph
        } else {
            let mut g = fwd;
            build_backward(&mut g, &BackwardOptions::default()).expect("autodiff");
            g
        };
        if ckpt {
            let segments = block_boundaries(&g);
            recompute_segments(&mut g, &segments).expect("recompute");
        }
        g
    };

    let mut last = None;
    for (label, fsdp, ckpt, lancet_on) in [
        ("baseline (replicated, no checkpointing)", false, false, false),
        ("+ Lancet overlap", false, false, true),
        ("+ activation recomputation", false, true, false),
        ("+ FSDP sharding", true, false, false),
        ("+ FSDP + recomputation", true, true, false),
        ("+ FSDP + recomputation + Lancet", true, true, true),
    ] {
        let g = build(fsdp, ckpt, lancet_on);
        let report = sim.simulate(&g);
        println!(
            "{:<44} {:>12.1} {:>9.1} GB {:>9}",
            label,
            report.iteration_time * 1e3,
            report.peak_memory as f64 / 1e9,
            if report.oom { "NO" } else { "yes" }
        );
        last = Some(report);
    }

    if let Some(report) = last {
        println!("\ntimeline of the final configuration:\n");
        print!("{}", render_gantt(&report, 72));
    }
}
