//! Bring your own architecture: build a custom MoE model directly against
//! the IR, let Lancet optimize it, and validate the optimization
//! numerically — the workflow a downstream user of this library follows.
//!
//! The model here is deliberately non-GPT: a deep MLP "mixer" where every
//! third layer is an MoE layer with top-2 routing and a shared expert.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use lancet_repro::core::{Lancet, LancetOptions};
use lancet_repro::cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_repro::ir::{
    build_backward, BackwardOptions, GateKind, Graph, Op, Role, TensorId,
};
use lancet_repro::sim::{SimConfig, Simulator};

struct CustomModel {
    graph: Graph,
}

/// An MLP-mixer-ish stack: LayerNorm → FFN blocks, with an MoE block
/// (top-2 gate + shared expert) every third layer.
fn build_custom(batch: usize, seq: usize, hidden: usize, layers: usize, gpus: usize) -> CustomModel {
    let experts = 2 * gpus;
    let cap_factor = 1.25;
    // Top-2: each token claims two expert slots.
    let capacity = ((cap_factor * (batch * seq * 2) as f64) / experts as f64).ceil() as usize;
    let gate = GateKind::TopK { k: 2 };

    let mut g = Graph::new();
    let ids = g.input("ids", vec![batch, seq]);
    let targets = g.input("targets", vec![batch, seq]);
    let table = g.weight("embed", vec![32, hidden]);
    let mut x = g.emit(Op::Embedding, &[table, ids], Role::Forward).expect("embed");

    for layer in 0..layers {
        let gamma = g.weight(format!("l{layer}.norm.g"), vec![hidden]);
        let beta = g.weight(format!("l{layer}.norm.b"), vec![hidden]);
        let xn = g.emit(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], Role::Forward).expect("norm");
        let out: TensorId = if layer % 3 == 2 {
            // --- MoE block with a shared expert ---
            let wg = g.weight(format!("l{layer}.gate.w"), vec![hidden, experts]);
            let w1 = g.weight(format!("l{layer}.expert.w1"), vec![2, hidden, 2 * hidden]);
            let w2 = g.weight(format!("l{layer}.expert.w2"), vec![2, 2 * hidden, hidden]);
            let gate_outs = g
                .emit_multi(Op::Gate { kind: gate, experts, capacity }, &[xn, wg], Role::Forward)
                .expect("gate");
            let buf = g
                .emit(Op::MoeDispatch { experts, capacity }, &[xn, gate_outs[0], gate_outs[1]], Role::Forward)
                .expect("dispatch");
            let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).expect("a2a");
            // Shared expert issued while the all-to-all is in flight.
            let ws = g.weight(format!("l{layer}.shared.w"), vec![hidden, hidden]);
            let shared = g.emit(Op::MatMul { transpose_b: false }, &[xn, ws], Role::Forward).expect("shared");
            let loc = g.emit(Op::ExpertsLayout { gpus }, &[buf], Role::Forward).expect("layout");
            let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).expect("w1");
            let h = g.emit(Op::Gelu, &[h], Role::Forward).expect("gelu");
            let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).expect("w2");
            let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).expect("inv");
            let back = g.emit(Op::AllToAll, &[back], Role::Comm).expect("a2a2");
            let routed = g
                .emit(Op::MoeGather { experts, capacity, batch, seq }, &[back, gate_outs[0], gate_outs[1]], Role::Forward)
                .expect("gather");
            g.emit(Op::Add, &[routed, shared], Role::Forward).expect("mix")
        } else {
            // --- dense FFN ---
            let w1 = g.weight(format!("l{layer}.ffn.w1"), vec![hidden, 2 * hidden]);
            let w2 = g.weight(format!("l{layer}.ffn.w2"), vec![2 * hidden, hidden]);
            let h = g.emit(Op::MatMul { transpose_b: false }, &[xn, w1], Role::Forward).expect("w1");
            let h = g.emit(Op::Gelu, &[h], Role::Forward).expect("gelu");
            g.emit(Op::MatMul { transpose_b: false }, &[h, w2], Role::Forward).expect("w2")
        };
        x = g.emit(Op::Add, &[x, out], Role::Forward).expect("residual");
    }
    let lm = g.weight("head", vec![hidden, 32]);
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[x, lm], Role::Forward).expect("head");
    let _ = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).expect("loss");
    g.validate().expect("custom model must validate");
    CustomModel { graph: g }
}

fn main() {
    let gpus = 16;
    let model = build_custom(32, 256, 1024, 9, gpus);
    println!(
        "custom model: {} forward instructions, {:.1} M parameters\n",
        model.graph.instrs().len(),
        model.graph.weight_volume() as f64 / 1e6
    );

    let spec = ClusterSpec::v100(gpus / 8);
    let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig::new(gpus),
    );

    let mut baseline = model.graph.clone();
    build_backward(&mut baseline, &BackwardOptions::default()).expect("autodiff");
    let base = sim.simulate(&baseline);

    let outcome = lancet.optimize(model.graph).expect("optimize");
    let opt = sim.simulate(&outcome.graph);

    println!("{:<12} {:>12} {:>16} {:>10}", "", "iter (ms)", "exposed a2a (ms)", "overlap");
    println!(
        "{:<12} {:>12.1} {:>16.1} {:>9.0}%",
        "baseline",
        base.iteration_time * 1e3,
        base.exposed_comm() * 1e3,
        base.overlap_ratio() * 100.0
    );
    println!(
        "{:<12} {:>12.1} {:>16.1} {:>9.0}%",
        "lancet",
        opt.iteration_time * 1e3,
        opt.exposed_comm() * 1e3,
        opt.overlap_ratio() * 100.0
    );
    println!(
        "\nspeedup {:.2}x; the passes needed no model-specific knowledge — \
         the CSP inferred partition axes for the custom block structure.",
        base.iteration_time / opt.iteration_time
    );
    if let Some(p) = &outcome.partition {
        for (range, k) in &p.ranges {
            println!("  pipelined range {range:?} into {k} chunks");
        }
    }
}
