//! Quickstart: optimize an MoE training graph with Lancet and measure the
//! speedup on the simulated cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lancet_repro::baselines::{run_system, System};
use lancet_repro::cost::ClusterKind;
use lancet_repro::ir::GateKind;
use lancet_repro::models::GptMoeConfig;

fn main() {
    // GPT2-S-MoE on 16 simulated V100s (2 nodes), Switch gating —
    // one of the paper's benchmark configurations.
    let gpus = 16;
    let cfg = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch).with_batch(16);
    println!(
        "Model: {} — {} layers, hidden {}, {} experts on {gpus} GPUs, batch {}/GPU\n",
        cfg.name, cfg.layers, cfg.hidden, cfg.experts(), cfg.batch
    );

    println!("{:<12} {:>12} {:>16} {:>14}", "system", "iter (ms)", "exposed a2a (ms)", "overlap");
    let mut baseline_ms = None;
    for system in System::headline() {
        let out = run_system(system, &cfg, ClusterKind::V100).expect("run");
        let r = &out.report;
        println!(
            "{:<12} {:>12.1} {:>16.1} {:>13.0}%",
            system.name(),
            r.iteration_time * 1e3,
            r.exposed_comm() * 1e3,
            r.overlap_ratio() * 100.0
        );
        if system == System::Raf {
            baseline_ms = Some(r.iteration_time);
        }
        if system == System::Lancet {
            if let (Some(base), Some(pred)) = (baseline_ms, out.predicted) {
                println!(
                    "\nLancet speedup vs RAF: {:.2}x  (cost model predicted {:.1} ms, error {:.1}%)",
                    base / r.iteration_time,
                    pred * 1e3,
                    (pred - r.iteration_time).abs() / r.iteration_time * 100.0
                );
            }
        }
    }
}
