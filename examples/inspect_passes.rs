//! Developer tour: watch the Lancet passes transform a training graph.
//!
//! Prints the instruction mix before/after optimization, the ranges the
//! partition DP chose, the dW-scheduling report, and a DOT dump of a tiny
//! graph for visualization.
//!
//! ```text
//! cargo run --release --example inspect_passes
//! ```

use lancet_repro::core::{Lancet, LancetOptions};
use lancet_repro::cost::ClusterSpec;
use lancet_repro::ir::{to_dot, GateKind, Graph, Role};
use lancet_repro::models::{build_forward, GptMoeConfig};
use std::collections::BTreeMap;

fn op_histogram(graph: &Graph) -> BTreeMap<&'static str, usize> {
    let mut h = BTreeMap::new();
    for i in graph.instrs() {
        *h.entry(i.op.name()).or_insert(0) += 1;
    }
    h
}

fn main() {
    let gpus = 16;
    let cfg = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch).with_layers(4).with_batch(16);
    let fwd = build_forward(&cfg).expect("build").graph;
    println!("forward graph: {} instructions, {} tensors", fwd.instrs().len(), fwd.num_tensors());

    let lancet = Lancet::new(ClusterSpec::v100(2), gpus, LancetOptions::default());
    let outcome = lancet.optimize(fwd).expect("optimize");

    if let Some(p) = &outcome.partition {
        println!("\npartition pass: {} P(i,n,k) evaluations", p.evaluations);
        for (range, k) in &p.ranges {
            println!("  range {range:?} → {k} chunks");
        }
        println!(
            "  estimated forward: {:.1} ms (unpartitioned {:.1} ms)",
            p.estimated_forward_time * 1e3,
            p.unpartitioned_forward_time * 1e3
        );
    }
    if let Some(d) = &outcome.dw {
        println!(
            "\ndW schedule pass: {} of {} all-to-alls received dW work; {} dWs moved; {:.0}% of a2a time covered",
            outcome.graph.all_to_all_positions().len().min(d.alltoalls),
            d.alltoalls,
            d.assigned,
            d.overlap_fraction() * 100.0
        );
    }
    println!("\noptimized graph: {} instructions", outcome.graph.instrs().len());
    println!("predicted iteration time: {:.1} ms", outcome.predicted_time * 1e3);
    println!("optimization took {:?}", outcome.optimization_time);

    println!("\ninstruction mix (top 12):");
    let hist = op_histogram(&outcome.graph);
    let mut entries: Vec<_> = hist.into_iter().collect();
    entries.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (op, n) in entries.into_iter().take(12) {
        println!("  {op:<22} ×{n}");
    }

    let roles = outcome.graph.instrs().iter().fold([0usize; 5], |mut acc, i| {
        let idx = match i.role {
            Role::Forward => 0,
            Role::ActGrad => 1,
            Role::WeightGrad => 2,
            Role::Comm => 3,
            Role::Optimizer => 4,
        };
        acc[idx] += 1;
        acc
    });
    println!(
        "\nroles: forward {} / dX {} / dW {} / comm {} / optimizer {}",
        roles[0], roles[1], roles[2], roles[3], roles[4]
    );

    // DOT dump of a miniature graph (the full one is unreadable).
    let tiny = build_forward(&GptMoeConfig::tiny(2, GateKind::Switch).with_layers(2)).expect("build").graph;
    let dot = to_dot(&tiny);
    std::fs::create_dir_all("results").expect("mkdir");
    std::fs::write("results/tiny_forward.dot", &dot).expect("write");
    println!("\nwrote results/tiny_forward.dot ({} bytes) — render with `dot -Tsvg`", dot.len());
}
