//! Demonstrates the paper's mathematical-equivalence claims numerically:
//!
//! 1. Direct micro-batching (paper Fig. 5b) drops extra tokens; Lancet's
//!    capacity-passing partitioned gating (Fig. 5c) drops exactly the
//!    same tokens as the unpartitioned gate.
//! 2. A Lancet-partitioned training graph computes the same loss and the
//!    same weight updates as the unpartitioned one, verified by executing
//!    both on real data with the multi-device executor.
//!
//! ```text
//! cargo run --release --example equivalence_demo
//! ```

use lancet_repro::core::{apply_partitions, infer_axes, PartitionSpec};
use lancet_repro::exec::{Bindings, Executor};
use lancet_repro::ir::{build_backward, BackwardOptions, GateKind, Graph, Op, TensorKind};
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::moe::{expert_capacity, route, route_direct_microbatch, CapacityState, Routing};
use lancet_repro::tensor::{Tensor, TensorRng};

fn part1_token_dropping() {
    println!("— Part 1: token dropping under micro-batching —\n");
    let (tokens, experts) = (256usize, 8usize);
    let cap = expert_capacity(tokens, experts, 1.25);
    // Consecutive tokens favour the same expert (clustered topics).
    let mut rng = TensorRng::seed(7);
    let mut logits = rng.uniform(vec![tokens, experts], -1.0, 1.0);
    for t in 0..tokens {
        logits.data_mut()[t * experts + t * experts / tokens] += 2.0;
    }
    let full = route(GateKind::Switch, &logits, cap, None).expect("route");
    let direct = route_direct_microbatch(GateKind::Switch, &logits, cap, 4).expect("route");
    let mut state = CapacityState::new(experts);
    let chunks: Vec<Routing> = logits
        .split_axis(0, 4)
        .expect("split")
        .iter()
        .map(|c| route(GateKind::Switch, c, cap, Some(&mut state)).expect("route"))
        .collect();
    let lancet = Routing::concat(&chunks);
    println!("  unpartitioned drops:          {}", full.num_dropped());
    println!("  direct micro-batching drops:  {}  (paper Fig. 5b — extra drops!)", direct.num_dropped());
    println!("  capacity-passing drops:       {}  (paper Fig. 5c)", lancet.num_dropped());
    println!("  capacity-passing ≡ unpartitioned: {}\n", lancet == full);
}

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

fn bind(graph: &Graph, devices: usize) -> Bindings {
    let mut b = Bindings::new(devices);
    for t in graph.tensors() {
        match t.kind {
            TensorKind::Weight => {
                let mut rng = TensorRng::seed(name_seed(&t.name));
                b.set_all(t.id, rng.normal(t.shape.clone(), 0.2));
            }
            TensorKind::Input => {
                for d in 0..devices {
                    let mut rng = TensorRng::seed(name_seed(&t.name) ^ d as u64);
                    let vals: Vec<f32> = (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                    b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).expect("shape"));
                }
            }
            _ => {}
        }
    }
    b
}

fn loss_of(graph: &Graph, devices: usize) -> f32 {
    let out = Executor::new(graph, devices).expect("valid").run(bind(graph, devices)).expect("run");
    let loss = graph
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .expect("loss");
    out.get(0, loss).expect("bound").data()[0]
}

fn part2_partitioned_training() {
    println!("— Part 2: partitioned training graph equivalence —\n");
    let gpus = 2;
    let cfg = GptMoeConfig::tiny(gpus, GateKind::Switch);
    let fwd = build_forward(&cfg).expect("build").graph;
    // Partition the MoE pipeline into 2 chunks, then differentiate.
    let start = fwd.instrs().iter().position(|i| matches!(i.op, Op::Gate { .. })).expect("gate");
    let end = fwd.instrs().iter().position(|i| matches!(i.op, Op::MoeGather { .. })).expect("gather") + 1;
    let axes = infer_axes(&fwd, start..end).expect("partitionable");
    let mut partitioned = apply_partitions(&fwd, &[PartitionSpec { range: start..end, parts: 2, axes }])
        .expect("codegen");
    build_backward(&mut partitioned, &BackwardOptions::default()).expect("autodiff");
    let mut baseline = fwd;
    build_backward(&mut baseline, &BackwardOptions::default()).expect("autodiff");

    let l_base = loss_of(&baseline, gpus);
    let l_part = loss_of(&partitioned, gpus);
    println!("  baseline loss:    {l_base}");
    println!("  partitioned loss: {l_part}");
    println!("  bit-identical:    {}", l_base.to_bits() == l_part.to_bits());
}

fn main() {
    part1_token_dropping();
    part2_partitioned_training();
}
