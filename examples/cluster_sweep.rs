//! Sweeps cluster sizes and gating algorithms, reporting Lancet's speedup
//! over the strongest baseline — a miniature of the paper's Figs. 11/12.
//!
//! ```text
//! cargo run --release --example cluster_sweep
//! ```

use lancet_repro::baselines::{run_system, System};
use lancet_repro::cost::ClusterKind;
use lancet_repro::ir::GateKind;
use lancet_repro::models::GptMoeConfig;

fn main() {
    println!(
        "{:<8} {:<8} {:<8} {:>14} {:>12} {:>10}",
        "cluster", "gate", "gpus", "best baseline", "lancet", "speedup"
    );
    for cluster in [ClusterKind::A100, ClusterKind::V100] {
        for gate in [GateKind::Switch, GateKind::BatchPrioritized] {
            for gpus in [8usize, 16, 32] {
                let batch = if cluster == ClusterKind::A100 { 24 } else { 16 };
                let cfg = GptMoeConfig::gpt2_s_moe(gpus, gate).with_batch(batch);
                let mut best_baseline = f64::INFINITY;
                for system in [System::DeepSpeed, System::Tutel, System::Raf] {
                    let out = run_system(system, &cfg, cluster).expect("run");
                    if !out.report.oom {
                        best_baseline = best_baseline.min(out.report.iteration_time);
                    }
                }
                let lancet = run_system(System::Lancet, &cfg, cluster).expect("run");
                println!(
                    "{:<8} {:<8} {:<8} {:>12.1}ms {:>10.1}ms {:>9.2}x",
                    cluster.name(),
                    gate.name(),
                    gpus,
                    best_baseline * 1e3,
                    lancet.report.iteration_time * 1e3,
                    best_baseline / lancet.report.iteration_time
                );
            }
        }
    }
}
