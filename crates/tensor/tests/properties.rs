//! Property-based tests for tensor algebra invariants.

use lancet_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data).unwrap())
    })
}

fn paired_tensors(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            prop::collection::vec(-10.0f32..10.0, r * c),
            prop::collection::vec(-10.0f32..10.0, r * c),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(vec![r, c], a).unwrap(),
                    Tensor::from_vec(vec![r, c], b).unwrap(),
                )
            })
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in paired_tensors(6)) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_self_is_zero(a in tensor_strategy(6)) {
        let z = a.sub(&a).unwrap();
        prop_assert!(z.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scale_by_one_is_identity(a in tensor_strategy(6)) {
        prop_assert_eq!(a.scale(1.0), a);
    }

    #[test]
    fn matmul_identity_right(a in tensor_strategy(5)) {
        let n = a.shape()[1];
        let mut eye = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            eye.data_mut()[i * n + i] = 1.0;
        }
        prop_assert!(a.matmul(&eye).unwrap().allclose(&a));
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(5), cols in 1usize..5) {
        // (A B)^T == B^T A^T
        let k = a.shape()[1];
        let b = Tensor::from_vec(vec![k, cols], (0..k * cols).map(|x| (x % 7) as f32 - 3.0).collect()).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose2().unwrap();
        let rhs = b.transpose2().unwrap().matmul(&a.transpose2().unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs));
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(6)) {
        let y = a.softmax_last();
        let d = a.shape()[1];
        for row in y.data().chunks(d) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn split_concat_roundtrip(a in tensor_strategy(8), parts in 1usize..4) {
        let rows = a.shape()[0];
        let parts = parts.min(rows);
        let chunks = a.split_axis(0, parts).unwrap();
        let refs: Vec<&Tensor> = chunks.iter().collect();
        prop_assert_eq!(Tensor::concat(&refs, 0).unwrap(), a);
    }

    #[test]
    fn sum_axis_preserves_total(a in tensor_strategy(6)) {
        let total = a.sum();
        prop_assert!((a.sum_axis(0).unwrap().sum() - total).abs() < 1e-3);
        prop_assert!((a.sum_axis(1).unwrap().sum() - total).abs() < 1e-3);
    }

    #[test]
    fn relu_is_idempotent(a in tensor_strategy(6)) {
        let r = a.relu();
        prop_assert_eq!(r.relu(), r);
    }

    #[test]
    fn layer_norm_output_is_row_standardized(a in tensor_strategy(6)) {
        let d = a.shape()[1];
        // Skip degenerate single-column rows where variance is 0.
        prop_assume!(d >= 2);
        let gamma = Tensor::full(vec![d], 1.0);
        let beta = Tensor::zeros(vec![d]);
        let y = a.layer_norm(&gamma, &beta, 1e-5).unwrap();
        for row in y.data().chunks(d) {
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            prop_assert!(mean.abs() < 1e-3);
        }
    }
}
