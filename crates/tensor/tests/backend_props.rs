//! Property tests for the packed GEMM backend's determinism contract.
//!
//! The tiled engine ([`lancet_tensor::gemm`]) must be **bit-identical** to
//! the retained naive reference kernel — not merely close — for every
//! shape, operand transpose, and worker count. These tests sample random
//! problems whose dimensions straddle the blocking constants
//! (`MR`/`NR`/`MC`/`KC`/`NC`), so packed-edge and full-tile code paths are
//! both exercised, and compare `Tensor::data()` exactly.

use lancet_tensor::{gemm, BlockSpec, PackedTensor, Tensor, TensorRng};
use proptest::prelude::*;

/// Worker counts the contract quantifies over: sequential, two-way, auto.
const WORKER_COUNTS: [usize; 3] = [1, 2, 0];

fn random_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    TensorRng::seed(seed).uniform(shape, -2.0, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::env_cases(24))]
    /// Tiled output equals the reference bit for bit across random shapes
    /// spanning the micro/macro tile edges, both transposes, and all
    /// worker counts.
    #[test]
    fn tiled_matmul_is_bit_identical(
        dims in (1usize..80, 1usize..300, 1usize..560),
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = if ta {
            random_tensor(vec![k, m], seed)
        } else {
            random_tensor(vec![m, k], seed)
        };
        let b = if tb {
            random_tensor(vec![n, k], seed ^ 0x9E37_79B9)
        } else {
            random_tensor(vec![k, n], seed ^ 0x9E37_79B9)
        };
        let reference = gemm::matmul_reference(&a, &b, ta, tb).unwrap();
        for workers in WORKER_COUNTS {
            let tiled = gemm::matmul_tiled(&a, &b, ta, tb, workers).unwrap();
            prop_assert_eq!(reference.shape(), tiled.shape());
            prop_assert!(
                reference.data() == tiled.data(),
                "matmul diverged from reference: m={m} k={k} n={n} ta={ta} tb={tb} workers={workers}"
            );
        }
    }

    /// The batched (per-expert) engine is bit-identical to the reference
    /// for every expert count and worker count.
    #[test]
    fn tiled_batched_matmul_is_bit_identical(
        dims in (1usize..5, 1usize..40, 1usize..70, 1usize..90),
        seed in any::<u64>(),
    ) {
        let (e, m, k, n) = dims;
        let a = random_tensor(vec![e, m, k], seed);
        let b = random_tensor(vec![e, k, n], seed ^ 0x5EED);
        let reference = gemm::batched_matmul_reference(&a, &b).unwrap();
        for workers in WORKER_COUNTS {
            let tiled = gemm::batched_matmul_tiled(&a, &b, workers).unwrap();
            prop_assert!(
                reference.data() == tiled.data(),
                "batched_matmul diverged from reference: e={e} m={m} k={k} n={n} workers={workers}"
            );
        }
    }

    /// Prepacked weight panels are a pure layout change: a matmul through
    /// a resident [`PackedTensor`] equals the reference bit for bit across
    /// ragged shapes, both `B` transposes, and all worker counts.
    #[test]
    fn prepacked_matmul_is_bit_identical(
        dims in (1usize..80, 1usize..300, 1usize..560),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a = random_tensor(vec![m, k], seed);
        let b = if tb {
            random_tensor(vec![n, k], seed ^ 0x9E37_79B9)
        } else {
            random_tensor(vec![k, n], seed ^ 0x9E37_79B9)
        };
        let reference = gemm::matmul_reference(&a, &b, false, tb).unwrap();
        let packed = PackedTensor::pack(&b, tb).unwrap();
        for workers in WORKER_COUNTS {
            let fast = gemm::matmul_packed(&a, &packed, false, workers).unwrap();
            prop_assert_eq!(reference.shape(), fast.shape());
            prop_assert!(
                reference.data() == fast.data(),
                "prepacked matmul diverged: m={m} k={k} n={n} tb={tb} workers={workers}"
            );
        }
    }

    /// Prepacking under a non-default (tuned) blocking still matches the
    /// reference exactly — any `BlockSpec` a tuned table could load only
    /// changes traversal order, never the per-element accumulation order.
    #[test]
    fn prepacked_matmul_with_tuned_spec_is_bit_identical(
        dims in (1usize..60, 1usize..200, 1usize..300),
        spec_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let specs = [
            BlockSpec { mc: 32, kc: 128, nc: 256 },
            BlockSpec { mc: 128, kc: 512, nc: 1024 },
            BlockSpec { mc: 4, kc: 16, nc: 16 },
            BlockSpec { mc: 33, kc: 17, nc: 23 },
        ];
        let a = random_tensor(vec![m, k], seed);
        let b = random_tensor(vec![k, n], seed ^ 0xB10C);
        let reference = gemm::matmul_reference(&a, &b, false, false).unwrap();
        let packed = PackedTensor::pack_with(&b, false, specs[spec_idx], 1).unwrap();
        for workers in WORKER_COUNTS {
            let fast = gemm::matmul_packed(&a, &packed, false, workers).unwrap();
            prop_assert!(
                reference.data() == fast.data(),
                "tuned-spec prepacked matmul diverged: m={m} k={k} n={n} spec={:?} workers={workers}",
                specs[spec_idx]
            );
        }
    }

    /// The batched prepacked engine matches the reference for per-expert
    /// stacks and for a shared (batch = 1) `B` broadcast across slices,
    /// including worker counts far beyond the expert count (the parallel
    /// per-slice packing regression).
    #[test]
    fn prepacked_batched_matmul_is_bit_identical(
        dims in (1usize..5, 1usize..40, 1usize..70, 1usize..90),
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (e, m, k, n) = dims;
        let a = random_tensor(vec![e, m, k], seed);
        let b = random_tensor(vec![if shared { 1 } else { e }, k, n], seed ^ 0x5EED);
        // The reference has no broadcast; materialize the shared operand.
        let b_full = if shared {
            Tensor::from_vec(vec![e, k, n], b.data().repeat(e)).unwrap()
        } else {
            b.clone()
        };
        let reference = gemm::batched_matmul_reference(&a, &b_full).unwrap();
        let packed = PackedTensor::pack_batched(&b).unwrap();
        for workers in [1, 2, 7, 16, 0] {
            let fast = gemm::batched_matmul_packed(&a, &packed, workers).unwrap();
            prop_assert!(
                reference.data() == fast.data(),
                "prepacked batched matmul diverged: e={e} m={m} k={k} n={n} shared={shared} workers={workers}"
            );
        }
    }

    /// The public `Tensor::matmul_t` API routes through the tiled engine
    /// and therefore also matches the reference exactly.
    #[test]
    fn public_matmul_api_matches_reference(
        dims in (1usize..40, 1usize..40, 1usize..40),
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = dims;
        let a_shape = if ta { vec![k, m] } else { vec![m, k] };
        let b_shape = if tb { vec![n, k] } else { vec![k, n] };
        let a = random_tensor(a_shape, seed);
        let b = random_tensor(b_shape, seed.wrapping_add(1));
        let reference = gemm::matmul_reference(&a, &b, ta, tb).unwrap();
        let api = a.matmul_t(&b, ta, tb).unwrap();
        prop_assert!(reference.data() == api.data());
    }
}

/// Regression test for the IEEE-754 zero-skip bug: a kernel that skips
/// `a == 0.0` terms silently converts `0 · inf` and `0 · NaN` (which are
/// NaN) into `0`. Non-finite values must propagate identically through
/// the reference and the tiled engine at every worker count.
#[test]
fn non_finite_operands_propagate_through_all_paths() {
    let m = 9;
    let k = 70; // crosses MR and NR edges with a remainder
    let n = 33;
    let mut a = random_tensor(vec![m, k], 7);
    let mut b = random_tensor(vec![k, n], 8);
    // A zero in A facing an inf and a NaN in B: the products are NaN and
    // must not be skipped.
    a.data_mut()[3 * k + 5] = 0.0;
    b.data_mut()[5 * n + 2] = f32::INFINITY;
    b.data_mut()[5 * n + 7] = f32::NAN;
    let reference = gemm::matmul_reference(&a, &b, false, false).unwrap();
    assert!(reference.data()[3 * n + 2].is_nan(), "0 * inf must be NaN");
    assert!(reference.data()[3 * n + 7].is_nan(), "0 * NaN must be NaN");
    for workers in WORKER_COUNTS {
        let tiled = gemm::matmul_tiled(&a, &b, false, false, workers).unwrap();
        for (i, (r, t)) in reference.data().iter().zip(tiled.data()).enumerate() {
            assert!(
                r.to_bits() == t.to_bits(),
                "element {i}: reference {r:?} vs tiled {t:?} (workers={workers})"
            );
        }
    }
}
