//! TEMPORARY review stress: overlapping par_ranges jobs from two threads.
use lancet_tensor::pool::{self, SharedSliceMut};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn overlapping_jobs_complete_all_tasks() {
    for round in 0..200 {
        let counters: Vec<Vec<AtomicUsize>> = (0..2)
            .map(|_| (0..64).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|s| {
            for t in 0..2 {
                let c = &counters[t];
                s.spawn(move || {
                    pool::par_ranges(64, 8, |r| {
                        for i in r {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                            c[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                });
            }
        });
        for (t, c) in counters.iter().enumerate() {
            for (i, x) in c.iter().enumerate() {
                assert_eq!(
                    x.load(Ordering::Relaxed),
                    1,
                    "round {round}: submitter {t} task {i} ran wrong number of times"
                );
            }
        }
    }
}

#[test]
fn overlapping_writes_are_complete() {
    for round in 0..200 {
        let mut bufs = vec![vec![0.0f32; 4096]; 2];
        let (b0, b1) = bufs.split_at_mut(1);
        std::thread::scope(|s| {
            for (t, buf) in [&mut b0[0], &mut b1[0]].into_iter().enumerate() {
                s.spawn(move || {
                    let view = SharedSliceMut::new(buf.as_mut_slice());
                    pool::par_ranges(4096, 8, |r| {
                        let chunk = unsafe { view.range_mut(r.clone()) };
                        for (off, x) in chunk.iter_mut().enumerate() {
                            *x = (r.start + off + t) as f32 + 1.0;
                        }
                    });
                });
            }
        });
        for (t, buf) in bufs.iter().enumerate() {
            for (i, &x) in buf.iter().enumerate() {
                assert_eq!(x, (i + t) as f32 + 1.0, "round {round} submitter {t} elem {i}");
            }
        }
    }
}
