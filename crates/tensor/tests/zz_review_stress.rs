//! TEMPORARY review stress test: concurrent submitters to the global pool.
use lancet_tensor::{gemm, TensorRng};

#[test]
fn concurrent_matmuls_from_many_threads() {
    let mut rng = TensorRng::seed(42);
    let a = rng.uniform(vec![130, 300], -1.0, 1.0);
    let b = rng.uniform(vec![300, 170], -1.0, 1.0);
    let reference = gemm::matmul_reference(&a, &b, false, false).unwrap();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..30 {
                    let y = gemm::matmul_tiled(&a, &b, false, false, 0).unwrap();
                    assert_eq!(y.data(), reference.data(), "tiled diverged under concurrency");
                }
            });
        }
    });
}
