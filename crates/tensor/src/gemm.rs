//! The packed, cache-blocked matmul engine behind [`Tensor::matmul`],
//! [`Tensor::matmul_t`] and [`Tensor::batched_matmul`].
//!
//! # Why packing
//!
//! The seed kernel walked `a_at`/`b_at` index closures per element — a
//! branch and a strided load per multiply, and no cache reuse: each output
//! row re-streamed the whole `B` matrix from memory. This module instead
//! follows the classic GotoBLAS/BLIS structure:
//!
//! 1. **Pack `B` once** into `kc × nc` panels of `NR`-wide column strips
//!    (transposes are resolved during packing, so the micro-kernel only
//!    ever streams contiguous data).
//! 2. **Pack `A`** per `mc × kc` block into a worker-local buffer,
//!    interleaved in `MR`-row groups.
//! 3. A **register-tiled micro-kernel** updates an `MR × NR` output tile
//!    with the accumulators held in registers across the whole `kc`
//!    depth — one output load and one store per tile instead of one per
//!    `k` step. On x86-64 an AVX-512 or AVX2-compiled copy of the kernel
//!    is selected at runtime (vectorizing across *independent* output
//!    elements only, so lane width never changes results; no FMA
//!    contraction is used).
//!
//! The cache blocking `mc/kc/nc` is a runtime [`BlockSpec`]: fixed
//! constants by default, optionally specialized per shape class and ISA by
//! the [`crate::tune`] autotuner. Weights that never change between calls
//! can skip step 1 entirely by being packed once into a
//! [`PackedTensor`](crate::PackedTensor) and multiplied via
//! [`matmul_packed`] / [`batched_matmul_packed`].
//!
//! # Determinism contract
//!
//! Every kernel in this module accumulates each output element in **the
//! same order: `k` ascending** (`kc` blocks ascending, offsets ascending
//! inside a block — exactly the reference kernel's order). Workers split
//! the *output* by row blocks, so each element is written by one task.
//! The blocking parameters only change how the iteration space is *cut*,
//! never the per-element accumulation order: the accumulator tile is
//! loaded from and stored back to `out` per `kc` block, so the adds stay
//! left-associated and `k`-ascending for any `BlockSpec`. Consequently
//! [`matmul_tiled`], [`matmul_tiled_with`] (any valid spec) and
//! [`matmul_packed`] are all bit-identical to [`matmul_reference`] for
//! every shape, transpose combination, worker count, and SIMD path —
//! enforced by `tests/backend_props.rs` and relied on by the fig05
//! equivalence harness.
//!
//! Unlike the seed kernel, no `a == 0.0` short-circuit is applied: skipping
//! a zero multiplicand silently dropped `0 · ∞` and `0 · NaN`
//! contributions, diverging from IEEE semantics on non-finite inputs.

use crate::pack::PackedTensor;
use crate::pool::{self, SharedSliceMut};
use crate::{Result, Tensor, TensorError};

/// Default rows per packed `A` block (output rows processed per task step).
pub const MC: usize = 64;
/// Default depth of a packed panel (the `k`-blocking factor).
pub const KC: usize = 256;
/// Default columns per packed `B` panel.
pub const NC: usize = 512;
/// Output rows per register tile.
const MR: usize = 4;
/// Output columns per register tile (the width of a packed `B` strip).
/// `MR × NR` accumulators fit the 16 AVX2 vector registers; with AVX-512
/// each row is a single 16-lane register.
const NR: usize = 16;

/// Problems smaller than this many multiply-adds skip packing and run the
/// reference kernel directly (identical bits, less setup).
const SMALL_GEMM: usize = 32 * 32 * 32;

/// Runtime cache-blocking parameters for the packed engine.
///
/// `MR`/`NR` (the register tile) stay compile-time constants — the
/// micro-kernel holds its accumulators in fixed-size arrays — but the
/// cache blocking is data: [`BlockSpec::DEFAULT`] reproduces the fixed
/// constants, and the [`crate::tune`] module can substitute per-shape,
/// per-ISA tuned values. Any valid spec produces bit-identical results
/// (see the module docs); only wall-clock changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSpec {
    /// Rows per packed `A` block.
    pub mc: usize,
    /// Depth of a packed `B` panel (`k`-blocking factor).
    pub kc: usize,
    /// Columns per packed `B` panel.
    pub nc: usize,
}

impl BlockSpec {
    /// The compiled-in blocking ([`MC`], [`KC`], [`NC`]) — the default and
    /// the fallback whenever no tuned entry applies.
    pub const DEFAULT: BlockSpec = BlockSpec { mc: MC, kc: KC, nc: NC };

    /// Bounds-checks a spec (e.g. one parsed from a tuned table on disk)
    /// so corrupt input cannot request absurd pack buffers or a zero
    /// blocking factor. Entry points silently substitute
    /// [`BlockSpec::DEFAULT`] for invalid specs, per the repo-wide
    /// "garbage degrades to the default" configuration rule.
    pub fn is_valid(&self) -> bool {
        (1..=8192).contains(&self.mc)
            && (1..=8192).contains(&self.kc)
            && (1..=8192).contains(&self.nc)
    }

    /// `self` if valid, otherwise the default blocking.
    fn sanitized(self) -> BlockSpec {
        if self.is_valid() {
            self
        } else {
            BlockSpec::DEFAULT
        }
    }
}

impl Default for BlockSpec {
    fn default() -> Self {
        BlockSpec::DEFAULT
    }
}

/// Validates rank-2 shapes and resolves virtual transposes to `(m, k, n)`.
fn matmul_dims(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<(usize, usize, usize)> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: b.rank() });
    }
    let (ar, ac) = (a.shape()[0], a.shape()[1]);
    let (br, bc) = (b.shape()[0], b.shape()[1]);
    let (m, ka) = if ta { (ac, ar) } else { (ar, ac) };
    let (kb, n) = if tb { (bc, br) } else { (br, bc) };
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    Ok((m, ka, n))
}

/// The retained naive kernel: a per-element triple loop over index
/// closures, kept as the executable specification the tiled engine is
/// tested against (and as the benchmark baseline).
///
/// Accumulation order per output element is `k` ascending. No zero
/// short-circuit: `0 · ∞ = NaN` propagates per IEEE 754.
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_t`].
pub fn matmul_reference(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b, ta, tb)?;
    let mut out = vec![0.0f32; m * n];
    reference_into(m, k, n, a.data(), a.shape()[1], ta, b.data(), b.shape()[1], tb, &mut out);
    Tensor::from_vec(vec![m, n], out)
}

#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn reference_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ac: usize,
    ta: bool,
    b: &[f32],
    bc: usize,
    tb: bool,
    out: &mut [f32],
) {
    let a_at = |i: usize, p: usize| if ta { a[p * ac + i] } else { a[i * ac + p] };
    let b_at = |p: usize, j: usize| if tb { b[j * bc + p] } else { b[p * bc + j] };
    for i in 0..m {
        for p in 0..k {
            let av = a_at(i, p);
            for j in 0..n {
                out[i * n + j] += av * b_at(p, j);
            }
        }
    }
}

/// The packed, cache-blocked, multi-threaded matmul.
///
/// `workers = 0` auto-sizes from the shared pool
/// ([`pool::default_workers`]); `workers = 1` runs sequentially on the
/// calling thread. Blocking comes from the active tuned table
/// ([`crate::tune::spec_for`]), falling back to [`BlockSpec::DEFAULT`].
/// Any value of either knob is bit-identical to [`matmul_reference`].
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_t`].
pub fn matmul_tiled(a: &Tensor, b: &Tensor, ta: bool, tb: bool, workers: usize) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b, ta, tb)?;
    if m * k * n <= SMALL_GEMM {
        return matmul_reference(a, b, ta, tb);
    }
    matmul_tiled_spec(a, b, ta, tb, workers, crate::tune::spec_for(m, k, n))
}

/// [`matmul_tiled`] with an explicit [`BlockSpec`] and no small-problem
/// cutoff — the autotuner's measurement entry point, also used by tests to
/// pin non-default blockings. Invalid specs degrade to the default.
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_t`].
pub fn matmul_tiled_with(
    a: &Tensor,
    b: &Tensor,
    ta: bool,
    tb: bool,
    workers: usize,
    spec: BlockSpec,
) -> Result<Tensor> {
    matmul_tiled_spec(a, b, ta, tb, workers, spec.sanitized())
}

fn matmul_tiled_spec(
    a: &Tensor,
    b: &Tensor,
    ta: bool,
    tb: bool,
    workers: usize,
    spec: BlockSpec,
) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b, ta, tb)?;
    let mut out = vec![0.0f32; m * n];
    let w = pool::resolve_workers(workers);
    let bpack = pack_b(spec, k, n, b.data(), b.shape()[1], tb, w);
    gemm_packed(spec, m, k, n, a.data(), a.shape()[1], ta, &bpack, &mut out, w);
    Tensor::from_vec(vec![m, n], out)
}

/// Matmul against a weight already resident in panel layout: the
/// steady-state serving fast path, skipping `pack_b` entirely.
///
/// Uses the blocking the panels were packed with, so the result is
/// bit-identical to [`matmul_reference`] (and to the repacking paths)
/// regardless of which spec that was. The packed operand must be rank-2
/// (`batch == 1`).
///
/// # Errors
///
/// [`TensorError::RankMismatch`] for a non-rank-2 `a`;
/// [`TensorError::ShapeMismatch`] when `a`'s inner dimension disagrees
/// with the packed `k` or the packed operand is batched.
pub fn matmul_packed(a: &Tensor, b: &PackedTensor, ta: bool, workers: usize) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    let (ar, ac) = (a.shape()[0], a.shape()[1]);
    let (m, k) = if ta { (ac, ar) } else { (ar, ac) };
    if b.batch() != 1 || k != b.k() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.src_shape().to_vec(),
        });
    }
    let n = b.n();
    let mut out = vec![0.0f32; m * n];
    let w = pool::resolve_workers(workers);
    gemm_packed(b.spec(), m, k, n, a.data(), ac, ta, b.panels(0), &mut out, w);
    Tensor::from_vec(vec![m, n], out)
}

/// Reference batched matmul `(B, M, K) x (B, K, N)`: the naive loop, one
/// expert at a time, no zero short-circuit.
///
/// # Errors
///
/// Same conditions as [`Tensor::batched_matmul`].
pub fn batched_matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bt, m, k, n) = batched_dims(a, b)?;
    let mut out = vec![0.0f32; bt * m * n];
    for bi in 0..bt {
        reference_into(
            m,
            k,
            n,
            &a.data()[bi * m * k..(bi + 1) * m * k],
            k,
            false,
            &b.data()[bi * k * n..(bi + 1) * k * n],
            n,
            false,
            &mut out[bi * m * n..(bi + 1) * m * n],
        );
    }
    Tensor::from_vec(vec![bt, m, n], out)
}

/// Tiled batched matmul. Packs every expert's panels in parallel over the
/// shared pool, then splits the `(expert, row-block)` grid across workers
/// — so parallelism no longer collapses when `bt` is smaller than the
/// worker count, and packing is no longer serialized per expert.
///
/// Per-element accumulation order is unchanged, so results are
/// bit-identical to [`batched_matmul_reference`] for any `workers`
/// (`0` = auto).
///
/// # Errors
///
/// Same conditions as [`Tensor::batched_matmul`].
pub fn batched_matmul_tiled(a: &Tensor, b: &Tensor, workers: usize) -> Result<Tensor> {
    let (bt, m, k, n) = batched_dims(a, b)?;
    if bt == 0 || m * k * n <= SMALL_GEMM {
        return batched_matmul_reference(a, b);
    }
    let spec = crate::tune::spec_for(m, k, n);
    let mut out = vec![0.0f32; bt * m * n];
    let w = pool::resolve_workers(workers);
    let bpack = pack_b_batched(spec, bt, k, n, b.data(), w);
    batched_gemm_packed(spec, bt, m, k, n, a.data(), &bpack, false, &mut out, w);
    Tensor::from_vec(vec![bt, m, n], out)
}

/// Batched matmul against prepacked per-expert (or shared) weight panels:
/// `(B, M, K) x packed (B, K, N) -> (B, M, N)`.
///
/// A packed operand with `batch == 1` is broadcast across the batch axis —
/// the shared-`B` case packs (and stores) one panel set instead of `B`
/// copies. Bit-identical to [`batched_matmul_reference`] against the
/// equivalent materialized operand.
///
/// # Errors
///
/// [`TensorError::RankMismatch`] for a non-rank-3 `a`;
/// [`TensorError::ShapeMismatch`] when the batch axes disagree (and the
/// packed operand is not broadcastable) or the inner dimensions disagree.
pub fn batched_matmul_packed(a: &Tensor, b: &PackedTensor, workers: usize) -> Result<Tensor> {
    if a.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "batched_matmul",
            expected: 3,
            actual: a.rank(),
        });
    }
    let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    if (b.batch() != bt && b.batch() != 1) || k != b.k() {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul",
            lhs: a.shape().to_vec(),
            rhs: b.src_shape().to_vec(),
        });
    }
    let n = b.n();
    let mut out = vec![0.0f32; bt * m * n];
    let w = pool::resolve_workers(workers);
    batched_gemm_packed(b.spec(), bt, m, k, n, a.data(), b.buf(), b.batch() == 1, &mut out, w);
    Tensor::from_vec(vec![bt, m, n], out)
}

fn batched_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if a.rank() != 3 || b.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "batched_matmul",
            expected: 3,
            actual: if a.rank() != 3 { a.rank() } else { b.rank() },
        });
    }
    let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (b2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    if bt != b2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    Ok((bt, m, k, n))
}

/// Elements one matrix occupies in panel layout under `spec` (`kc × nc`
/// slots, edge panels padded to full size so panel addressing stays a
/// multiplication).
pub(crate) fn packed_len(spec: BlockSpec, k: usize, n: usize) -> usize {
    k.div_ceil(spec.kc) * n.div_ceil(spec.nc) * spec.kc * spec.nc
}

/// Resolves panel index `panel` to its geometry: `(p0, j0, kcb, ncb)`.
fn panel_dims(
    spec: BlockSpec,
    k: usize,
    n: usize,
    panel: usize,
    num_nc: usize,
) -> (usize, usize, usize, usize) {
    let (kci, nci) = (panel / num_nc, panel % num_nc);
    let (p0, j0) = (kci * spec.kc, nci * spec.nc);
    (p0, j0, spec.kc.min(k - p0), spec.nc.min(n - j0))
}

/// Fills `dst` (length `kcb * ncb`) with panel `panel` of `B`, resolving a
/// virtual transpose. Within a panel, columns are grouped into `NR`-wide
/// strips; strip `s` starts at `s * kcb * NR`, is `pp`-major and
/// contiguous, so the micro-kernel streams `B` linearly while sweeping `k`.
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn pack_panel(
    spec: BlockSpec,
    k: usize,
    n: usize,
    b: &[f32],
    bc: usize,
    tb: bool,
    panel: usize,
    num_nc: usize,
    dst: &mut [f32],
) {
    let (p0, j0, kcb, ncb) = panel_dims(spec, k, n, panel, num_nc);
    for (s, strip) in dst[..kcb * ncb].chunks_mut(kcb * NR).enumerate() {
        let c0 = s * NR;
        let w = NR.min(ncb - c0);
        for pp in 0..kcb {
            let row = &mut strip[pp * w..pp * w + w];
            if tb {
                for (c, x) in row.iter_mut().enumerate() {
                    *x = b[(j0 + c0 + c) * bc + (p0 + pp)];
                }
            } else {
                let src = (p0 + pp) * bc + j0 + c0;
                row.copy_from_slice(&b[src..src + w]);
            }
        }
    }
}

/// Packs `B` (resolving a virtual transpose) into `kc × nc` panels laid
/// out panel-major: panel `(kci, nci)` starts at `(kci * num_nc + nci) *
/// kc * nc`. Panels pack in parallel over the shared pool.
pub(crate) fn pack_b(
    spec: BlockSpec,
    k: usize,
    n: usize,
    b: &[f32],
    bc: usize,
    tb: bool,
    workers: usize,
) -> Vec<f32> {
    let num_nc = n.div_ceil(spec.nc);
    let panels = k.div_ceil(spec.kc) * num_nc;
    let mut pack = vec![0.0f32; panels * spec.kc * spec.nc];
    let view = SharedSliceMut::new(&mut pack);
    pool::par_ranges(panels, workers, |range| {
        for panel in range {
            let (_, _, kcb, ncb) = panel_dims(spec, k, n, panel, num_nc);
            let base = panel * spec.kc * spec.nc;
            // SAFETY: panel ranges are disjoint across tasks.
            let dst = unsafe { view.range_mut(base..base + kcb * ncb) };
            pack_panel(spec, k, n, b, bc, tb, panel, num_nc, dst);
        }
    });
    pack
}

/// Packs every slice of a contiguous `(B, K, N)` operand into panel
/// layout, parallelizing over the full `(slice, panel)` grid — the fix for
/// the old per-expert `workers: 1` packing, and the builder behind
/// [`PackedTensor::pack_batched`](crate::PackedTensor::pack_batched).
pub(crate) fn pack_b_batched(
    spec: BlockSpec,
    bt: usize,
    k: usize,
    n: usize,
    b: &[f32],
    workers: usize,
) -> Vec<f32> {
    let num_nc = n.div_ceil(spec.nc);
    let per = k.div_ceil(spec.kc) * num_nc;
    let plen = packed_len(spec, k, n);
    let mut pack = vec![0.0f32; bt * plen];
    let view = SharedSliceMut::new(&mut pack);
    pool::par_ranges(bt * per, workers, |units| {
        for u in units {
            let (bi, panel) = (u / per, u % per);
            let (_, _, kcb, ncb) = panel_dims(spec, k, n, panel, num_nc);
            let base = bi * plen + panel * spec.kc * spec.nc;
            // SAFETY: (slice, panel) ranges are disjoint across tasks.
            let dst = unsafe { view.range_mut(base..base + kcb * ncb) };
            pack_panel(spec, k, n, &b[bi * k * n..(bi + 1) * k * n], n, false, panel, num_nc, dst);
        }
    });
    pack
}

/// Arguments threaded through the blocked kernels.
struct Gemm<'a> {
    spec: BlockSpec,
    m: usize,
    k: usize,
    n: usize,
    a: &'a [f32],
    /// Stored column count of `a` (stride between stored rows).
    ac: usize,
    ta: bool,
    bpack: &'a [f32],
    num_nc: usize,
    out: SharedSliceMut<'a>,
    /// Element offset of this product's output inside `out` (the batched
    /// kernel points every slice's tasks at one shared buffer).
    out_base: usize,
}

/// Runs the packed kernel over `out`, splitting `mc` row blocks across at
/// most `workers` tasks.
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn gemm_packed(
    spec: BlockSpec,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ac: usize,
    ta: bool,
    bpack: &[f32],
    out: &mut [f32],
    workers: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let g = Gemm {
        spec,
        m,
        k,
        n,
        a,
        ac,
        ta,
        bpack,
        num_nc: n.div_ceil(spec.nc),
        out: SharedSliceMut::new(out),
        out_base: 0,
    };
    pool::par_ranges(m.div_ceil(spec.mc), workers, |blocks| compute_blocks(&g, blocks));
}

/// Runs the packed kernel for every slice of a batched product over one
/// shared `(slice, row-block)` task grid. `shared_b` broadcasts a single
/// panel set across the batch axis.
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn batched_gemm_packed(
    spec: BlockSpec,
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    bpack: &[f32],
    shared_b: bool,
    out: &mut [f32],
    workers: usize,
) {
    if bt == 0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let plen = packed_len(spec, k, n);
    let num_mc = m.div_ceil(spec.mc);
    let num_nc = n.div_ceil(spec.nc);
    let view = SharedSliceMut::new(out);
    pool::par_ranges(bt * num_mc, workers, |units| {
        // Group the contiguous unit range by slice so each slice gets one
        // `compute_blocks` call (one `apack` buffer) per task.
        let mut u = units.start;
        while u < units.end {
            let bi = u / num_mc;
            let end = ((bi + 1) * num_mc).min(units.end);
            let poff = if shared_b { 0 } else { bi * plen };
            let g = Gemm {
                spec,
                m,
                k,
                n,
                a: &a[bi * m * k..(bi + 1) * m * k],
                ac: k,
                ta: false,
                bpack: &bpack[poff..poff + plen],
                num_nc,
                out: view,
                out_base: bi * m * n,
            };
            compute_blocks(&g, (u - bi * num_mc)..(end - bi * num_mc));
            u = end;
        }
    });
}

#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
enum Isa {
    Avx512,
    Avx2,
    Portable,
}

#[cfg(target_arch = "x86_64")]
fn isa() -> Isa {
    use std::sync::OnceLock;
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512f") {
            Isa::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            Isa::Avx2
        } else {
            Isa::Portable
        }
    })
}

/// The SIMD path the micro-kernel dispatches to on this machine:
/// `"avx512"`, `"avx2"`, or `"portable"`. Tuned tables are keyed by this
/// string so a table recorded on one ISA never steers another.
pub fn detected_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match isa() {
            Isa::Avx512 => "avx512",
            Isa::Avx2 => "avx2",
            Isa::Portable => "portable",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable"
    }
}

/// Dispatches a block range to the widest kernel the CPU supports. The
/// AVX-512/AVX2 copies differ only in codegen (16/8-lane vectorization of
/// the same loops, across independent output elements) — results are
/// bit-identical.
fn compute_blocks(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    #[cfg(target_arch = "x86_64")]
    {
        match isa() {
            // SAFETY: the matching CPU feature was verified at runtime.
            Isa::Avx512 => return unsafe { compute_blocks_avx512(g, blocks) },
            // SAFETY: as above.
            Isa::Avx2 => return unsafe { compute_blocks_avx2(g, blocks) },
            Isa::Portable => {}
        }
    }
    compute_blocks_portable(g, blocks);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn compute_blocks_avx512(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compute_blocks_avx2(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

fn compute_blocks_portable(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

/// The blocked loop nest for a contiguous range of `mc` row blocks.
/// `#[inline(always)]` so each dispatch wrapper compiles its own copy
/// with its own target features.
#[inline(always)]
fn compute_blocks_impl(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    let (mc, kc, nc) = (g.spec.mc, g.spec.kc, g.spec.nc);
    let mut apack = vec![0.0f32; mc * kc];
    for blk in blocks {
        let i0 = blk * mc;
        let mcb = mc.min(g.m - i0);
        let o0 = g.out_base + i0 * g.n;
        // SAFETY: `(slice, row-block)` output ranges are disjoint across
        // tasks.
        let out_rows = unsafe { g.out.range_mut(o0..o0 + mcb * g.n) };
        for kci in 0..g.k.div_ceil(kc) {
            let p0 = kci * kc;
            let kcb = kc.min(g.k - p0);
            pack_a(g, i0, mcb, p0, kcb, &mut apack);
            for nci in 0..g.num_nc {
                let j0 = nci * nc;
                let ncb = nc.min(g.n - j0);
                let base = (kci * g.num_nc + nci) * (kc * nc);
                let panel = &g.bpack[base..base + kcb * ncb];
                macro_tile(out_rows, g.n, j0, mcb, kcb, ncb, &apack[..mcb * kcb], panel);
            }
        }
    }
}

/// Copies the `mcb × kcb` block of `A` at `(i0, p0)` into `apack`,
/// resolving a virtual transpose. Rows are interleaved in `MR`-row
/// groups: group `g` starts at `g * MR * kcb`, is `pp`-major with its
/// `rows` values contiguous per `k` step, matching the micro-kernel's
/// broadcast order.
#[inline(always)]
fn pack_a(g: &Gemm<'_>, i0: usize, mcb: usize, p0: usize, kcb: usize, apack: &mut [f32]) {
    for (grp, chunk) in apack[..mcb * kcb].chunks_mut(MR * kcb).enumerate() {
        let r0 = grp * MR;
        let rows = MR.min(mcb - r0);
        for pp in 0..kcb {
            for r in 0..rows {
                let (i, p) = (i0 + r0 + r, p0 + pp);
                chunk[pp * rows + r] = if g.ta { g.a[p * g.ac + i] } else { g.a[i * g.ac + p] };
            }
        }
    }
}

/// Accumulates an `mcb × ncb` output tile as a grid of `MR × NR` register
/// tiles; edge tiles (row or column remainders) fall back to an
/// order-identical scalar path. The `out` slice covers rows
/// `i0..i0+mcb` of the full output (stride `n`); columns `j0` onward are
/// updated.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn macro_tile(
    out: &mut [f32],
    n: usize,
    j0: usize,
    mcb: usize,
    kcb: usize,
    ncb: usize,
    apack: &[f32],
    panel: &[f32],
) {
    for (grp, astrip) in apack.chunks(MR * kcb).enumerate() {
        let r0 = grp * MR;
        let rows = MR.min(mcb - r0);
        for (s, bstrip) in panel.chunks(kcb * NR).enumerate() {
            let c0 = s * NR;
            let w = NR.min(ncb - c0);
            let off = r0 * n + j0 + c0;
            if rows == MR && w == NR {
                tile_full(out, n, off, kcb, astrip, bstrip);
            } else {
                tile_edge(out, n, off, rows, kcb, w, astrip, bstrip);
            }
        }
    }
}

/// The register-tiled inner kernel: an `MR × NR` accumulator grid loaded
/// once, swept over the whole `kcb` depth (`k` ascending, left-associated
/// adds — the reference accumulation order), stored once. The fixed-size
/// `NR` loops vectorize across independent output elements; there is no
/// reduction, so lane width cannot change results.
#[inline(always)]
fn tile_full(out: &mut [f32], n: usize, off: usize, kcb: usize, astrip: &[f32], bstrip: &[f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[off + r * n..off + r * n + NR]);
    }
    for pp in 0..kcb {
        let b: &[f32; NR] = bstrip[pp * NR..pp * NR + NR].try_into().expect("strip width");
        let a = &astrip[pp * MR..pp * MR + MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let ar = a[r];
            for (o, &bv) in accr.iter_mut().zip(b) {
                *o += ar * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[off + r * n..off + r * n + NR].copy_from_slice(accr);
    }
}

/// Remainder tiles (< `MR` rows or < `NR` columns): same `k`-ascending
/// per-element order, operand widths from the packed layouts.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn tile_edge(
    out: &mut [f32],
    n: usize,
    off: usize,
    rows: usize,
    kcb: usize,
    w: usize,
    astrip: &[f32],
    bstrip: &[f32],
) {
    for pp in 0..kcb {
        let b = &bstrip[pp * w..pp * w + w];
        let a = &astrip[pp * rows..pp * rows + rows];
        for (r, &av) in a.iter().enumerate() {
            let orow = &mut out[off + r * n..off + r * n + w];
            for (o, &bv) in orow.iter_mut().zip(b) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.data(), b.data(), "tiled must be bit-identical to reference");
    }

    #[test]
    fn tiled_matches_reference_beyond_block_bounds() {
        let mut rng = TensorRng::seed(11);
        // Shapes straddling MC/KC/NC boundaries, including remainders.
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (64, 256, 512), (65, 257, 513), (130, 300, 70)] {
            let a = rng.uniform(vec![m, k], -1.0, 1.0);
            let b = rng.uniform(vec![k, n], -1.0, 1.0);
            let reference = matmul_reference(&a, &b, false, false).unwrap();
            for workers in [1, 2, 0] {
                close(&matmul_tiled(&a, &b, false, false, workers).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn transposed_operands_match_reference() {
        let mut rng = TensorRng::seed(12);
        let (m, k, n) = (70, 90, 110);
        for (ta, tb) in [(false, true), (true, false), (true, true)] {
            let a_dims = if ta { vec![k, m] } else { vec![m, k] };
            let b_dims = if tb { vec![n, k] } else { vec![k, n] };
            let a = rng.uniform(a_dims, -1.0, 1.0);
            let b = rng.uniform(b_dims, -1.0, 1.0);
            let reference = matmul_reference(&a, &b, ta, tb).unwrap();
            close(&matmul_tiled(&a, &b, ta, tb, 0).unwrap(), &reference);
        }
    }

    #[test]
    fn batched_matches_reference() {
        let mut rng = TensorRng::seed(13);
        for (bt, m, k, n) in [(1, 40, 50, 60), (3, 33, 65, 40), (8, 16, 64, 48)] {
            let a = rng.uniform(vec![bt, m, k], -1.0, 1.0);
            let b = rng.uniform(vec![bt, k, n], -1.0, 1.0);
            let reference = batched_matmul_reference(&a, &b).unwrap();
            for workers in [1, 2, 0] {
                close(&batched_matmul_tiled(&a, &b, workers).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn batched_parallel_packing_is_bit_identical_beyond_expert_count() {
        // Regression for the old path that packed each expert's panels
        // with `workers: 1` inside a per-expert task: the rebuilt kernel
        // parallelizes the (expert, panel) and (expert, row-block) grids,
        // so worker counts far beyond `bt` must still be bit-identical.
        let mut rng = TensorRng::seed(14);
        let (bt, m, k, n) = (2, 130, 257, 100);
        let a = rng.uniform(vec![bt, m, k], -1.0, 1.0);
        let b = rng.uniform(vec![bt, k, n], -1.0, 1.0);
        let reference = batched_matmul_reference(&a, &b).unwrap();
        for workers in [1, 2, 3, 7, 16, 0] {
            close(&batched_matmul_tiled(&a, &b, workers).unwrap(), &reference);
        }
    }

    #[test]
    fn explicit_blockings_are_bit_identical() {
        // Runtime mc/kc/nc only re-cut the iteration space; the
        // accumulation order per element is pinned, so every valid spec
        // must reproduce the reference bits exactly.
        let mut rng = TensorRng::seed(15);
        let (m, k, n) = (70, 130, 90);
        let a = rng.uniform(vec![m, k], -1.0, 1.0);
        let b = rng.uniform(vec![k, n], -1.0, 1.0);
        let reference = matmul_reference(&a, &b, false, false).unwrap();
        for spec in [
            BlockSpec::DEFAULT,
            BlockSpec { mc: 4, kc: 1, nc: 16 },
            BlockSpec { mc: 32, kc: 128, nc: 256 },
            BlockSpec { mc: 128, kc: 512, nc: 1024 },
            BlockSpec { mc: 33, kc: 17, nc: 23 },
        ] {
            for workers in [1, 3] {
                close(&matmul_tiled_with(&a, &b, false, false, workers, spec).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn invalid_spec_degrades_to_default() {
        let mut rng = TensorRng::seed(16);
        let a = rng.uniform(vec![40, 50], -1.0, 1.0);
        let b = rng.uniform(vec![50, 60], -1.0, 1.0);
        let reference = matmul_reference(&a, &b, false, false).unwrap();
        let bad = BlockSpec { mc: 0, kc: 0, nc: 0 };
        assert!(!bad.is_valid());
        close(&matmul_tiled_with(&a, &b, false, false, 1, bad).unwrap(), &reference);
    }

    #[test]
    fn non_finite_inputs_propagate() {
        // 0 · ∞ must be NaN (the seed kernel's zero short-circuit dropped it).
        let a = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 1], vec![f32::INFINITY, 2.0]).unwrap();
        let y = matmul_reference(&a, &b, false, false).unwrap();
        assert!(y.data()[0].is_nan(), "0·∞ + 1·2 must be NaN, got {}", y.data()[0]);
        let yt = matmul_tiled(&a, &b, false, false, 0).unwrap();
        assert!(yt.data()[0].is_nan());
    }

    #[test]
    fn shape_errors_match_api() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        assert!(matmul_tiled(&a, &b, false, false, 0).is_err());
        assert!(matmul_tiled(&a, &b, false, true, 0).is_ok());
        assert!(matmul_reference(&a, &Tensor::zeros(vec![3]), false, false).is_err());
    }
}
