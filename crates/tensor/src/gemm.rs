//! The packed, cache-blocked matmul engine behind [`Tensor::matmul`],
//! [`Tensor::matmul_t`] and [`Tensor::batched_matmul`].
//!
//! # Why packing
//!
//! The seed kernel walked `a_at`/`b_at` index closures per element — a
//! branch and a strided load per multiply, and no cache reuse: each output
//! row re-streamed the whole `B` matrix from memory. This module instead
//! follows the classic GotoBLAS/BLIS structure:
//!
//! 1. **Pack `B` once** into `KC × NC` panels of `NR`-wide column strips
//!    (transposes are resolved during packing, so the micro-kernel only
//!    ever streams contiguous data).
//! 2. **Pack `A`** per `MC × KC` block into a worker-local buffer,
//!    interleaved in `MR`-row groups.
//! 3. A **register-tiled micro-kernel** updates an `MR × NR` output tile
//!    with the accumulators held in registers across the whole `KC`
//!    depth — one output load and one store per tile instead of one per
//!    `k` step. On x86-64 an AVX-512 or AVX2-compiled copy of the kernel
//!    is selected at runtime (vectorizing across *independent* output
//!    elements only, so lane width never changes results; no FMA
//!    contraction is used).
//!
//! # Determinism contract
//!
//! Every kernel in this module accumulates each output element in **the
//! same order: `k` ascending** (`KC` blocks ascending, offsets ascending
//! inside a block — exactly the reference kernel's order). Workers split
//! the *output* by row blocks, so each element is written by one task.
//! Consequently [`matmul_tiled`] is bit-identical to [`matmul_reference`]
//! for every shape, transpose combination, worker count, and SIMD path —
//! enforced by `tests/backend_props.rs` and relied on by the fig05
//! equivalence harness.
//!
//! Unlike the seed kernel, no `a == 0.0` short-circuit is applied: skipping
//! a zero multiplicand silently dropped `0 · ∞` and `0 · NaN`
//! contributions, diverging from IEEE semantics on non-finite inputs.

use crate::pool::{self, SharedSliceMut};
use crate::{Result, Tensor, TensorError};

/// Rows per packed `A` block (output rows processed per task step).
pub const MC: usize = 64;
/// Depth of a packed panel (the `k`-blocking factor).
pub const KC: usize = 256;
/// Columns per packed `B` panel.
pub const NC: usize = 512;
/// Output rows per register tile.
const MR: usize = 4;
/// Output columns per register tile (the width of a packed `B` strip).
/// `MR × NR` accumulators fit the 16 AVX2 vector registers; with AVX-512
/// each row is a single 16-lane register.
const NR: usize = 16;

/// Problems smaller than this many multiply-adds skip packing and run the
/// reference kernel directly (identical bits, less setup).
const SMALL_GEMM: usize = 32 * 32 * 32;

/// Validates rank-2 shapes and resolves virtual transposes to `(m, k, n)`.
fn matmul_dims(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<(usize, usize, usize)> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: b.rank() });
    }
    let (ar, ac) = (a.shape()[0], a.shape()[1]);
    let (br, bc) = (b.shape()[0], b.shape()[1]);
    let (m, ka) = if ta { (ac, ar) } else { (ar, ac) };
    let (kb, n) = if tb { (bc, br) } else { (br, bc) };
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    Ok((m, ka, n))
}

/// The retained naive kernel: a per-element triple loop over index
/// closures, kept as the executable specification the tiled engine is
/// tested against (and as the benchmark baseline).
///
/// Accumulation order per output element is `k` ascending. No zero
/// short-circuit: `0 · ∞ = NaN` propagates per IEEE 754.
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_t`].
pub fn matmul_reference(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b, ta, tb)?;
    let mut out = vec![0.0f32; m * n];
    reference_into(m, k, n, a.data(), a.shape()[1], ta, b.data(), b.shape()[1], tb, &mut out);
    Tensor::from_vec(vec![m, n], out)
}

#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn reference_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ac: usize,
    ta: bool,
    b: &[f32],
    bc: usize,
    tb: bool,
    out: &mut [f32],
) {
    let a_at = |i: usize, p: usize| if ta { a[p * ac + i] } else { a[i * ac + p] };
    let b_at = |p: usize, j: usize| if tb { b[j * bc + p] } else { b[p * bc + j] };
    for i in 0..m {
        for p in 0..k {
            let av = a_at(i, p);
            for j in 0..n {
                out[i * n + j] += av * b_at(p, j);
            }
        }
    }
}

/// The packed, cache-blocked, multi-threaded matmul.
///
/// `workers = 0` auto-sizes from the shared pool
/// ([`pool::default_workers`]); `workers = 1` runs sequentially on the
/// calling thread. Any value is bit-identical to [`matmul_reference`].
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_t`].
pub fn matmul_tiled(a: &Tensor, b: &Tensor, ta: bool, tb: bool, workers: usize) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a, b, ta, tb)?;
    if m * k * n <= SMALL_GEMM {
        return matmul_reference(a, b, ta, tb);
    }
    let mut out = vec![0.0f32; m * n];
    let w = pool::resolve_workers(workers);
    let bpack = pack_b(k, n, b.data(), b.shape()[1], tb, w);
    gemm_packed(m, k, n, a.data(), a.shape()[1], ta, &bpack, &mut out, w);
    Tensor::from_vec(vec![m, n], out)
}

/// Reference batched matmul `(B, M, K) x (B, K, N)`: the naive loop, one
/// expert at a time, no zero short-circuit.
///
/// # Errors
///
/// Same conditions as [`Tensor::batched_matmul`].
pub fn batched_matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bt, m, k, n) = batched_dims(a, b)?;
    let mut out = vec![0.0f32; bt * m * n];
    for bi in 0..bt {
        reference_into(
            m,
            k,
            n,
            &a.data()[bi * m * k..(bi + 1) * m * k],
            k,
            false,
            &b.data()[bi * k * n..(bi + 1) * k * n],
            n,
            false,
            &mut out[bi * m * n..(bi + 1) * m * n],
        );
    }
    Tensor::from_vec(vec![bt, m, n], out)
}

/// Tiled batched matmul, parallelized over the leading (expert) axis.
///
/// Each expert's product runs the packed kernel sequentially inside its
/// task, so results are bit-identical to [`batched_matmul_reference`]
/// for any `workers` (`0` = auto).
///
/// # Errors
///
/// Same conditions as [`Tensor::batched_matmul`].
pub fn batched_matmul_tiled(a: &Tensor, b: &Tensor, workers: usize) -> Result<Tensor> {
    let (bt, m, k, n) = batched_dims(a, b)?;
    if bt == 0 || m * k * n <= SMALL_GEMM {
        return batched_matmul_reference(a, b);
    }
    let mut out = vec![0.0f32; bt * m * n];
    let w = pool::resolve_workers(workers);
    if bt == 1 {
        // A single expert cannot use the batch axis; split rows instead.
        let bpack = pack_b(k, n, b.data(), n, false, w);
        gemm_packed(m, k, n, a.data(), k, false, &bpack, &mut out, w);
        return Tensor::from_vec(vec![bt, m, n], out);
    }
    let view = SharedSliceMut::new(&mut out);
    let (a_data, b_data) = (a.data(), b.data());
    pool::par_ranges(bt, w, |experts| {
        for bi in experts {
            // SAFETY: expert output ranges are disjoint across tasks.
            let out_e = unsafe { view.range_mut(bi * m * n..(bi + 1) * m * n) };
            let bpack = pack_b(k, n, &b_data[bi * k * n..(bi + 1) * k * n], n, false, 1);
            gemm_packed(m, k, n, &a_data[bi * m * k..(bi + 1) * m * k], k, false, &bpack, out_e, 1);
        }
    });
    Tensor::from_vec(vec![bt, m, n], out)
}

fn batched_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if a.rank() != 3 || b.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "batched_matmul",
            expected: 3,
            actual: if a.rank() != 3 { a.rank() } else { b.rank() },
        });
    }
    let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (b2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    if bt != b2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    Ok((bt, m, k, n))
}

/// Packs `B` (resolving a virtual transpose) into `KC × NC` panels laid
/// out panel-major: panel `(kci, nci)` starts at `(kci * num_nc + nci) *
/// KC * NC`. Within a panel, columns are grouped into `NR`-wide strips;
/// strip `s` starts at `s * kcb * NR`, is `pp`-major and contiguous, so
/// the micro-kernel streams `B` linearly while sweeping `k`.
fn pack_b(k: usize, n: usize, b: &[f32], bc: usize, tb: bool, workers: usize) -> Vec<f32> {
    let num_kc = k.div_ceil(KC);
    let num_nc = n.div_ceil(NC);
    let mut pack = vec![0.0f32; num_kc * num_nc * KC * NC];
    let view = SharedSliceMut::new(&mut pack);
    pool::par_ranges(num_kc * num_nc, workers, |panels| {
        for panel in panels {
            let (kci, nci) = (panel / num_nc, panel % num_nc);
            let (p0, j0) = (kci * KC, nci * NC);
            let kcb = KC.min(k - p0);
            let ncb = NC.min(n - j0);
            let base = panel * KC * NC;
            // SAFETY: panel ranges are disjoint across tasks.
            let dst = unsafe { view.range_mut(base..base + kcb * ncb) };
            for (s, strip) in dst.chunks_mut(kcb * NR).enumerate() {
                let c0 = s * NR;
                let w = NR.min(ncb - c0);
                for pp in 0..kcb {
                    let row = &mut strip[pp * w..pp * w + w];
                    if tb {
                        for (c, x) in row.iter_mut().enumerate() {
                            *x = b[(j0 + c0 + c) * bc + (p0 + pp)];
                        }
                    } else {
                        let src = (p0 + pp) * bc + j0 + c0;
                        row.copy_from_slice(&b[src..src + w]);
                    }
                }
            }
        }
    });
    pack
}

/// Arguments threaded through the blocked kernels.
struct Gemm<'a> {
    m: usize,
    k: usize,
    n: usize,
    a: &'a [f32],
    /// Stored column count of `a` (stride between stored rows).
    ac: usize,
    ta: bool,
    bpack: &'a [f32],
    num_nc: usize,
    out: SharedSliceMut<'a>,
}

/// Runs the packed kernel over `out`, splitting `MC` row blocks across at
/// most `workers` tasks.
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    ac: usize,
    ta: bool,
    bpack: &[f32],
    out: &mut [f32],
    workers: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let g = Gemm { m, k, n, a, ac, ta, bpack, num_nc: n.div_ceil(NC), out: SharedSliceMut::new(out) };
    let num_mc = m.div_ceil(MC);
    pool::par_ranges(num_mc, workers, |blocks| compute_blocks(&g, blocks));
}

/// Dispatches a block range to the widest kernel the CPU supports. The
/// AVX-512/AVX2 copies differ only in codegen (16/8-lane vectorization of
/// the same loops, across independent output elements) — results are
/// bit-identical.
fn compute_blocks(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        #[derive(Clone, Copy)]
        enum Isa {
            Avx512,
            Avx2,
            Portable,
        }
        static ISA: OnceLock<Isa> = OnceLock::new();
        let isa = *ISA.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                Isa::Avx2
            } else {
                Isa::Portable
            }
        });
        match isa {
            // SAFETY: the matching CPU feature was verified at runtime.
            Isa::Avx512 => return unsafe { compute_blocks_avx512(g, blocks) },
            // SAFETY: as above.
            Isa::Avx2 => return unsafe { compute_blocks_avx2(g, blocks) },
            Isa::Portable => {}
        }
    }
    compute_blocks_portable(g, blocks);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn compute_blocks_avx512(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compute_blocks_avx2(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

fn compute_blocks_portable(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    compute_blocks_impl(g, blocks);
}

/// The blocked loop nest for a contiguous range of `MC` row blocks.
/// `#[inline(always)]` so each dispatch wrapper compiles its own copy
/// with its own target features.
#[inline(always)]
fn compute_blocks_impl(g: &Gemm<'_>, blocks: std::ops::Range<usize>) {
    let mut apack = vec![0.0f32; MC * KC];
    for blk in blocks {
        let i0 = blk * MC;
        let mcb = MC.min(g.m - i0);
        // SAFETY: `MC` row-block ranges are disjoint across tasks.
        let out_rows = unsafe { g.out.range_mut(i0 * g.n..(i0 + mcb) * g.n) };
        for kci in 0..g.k.div_ceil(KC) {
            let p0 = kci * KC;
            let kcb = KC.min(g.k - p0);
            pack_a(g, i0, mcb, p0, kcb, &mut apack);
            for nci in 0..g.num_nc {
                let j0 = nci * NC;
                let ncb = NC.min(g.n - j0);
                let base = (kci * g.num_nc + nci) * (KC * NC);
                let panel = &g.bpack[base..base + kcb * ncb];
                macro_tile(out_rows, g.n, j0, mcb, kcb, ncb, &apack[..mcb * kcb], panel);
            }
        }
    }
}

/// Copies the `mcb × kcb` block of `A` at `(i0, p0)` into `apack`,
/// resolving a virtual transpose. Rows are interleaved in `MR`-row
/// groups: group `g` starts at `g * MR * kcb`, is `pp`-major with its
/// `rows` values contiguous per `k` step, matching the micro-kernel's
/// broadcast order.
#[inline(always)]
fn pack_a(g: &Gemm<'_>, i0: usize, mcb: usize, p0: usize, kcb: usize, apack: &mut [f32]) {
    for (grp, chunk) in apack[..mcb * kcb].chunks_mut(MR * kcb).enumerate() {
        let r0 = grp * MR;
        let rows = MR.min(mcb - r0);
        for pp in 0..kcb {
            for r in 0..rows {
                let (i, p) = (i0 + r0 + r, p0 + pp);
                chunk[pp * rows + r] = if g.ta { g.a[p * g.ac + i] } else { g.a[i * g.ac + p] };
            }
        }
    }
}

/// Accumulates an `mcb × ncb` output tile as a grid of `MR × NR` register
/// tiles; edge tiles (row or column remainders) fall back to an
/// order-identical scalar path. The `out` slice covers rows
/// `i0..i0+mcb` of the full output (stride `n`); columns `j0` onward are
/// updated.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn macro_tile(
    out: &mut [f32],
    n: usize,
    j0: usize,
    mcb: usize,
    kcb: usize,
    ncb: usize,
    apack: &[f32],
    panel: &[f32],
) {
    for (grp, astrip) in apack.chunks(MR * kcb).enumerate() {
        let r0 = grp * MR;
        let rows = MR.min(mcb - r0);
        for (s, bstrip) in panel.chunks(kcb * NR).enumerate() {
            let c0 = s * NR;
            let w = NR.min(ncb - c0);
            let off = r0 * n + j0 + c0;
            if rows == MR && w == NR {
                tile_full(out, n, off, kcb, astrip, bstrip);
            } else {
                tile_edge(out, n, off, rows, kcb, w, astrip, bstrip);
            }
        }
    }
}

/// The register-tiled inner kernel: an `MR × NR` accumulator grid loaded
/// once, swept over the whole `kcb` depth (`k` ascending, left-associated
/// adds — the reference accumulation order), stored once. The fixed-size
/// `NR` loops vectorize across independent output elements; there is no
/// reduction, so lane width cannot change results.
#[inline(always)]
fn tile_full(out: &mut [f32], n: usize, off: usize, kcb: usize, astrip: &[f32], bstrip: &[f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[off + r * n..off + r * n + NR]);
    }
    for pp in 0..kcb {
        let b: &[f32; NR] = bstrip[pp * NR..pp * NR + NR].try_into().expect("strip width");
        let a = &astrip[pp * MR..pp * MR + MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let ar = a[r];
            for (o, &bv) in accr.iter_mut().zip(b) {
                *o += ar * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[off + r * n..off + r * n + NR].copy_from_slice(accr);
    }
}

/// Remainder tiles (< `MR` rows or < `NR` columns): same `k`-ascending
/// per-element order, operand widths from the packed layouts.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat slice+stride kernel signature
fn tile_edge(
    out: &mut [f32],
    n: usize,
    off: usize,
    rows: usize,
    kcb: usize,
    w: usize,
    astrip: &[f32],
    bstrip: &[f32],
) {
    for pp in 0..kcb {
        let b = &bstrip[pp * w..pp * w + w];
        let a = &astrip[pp * rows..pp * rows + rows];
        for (r, &av) in a.iter().enumerate() {
            let orow = &mut out[off + r * n..off + r * n + w];
            for (o, &bv) in orow.iter_mut().zip(b) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.data(), b.data(), "tiled must be bit-identical to reference");
    }

    #[test]
    fn tiled_matches_reference_beyond_block_bounds() {
        let mut rng = TensorRng::seed(11);
        // Shapes straddling MC/KC/NC boundaries, including remainders.
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (64, 256, 512), (65, 257, 513), (130, 300, 70)] {
            let a = rng.uniform(vec![m, k], -1.0, 1.0);
            let b = rng.uniform(vec![k, n], -1.0, 1.0);
            let reference = matmul_reference(&a, &b, false, false).unwrap();
            for workers in [1, 2, 0] {
                close(&matmul_tiled(&a, &b, false, false, workers).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn transposed_operands_match_reference() {
        let mut rng = TensorRng::seed(12);
        let (m, k, n) = (70, 90, 110);
        for (ta, tb) in [(false, true), (true, false), (true, true)] {
            let a_dims = if ta { vec![k, m] } else { vec![m, k] };
            let b_dims = if tb { vec![n, k] } else { vec![k, n] };
            let a = rng.uniform(a_dims, -1.0, 1.0);
            let b = rng.uniform(b_dims, -1.0, 1.0);
            let reference = matmul_reference(&a, &b, ta, tb).unwrap();
            close(&matmul_tiled(&a, &b, ta, tb, 0).unwrap(), &reference);
        }
    }

    #[test]
    fn batched_matches_reference() {
        let mut rng = TensorRng::seed(13);
        for (bt, m, k, n) in [(1, 40, 50, 60), (3, 33, 65, 40), (8, 16, 64, 48)] {
            let a = rng.uniform(vec![bt, m, k], -1.0, 1.0);
            let b = rng.uniform(vec![bt, k, n], -1.0, 1.0);
            let reference = batched_matmul_reference(&a, &b).unwrap();
            for workers in [1, 2, 0] {
                close(&batched_matmul_tiled(&a, &b, workers).unwrap(), &reference);
            }
        }
    }

    #[test]
    fn non_finite_inputs_propagate() {
        // 0 · ∞ must be NaN (the seed kernel's zero short-circuit dropped it).
        let a = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 1], vec![f32::INFINITY, 2.0]).unwrap();
        let y = matmul_reference(&a, &b, false, false).unwrap();
        assert!(y.data()[0].is_nan(), "0·∞ + 1·2 must be NaN, got {}", y.data()[0]);
        let yt = matmul_tiled(&a, &b, false, false, 0).unwrap();
        assert!(yt.data()[0].is_nan());
    }

    #[test]
    fn shape_errors_match_api() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        assert!(matmul_tiled(&a, &b, false, false, 0).is_err());
        assert!(matmul_tiled(&a, &b, false, true, 0).is_ok());
        assert!(matmul_reference(&a, &Tensor::zeros(vec![3]), false, false).is_err());
    }
}
