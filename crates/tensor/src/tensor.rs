use std::sync::Arc;

use crate::storage::{Buf, BufOwner};
use crate::{Result, Shape, TensorError, DEFAULT_ATOL, DEFAULT_RTOL};

/// A dense, row-major `f32` tensor.
///
/// The element buffer is always contiguous; all views are materialized
/// copies. This keeps the executor simple and makes equivalence checks
/// trivially bit-exact. Elements are either owned on the heap or borrowed
/// zero-copy from a shared [`BufOwner`] (a mapped model store); the two
/// representations are observationally identical — mutation copies on
/// write — so every kernel and equality check behaves the same either way.
///
/// # Example
///
/// ```
/// use lancet_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![2, 2]);
/// assert_eq!(t.volume(), 4);
/// assert!(t.data().iter().all(|&x| x == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Buf,
}

impl Tensor {
    /// Creates a tensor from a shape and an element buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data: Buf::Owned(data) })
    }

    /// Creates a tensor whose elements are a zero-copy window into a
    /// shared buffer owner (typically a mapped model store). Cloning the
    /// result bumps the owner's refcount; the elements are copied only if
    /// mutated.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the window is out of the
    /// owner's bounds or its length differs from the shape volume.
    pub fn from_shared(
        shape: impl Into<Shape>,
        owner: Arc<dyn BufOwner>,
        offset: usize,
        len: usize,
    ) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != len {
            return Err(TensorError::LengthMismatch { expected: shape.volume(), actual: len });
        }
        let total = owner.as_f32().len();
        let data = Buf::shared(owner, offset, len).ok_or(TensorError::LengthMismatch {
            expected: offset.saturating_add(len),
            actual: total,
        })?;
        Ok(Tensor { shape, data })
    }

    /// Whether the elements are borrowed from a shared owner (no mutation
    /// has detached them yet).
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = Buf::Owned(vec![0.0; shape.volume()]);
        Tensor { shape, data }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = Buf::Owned(vec![value; shape.volume()]);
        Tensor { shape, data }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: Buf::Owned(vec![value]) }
    }

    /// The tensor's shape extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Read-only view of the element buffer (row-major).
    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the element buffer (row-major). If the elements
    /// were borrowed from a shared owner they are copied on this call
    /// (copy-on-write), so the owner is never mutated through a tensor.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data.make_mut()
    }

    /// Consumes the tensor, returning the element buffer (copying only if
    /// the elements were borrowed from a shared owner).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Reinterprets the buffer with a new shape of equal volume. A
    /// shared-storage tensor reshapes without copying (the clone is a
    /// refcount bump).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let strides = self.shape.strides();
        let mut off = 0usize;
        for (i, (&ix, &st)) in index.iter().zip(&strides).enumerate() {
            assert!(ix < self.shape.dim(i), "index out of bounds");
            off += ix * st;
        }
        self.data.as_slice()[off]
    }

    /// Returns `true` if every element is within `atol + rtol * |other|`
    /// of the corresponding element of `other`, and shapes match.
    pub fn allclose(&self, other: &Tensor) -> bool {
        self.allclose_with(other, DEFAULT_ATOL, DEFAULT_RTOL)
    }

    /// [`allclose`](Self::allclose) with explicit tolerances.
    pub fn allclose_with(&self, other: &Tensor, atol: f32, rtol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data
            .as_slice()
            .iter()
            .zip(other.data.as_slice())
            .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Maximum absolute element-wise difference; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .as_slice()
                .iter()
                .zip(other.data.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{}[", self.shape)?;
        let data = self.data.as_slice();
        let n = data.len().min(8);
        for (i, v) in data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![0.0; 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 3 });
    }

    #[test]
    fn zeros_and_full() {
        assert!(Tensor::zeros(vec![3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::full(vec![3], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4]).is_err());
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn allclose_tolerates_small_error() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.0 + 1e-7, 2.0 - 1e-7]).unwrap();
        assert!(a.allclose(&b));
        let c = Tensor::from_vec(vec![2], vec![1.1, 2.0]).unwrap();
        assert!(!a.allclose(&c));
    }

    #[test]
    fn max_abs_diff_reports_worst() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 5.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.5, 5.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        let c = Tensor::zeros(vec![3]);
        assert_eq!(a.max_abs_diff(&c), None);
    }

    #[test]
    fn shared_storage_is_observationally_owned() {
        use crate::storage::VecOwner;
        let owner: Arc<dyn BufOwner> = Arc::new(VecOwner((0..6).map(|x| x as f32).collect()));
        let t = Tensor::from_shared(vec![2, 3], Arc::clone(&owner), 0, 6).unwrap();
        let o = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert!(t.is_shared());
        assert_eq!(t, o);
        assert_eq!(t.at(&[1, 2]), 5.0);
        // Reshape keeps sharing; clone is a refcount bump.
        let r = t.reshape(vec![3, 2]).unwrap();
        assert!(r.is_shared());
        assert_eq!(r.data(), o.data());
        // Copy-on-write: mutation detaches without touching the owner.
        let mut m = t.clone();
        m.data_mut()[0] = 99.0;
        assert!(!m.is_shared());
        assert_eq!(t.data()[0], 0.0);
        assert_eq!(owner.as_f32()[0], 0.0);
        // Bounds and volume are checked.
        assert!(Tensor::from_shared(vec![2, 3], Arc::clone(&owner), 2, 6).is_err());
        assert!(Tensor::from_shared(vec![2, 2], Arc::clone(&owner), 0, 6).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(vec![20]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }
}
