//! Shape-specialized autotuning of the GEMM cache blocking.
//!
//! The packed engine's `mc/kc/nc` blocking ([`BlockSpec`]) trades
//! cache-residency of the `A` block, the `B` panel, and the output tile;
//! the best cut depends on the problem shape and the SIMD path. This
//! module searches a fixed candidate grid per `(m-class, k, n)` and
//! records the winner in a [`TuneTable`]:
//!
//! - `lancet tune-gemm` runs the search for the GPT2-S-MoE weight shape
//!   set and writes `results/TUNE_gemm.json` (committed, regenerable);
//! - setting `LANCET_GEMM_TUNE` loads a table at startup (see
//!   `docs/CONFIG.md`) — unset, `0`/`off`, a missing file, or unparsable
//!   content all degrade to the compiled-in [`BlockSpec::DEFAULT`];
//! - [`spec_for`] resolves each matmul's blocking from the active table,
//!   and [`spec_for_pack`] the blocking weights are prepacked with.
//!
//! # Determinism
//!
//! Wall-clock measurements are inherently noisy, so "deterministic" here
//! means the *harness* is: operands come from fixed seeds, candidates are
//! visited in a fixed order, each is scored by the minimum of its timed
//! runs, and the default blocking wins ties (a candidate must be strictly
//! faster to displace it). And whatever the table says, results never
//! change: every [`BlockSpec`] is bit-identical (see [`crate::gemm`]),
//! upholding the repo-wide rule that no environment variable changes any
//! computed number.

use std::sync::OnceLock;
use std::time::Instant;

use crate::gemm::{self, BlockSpec};
use crate::TensorRng;

/// Coarse classes of the output-row count `m` — the dimension that varies
/// call-to-call while `k`/`n` are pinned by the weight shape. Decode steps
/// multiply a handful of rows; prefill/serve batches multiply hundreds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MClass {
    /// `m <= 16`: autoregressive decode steps.
    Step,
    /// `16 < m <= 128`: small micro-batches / capacity-bucketed expert rows.
    Micro,
    /// `m > 128`: prefill and full serving batches.
    Batch,
}

impl MClass {
    /// The class a concrete `m` falls into.
    pub fn of(m: usize) -> MClass {
        if m <= 16 {
            MClass::Step
        } else if m <= 128 {
            MClass::Micro
        } else {
            MClass::Batch
        }
    }

    /// Stable on-disk name.
    pub fn name(self) -> &'static str {
        match self {
            MClass::Step => "step",
            MClass::Micro => "micro",
            MClass::Batch => "batch",
        }
    }

    /// Parses [`MClass::name`] output.
    pub fn parse(s: &str) -> Option<MClass> {
        match s {
            "step" => Some(MClass::Step),
            "micro" => Some(MClass::Micro),
            "batch" => Some(MClass::Batch),
            _ => None,
        }
    }

    /// The representative `m` the tuner measures this class at.
    pub fn representative_m(self) -> usize {
        match self {
            MClass::Step => 8,
            MClass::Micro => 64,
            MClass::Batch => 512,
        }
    }
}

/// One tuned result: the winning blocking for `(isa, m-class, k, n)`,
/// with the measured minimum wall-clock of the winner and of the default
/// (so the recorded win is auditable).
#[derive(Debug, Clone, PartialEq)]
pub struct TuneEntry {
    /// [`gemm::detected_isa`] string the measurement ran under.
    pub isa: String,
    /// Class of the output-row count.
    pub m_class: MClass,
    /// Contraction dimension.
    pub k: usize,
    /// Output-column dimension.
    pub n: usize,
    /// The winning blocking.
    pub spec: BlockSpec,
    /// Minimum measured nanoseconds of the winner.
    pub tuned_ns: u64,
    /// Minimum measured nanoseconds of [`BlockSpec::DEFAULT`].
    pub default_ns: u64,
}

/// A set of tuned blockings, looked up per matmul call.
///
/// Entries are keyed by `(isa, m-class, k, n)`; lookups filter on the
/// *detected* ISA, so a table recorded on one machine class never steers
/// another — it just falls back to the default blocking there.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneTable {
    entries: Vec<TuneEntry>,
}

impl TuneTable {
    /// An empty table: every lookup falls back to the default blocking.
    pub fn new() -> TuneTable {
        TuneTable::default()
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[TuneEntry] {
        &self.entries
    }

    /// Inserts `entry`, replacing any existing entry with the same
    /// `(isa, m-class, k, n)` key.
    pub fn push(&mut self, entry: TuneEntry) {
        self.entries.retain(|e| {
            !(e.isa == entry.isa && e.m_class == entry.m_class && e.k == entry.k && e.n == entry.n)
        });
        self.entries.push(entry);
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tuned blocking for a concrete `(m, k, n)` under `isa`, if any.
    pub fn lookup(&self, isa: &str, m: usize, k: usize, n: usize) -> Option<BlockSpec> {
        let class = MClass::of(m);
        self.entries
            .iter()
            .find(|e| e.isa == isa && e.m_class == class && e.k == k && e.n == n)
            .map(|e| e.spec)
    }

    /// The blocking to *prepack* a `(k, n)` weight with, when its future
    /// `m` is unknown: large-`m` entries win (`Batch`, then `Micro`, then
    /// `Step`), since panel layout is reused across all classes and the
    /// large-batch shape is the throughput-critical one.
    pub fn lookup_pack(&self, isa: &str, k: usize, n: usize) -> Option<BlockSpec> {
        [MClass::Batch, MClass::Micro, MClass::Step].iter().find_map(|&class| {
            self.entries
                .iter()
                .find(|e| e.isa == isa && e.m_class == class && e.k == k && e.n == n)
                .map(|e| e.spec)
        })
    }

    /// Serializes the table to the `results/TUNE_gemm.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"tune_gemm\",\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"isa\": \"{}\", \"m_class\": \"{}\", \"k\": {}, \"n\": {}, \
                 \"mc\": {}, \"kc\": {}, \"nc\": {}, \"tuned_ns\": {}, \"default_ns\": {}}}{}\n",
                e.isa,
                e.m_class.name(),
                e.k,
                e.n,
                e.spec.mc,
                e.spec.kc,
                e.spec.nc,
                e.tuned_ns,
                e.default_ns,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses [`TuneTable::to_json`] output. Returns `None` when the text
    /// has no `entries` array; malformed entries and entries with invalid
    /// blockings are silently dropped (garbage degrades to defaults).
    pub fn from_json(text: &str) -> Option<TuneTable> {
        let at = text.find("\"entries\"")?;
        let open = at + text[at..].find('[')?;
        let close = open + text[open..].find(']')?;
        let mut table = TuneTable::new();
        let mut rest = &text[open + 1..close];
        while let Some(start) = rest.find('{') {
            let Some(end) = rest[start..].find('}') else { break };
            if let Some(entry) = parse_entry(&rest[start + 1..start + end]) {
                if entry.spec.is_valid() {
                    table.push(entry);
                }
            }
            rest = &rest[start + end + 1..];
        }
        Some(table)
    }
}

/// Extracts the raw text after `"key":`, up to the next comma (or the
/// object end), with surrounding whitespace and quotes stripped.
fn field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let colon = at + obj[at..].find(':')?;
    let rest = &obj[colon + 1..];
    let end = rest.find(',').unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    field(obj, key)?.parse().ok()
}

fn parse_entry(obj: &str) -> Option<TuneEntry> {
    Some(TuneEntry {
        isa: field(obj, "isa")?,
        m_class: MClass::parse(&field(obj, "m_class")?)?,
        k: field_u64(obj, "k")? as usize,
        n: field_u64(obj, "n")? as usize,
        spec: BlockSpec {
            mc: field_u64(obj, "mc")? as usize,
            kc: field_u64(obj, "kc")? as usize,
            nc: field_u64(obj, "nc")? as usize,
        },
        tuned_ns: field_u64(obj, "tuned_ns")?,
        default_ns: field_u64(obj, "default_ns")?,
    })
}

/// The table `LANCET_GEMM_TUNE` resolved to, loaded once per process.
///
/// Unset, empty, `0`, or `off` (any case) means no table. `1`/`on` loads
/// the committed `results/TUNE_gemm.json` (resolved relative to the
/// working directory, then the repo root); any other value is a path.
/// Unreadable or unparsable content degrades to the empty table.
fn active() -> &'static TuneTable {
    static TABLE: OnceLock<TuneTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let raw = std::env::var("LANCET_GEMM_TUNE").unwrap_or_default();
        let v = raw.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
            return TuneTable::new();
        }
        let paths: &[&str] = if v == "1" || v.eq_ignore_ascii_case("on") {
            &[
                "results/TUNE_gemm.json",
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/TUNE_gemm.json"),
            ]
        } else {
            std::slice::from_ref(&v)
        };
        paths
            .iter()
            .find_map(|p| TuneTable::from_json(&std::fs::read_to_string(p).ok()?))
            .unwrap_or_default()
    })
}

/// The blocking [`gemm::matmul_tiled`] uses for an `(m, k, n)` problem:
/// the active table's entry for this shape class on the detected ISA, or
/// [`BlockSpec::DEFAULT`].
pub fn spec_for(m: usize, k: usize, n: usize) -> BlockSpec {
    active().lookup(gemm::detected_isa(), m, k, n).unwrap_or(BlockSpec::DEFAULT)
}

/// The blocking a `(k, n)` weight is prepacked with (see
/// [`TuneTable::lookup_pack`]).
pub fn spec_for_pack(k: usize, n: usize) -> BlockSpec {
    active().lookup_pack(gemm::detected_isa(), k, n).unwrap_or(BlockSpec::DEFAULT)
}

/// Knobs of the tuning run itself (not of table consumers).
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Timed runs per candidate (scored by their minimum); a warmup run
    /// precedes them. `0` behaves as `1`.
    pub samples: usize,
    /// Worker knob forwarded to the measured kernels (`0` = auto — the
    /// configuration serving runs with).
    pub workers: usize,
    /// Shrinks the candidate grid and the class list for fast smoke runs.
    pub quick: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { samples: 3, workers: 0, quick: false }
    }
}

/// The fixed candidate grid, default blocking first. The grid brackets
/// the default by halving/doubling each factor; every candidate is a
/// valid spec, so any of them may be recorded and later loaded.
pub fn candidates(quick: bool) -> Vec<BlockSpec> {
    let (mcs, kcs, ncs): (&[usize], &[usize], &[usize]) = if quick {
        (&[64], &[128, 256], &[256, 512])
    } else {
        (&[32, 64, 128], &[128, 256, 512], &[256, 512, 1024])
    };
    let mut out = vec![BlockSpec::DEFAULT];
    for &mc in mcs {
        for &kc in kcs {
            for &nc in ncs {
                let spec = BlockSpec { mc, kc, nc };
                if spec != BlockSpec::DEFAULT {
                    out.push(spec);
                }
            }
        }
    }
    out
}

/// Times one candidate: a warmup call, then `samples` timed calls of
/// [`gemm::matmul_tiled_with`]; returns the minimum nanoseconds.
fn measure(
    a: &crate::Tensor,
    b: &crate::Tensor,
    spec: BlockSpec,
    samples: usize,
    workers: usize,
) -> u64 {
    let _ = gemm::matmul_tiled_with(a, b, false, false, workers, spec);
    let mut best = u64::MAX;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        let _ = gemm::matmul_tiled_with(a, b, false, false, workers, spec);
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Searches the candidate grid for one `(m, k, n)` problem and returns
/// the winning entry. Operands are seeded from `(m, k, n)`, candidates
/// are visited in [`candidates`] order, and the default blocking wins
/// ties.
pub fn tune_shape(m: usize, k: usize, n: usize, opts: TuneOptions) -> TuneEntry {
    let seed = 0xB10C_0000_0000_0000u64 ^ ((m as u64) << 42) ^ ((k as u64) << 21) ^ (n as u64);
    let mut rng = TensorRng::seed(seed);
    let a = rng.uniform(vec![m, k], -1.0, 1.0);
    let b = rng.uniform(vec![k, n], -1.0, 1.0);
    let grid = candidates(opts.quick);
    let default_ns = measure(&a, &b, BlockSpec::DEFAULT, opts.samples, opts.workers);
    let (mut best_spec, mut best_ns) = (BlockSpec::DEFAULT, default_ns);
    for &spec in grid.iter().skip(1) {
        let ns = measure(&a, &b, spec, opts.samples, opts.workers);
        if ns < best_ns {
            best_spec = spec;
            best_ns = ns;
        }
    }
    TuneEntry {
        isa: gemm::detected_isa().to_string(),
        m_class: MClass::of(m),
        k,
        n,
        spec: best_spec,
        tuned_ns: best_ns,
        default_ns,
    }
}

/// The GPT2-S-MoE weight `(k, n)` shape set `lancet tune-gemm` covers:
/// attention projections (`768 × 768`), the FFN/expert up projection
/// (`768 × 3072`), and the down projection (`3072 × 768`).
pub const GPT2S_MOE_SHAPES: &[(usize, usize)] = &[(768, 768), (768, 3072), (3072, 768)];

/// Tunes every [`GPT2S_MOE_SHAPES`] weight shape at each class's
/// representative `m` and returns the resulting table. `on_entry` fires
/// after each shape finishes (progress reporting for the CLI).
pub fn tune_gpt2s_moe(opts: TuneOptions, mut on_entry: impl FnMut(&TuneEntry)) -> TuneTable {
    let classes: &[MClass] = if opts.quick {
        &[MClass::Step, MClass::Batch]
    } else {
        &[MClass::Step, MClass::Micro, MClass::Batch]
    };
    let mut table = TuneTable::new();
    for &(k, n) in GPT2S_MOE_SHAPES {
        for &class in classes {
            let entry = tune_shape(class.representative_m(), k, n, opts);
            on_entry(&entry);
            table.push(entry);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(isa: &str, class: MClass, k: usize, n: usize, mc: usize) -> TuneEntry {
        TuneEntry {
            isa: isa.to_string(),
            m_class: class,
            k,
            n,
            spec: BlockSpec { mc, kc: 256, nc: 512 },
            tuned_ns: 100,
            default_ns: 120,
        }
    }

    #[test]
    fn json_roundtrip_preserves_entries() {
        let mut t = TuneTable::new();
        t.push(entry("avx2", MClass::Step, 768, 3072, 32));
        t.push(entry("avx2", MClass::Batch, 768, 3072, 128));
        t.push(entry("avx512", MClass::Batch, 3072, 768, 64));
        let parsed = TuneTable::from_json(&t.to_json()).expect("roundtrip parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn lookup_filters_isa_and_class() {
        let mut t = TuneTable::new();
        t.push(entry("avx2", MClass::Step, 768, 3072, 32));
        assert_eq!(t.lookup("avx2", 8, 768, 3072), Some(BlockSpec { mc: 32, kc: 256, nc: 512 }));
        assert_eq!(t.lookup("avx2", 512, 768, 3072), None, "wrong class");
        assert_eq!(t.lookup("avx512", 8, 768, 3072), None, "wrong isa");
        assert_eq!(t.lookup("avx2", 8, 768, 768), None, "wrong shape");
    }

    #[test]
    fn pack_lookup_prefers_large_batch_entries() {
        let mut t = TuneTable::new();
        t.push(entry("avx2", MClass::Step, 768, 3072, 32));
        assert_eq!(t.lookup_pack("avx2", 768, 3072).unwrap().mc, 32, "step is the fallback");
        t.push(entry("avx2", MClass::Batch, 768, 3072, 128));
        assert_eq!(t.lookup_pack("avx2", 768, 3072).unwrap().mc, 128, "batch wins");
    }

    #[test]
    fn push_replaces_same_key() {
        let mut t = TuneTable::new();
        t.push(entry("avx2", MClass::Step, 768, 768, 32));
        t.push(entry("avx2", MClass::Step, 768, 768, 128));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("avx2", 8, 768, 768).unwrap().mc, 128);
    }

    #[test]
    fn malformed_json_degrades() {
        assert!(TuneTable::from_json("not json at all").is_none());
        // An entries array with one bad and one invalid-spec entry: both
        // dropped, table parses as empty.
        let text = r#"{"entries": [
            {"isa": "avx2", "m_class": "warp", "k": 1, "n": 1, "mc": 64, "kc": 256, "nc": 512, "tuned_ns": 1, "default_ns": 1},
            {"isa": "avx2", "m_class": "step", "k": 1, "n": 1, "mc": 0, "kc": 0, "nc": 0, "tuned_ns": 1, "default_ns": 1}
        ]}"#;
        let t = TuneTable::from_json(text).expect("entries array present");
        assert!(t.is_empty());
    }

    #[test]
    fn candidate_grid_is_valid_and_default_first() {
        for quick in [false, true] {
            let grid = candidates(quick);
            assert_eq!(grid[0], BlockSpec::DEFAULT);
            assert!(grid.iter().all(BlockSpec::is_valid));
            let unique: std::collections::HashSet<_> = grid.iter().collect();
            assert_eq!(unique.len(), grid.len(), "no duplicate candidates");
        }
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(MClass::of(1), MClass::Step);
        assert_eq!(MClass::of(16), MClass::Step);
        assert_eq!(MClass::of(17), MClass::Micro);
        assert_eq!(MClass::of(128), MClass::Micro);
        assert_eq!(MClass::of(129), MClass::Batch);
        for class in [MClass::Step, MClass::Micro, MClass::Batch] {
            assert_eq!(MClass::parse(class.name()), Some(class));
            assert_eq!(MClass::of(class.representative_m()), class);
        }
    }
}
