//! A persistent, work-stealing-free thread pool shared by every tensor
//! kernel (and, through re-export, by the executor and the MoE data
//! plane).
//!
//! # Design
//!
//! The pool is deliberately simple: one job at a time, claimed task-by-task
//! from a shared atomic counter. There are no per-worker deques and no
//! stealing — kernels submit a small number of *coarse* tasks (one per
//! worker, each covering a contiguous block of output rows / experts /
//! elements), so a single counter is contention-free in practice and the
//! task→data mapping stays deterministic.
//!
//! The submitting thread participates in its own job, so a pool sized for
//! `n` workers spawns `n - 1` OS threads. Nested submissions (a pooled
//! task calling [`ThreadPool::parallel_for`] again) run inline on the
//! calling thread instead of deadlocking on the single job slot, and so
//! does a submission that finds the job slot occupied by *another*
//! thread's job (e.g. two serving workers executing micro-batches
//! concurrently): the pool accelerates whoever claims it first and every
//! other submitter simply computes on its own thread.
//!
//! # Determinism contract
//!
//! The pool itself never reorders arithmetic: a job is a pure function of
//! the task index, every output element is written by exactly one task,
//! and each kernel fixes its per-element accumulation order independently
//! of how tasks are chunked (see `gemm`). Any worker count therefore
//! produces bit-identical tensors — the same contract
//! `PartitionOptions::workers` established for the partition search.
//!
//! # Sizing
//!
//! [`ThreadPool::global`] sizes itself once from the `LANCET_WORKERS`
//! environment variable (read a single time, see [`env_workers`]); unset
//! or `0` falls back to the machine's available parallelism capped at 8,
//! mirroring `PartitionOptions::workers = 0`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// `LANCET_WORKERS`, parsed at most once per process.
///
/// Returns `None` when the variable is unset, empty, unparsable, or `0`
/// (all of which mean "auto-size from the machine").
pub fn env_workers() -> Option<usize> {
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    *PARSED.get_or_init(|| {
        std::env::var("LANCET_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The worker count a `workers: 0` knob resolves to on this machine:
/// `LANCET_WORKERS` if set, otherwise available parallelism capped at 8.
pub fn default_workers() -> usize {
    env_workers().unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    })
}

/// Resolves a `workers` knob: `0` means [`default_workers`].
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        default_workers()
    } else {
        requested
    }
}

/// A borrowed job: tasks are claimed from `next` until it reaches `tasks`.
#[derive(Clone)]
struct Job {
    /// The task body, lifetime-erased. Valid until the job completes —
    /// the submitter blocks in `parallel_for` until every task has run,
    /// so workers never observe a dangling closure.
    func: TaskFn,
    next: Arc<AtomicUsize>,
    tasks: usize,
}

#[derive(Clone, Copy)]
struct TaskFn(&'static (dyn Fn(usize) + Sync));

// SAFETY: the referenced closure is `Sync`, and `parallel_for` keeps it
// alive (and its captured borrows valid) until every task completed.
unsafe impl Send for TaskFn {}

struct State {
    job: Option<Job>,
    /// Bumped on every submission so sleeping workers can tell a new job
    /// from the one they already drained.
    generation: u64,
    /// Tasks of the current job that have finished executing.
    completed: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The submitter sleeps here while stragglers finish.
    done_cv: Condvar,
}

/// The persistent worker pool. See the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

thread_local! {
    /// Set while this thread is executing pool tasks (worker threads, and
    /// the submitter inside `parallel_for`); nested submissions then run
    /// inline.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ThreadPool {
    /// A pool executing jobs on `threads` threads total (the submitting
    /// thread counts as one, so `threads - 1` OS threads are spawned).
    /// `threads = 0` resolves via [`default_workers`].
    pub fn new(threads: usize) -> Self {
        let threads = resolve_workers(threads).max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, generation: 0, completed: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lancet-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, threads, handles }
    }

    /// The process-wide pool used by all tensor kernels, sized by
    /// [`default_workers`] on first use.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(0))
    }

    /// Total threads executing jobs (including the submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool, returning when
    /// all calls completed. The submitting thread participates. Tasks may
    /// run in any order and concurrently; callers must make them write
    /// disjoint data.
    ///
    /// Runs inline (in ascending task order) when the pool has one
    /// thread, `tasks <= 1`, or when called from inside a pool task.
    pub fn parallel_for<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        let nested = IN_POOL.with(|c| c.get());
        if self.threads <= 1 || tasks == 1 || nested {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let obj: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: lifetime erasure only; we block below until `completed
        // == tasks`, so `f` (and everything it borrows) outlives all uses.
        let func = TaskFn(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(obj)
        });
        let next = Arc::new(AtomicUsize::new(0));
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            if st.job.is_some() {
                // Another thread's job occupies the single slot (e.g. two
                // serving workers executing micro-batches concurrently).
                // Degrade gracefully: run this job inline on the caller.
                // Determinism is unaffected — tasks compute the same
                // values regardless of which thread runs them.
                drop(st);
                for i in 0..tasks {
                    f(i);
                }
                return;
            }
            st.job = Some(Job { func, next: Arc::clone(&next), tasks });
            st.generation += 1;
            st.completed = 0;
        }
        self.shared.work_cv.notify_all();

        // Participate until the task counter runs dry.
        IN_POOL.with(|c| c.set(true));
        let mut mine = 0usize;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
            mine += 1;
        }
        IN_POOL.with(|c| c.set(false));

        let mut st = self.shared.state.lock().expect("pool lock");
        st.completed += mine;
        while st.completed < tasks {
            st = self.shared.done_cv.wait(st).expect("pool wait");
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    if let Some(job) = st.job.clone() {
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).expect("pool wait");
            }
        };
        let mut mine = 0usize;
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            (job.func.0)(i);
            mine += 1;
        }
        if mine > 0 {
            let mut st = shared.state.lock().expect("pool lock");
            st.completed += mine;
            if st.completed >= job.tasks {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// Splits `items` into at most `tasks` contiguous ranges and runs `f` on
/// each over the [global pool](ThreadPool::global). Earlier ranges get the
/// remainder, matching `Tensor::split_axis`. `tasks = 0` resolves via
/// [`default_workers`].
pub fn par_ranges<F: Fn(Range<usize>) + Sync>(items: usize, tasks: usize, f: F) {
    let tasks = resolve_workers(tasks).min(items);
    if tasks <= 1 {
        if items > 0 {
            f(0..items);
        }
        return;
    }
    let base = items / tasks;
    let rem = items % tasks;
    ThreadPool::global().parallel_for(tasks, |t| {
        let start = t * base + t.min(rem);
        let len = base + usize::from(t < rem);
        f(start..start + len);
    });
}

/// A length-checked shared view of a mutable `f32` buffer for tasks that
/// write provably disjoint regions.
///
/// Rust cannot express "these closures write disjoint sub-slices of one
/// buffer" through `&mut` borrows handed to a `Fn` job, so kernels wrap
/// the output buffer in this and carve out their region per task.
#[derive(Clone, Copy)]
pub struct SharedSliceMut<'a> {
    ptr: *mut f32,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: access is only through `range_mut`, whose contract pushes
// disjointness onto the caller.
unsafe impl Send for SharedSliceMut<'_> {}
unsafe impl Sync for SharedSliceMut<'_> {}

impl<'a> SharedSliceMut<'a> {
    /// Wraps `buf` for disjoint multi-task mutation.
    pub fn new(buf: &'a mut [f32]) -> Self {
        SharedSliceMut { ptr: buf.as_mut_ptr(), len: buf.len(), _marker: std::marker::PhantomData }
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `range`.
    ///
    /// # Safety
    ///
    /// No two concurrently live borrows (across all tasks of the current
    /// job) may overlap.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the buffer.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: Range<usize>) -> &mut [f32] {
        assert!(range.start <= range.end && range.end <= self.len, "range out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_task_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..128).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(128, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.parallel_for(round + 1, |i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2, "round {round}");
        }
    }

    #[test]
    fn nested_submission_runs_inline() {
        let pool = ThreadPool::global();
        let total = AtomicUsize::new(0);
        pool.parallel_for(4, |_| {
            // Would deadlock on the single job slot if not inlined.
            pool.parallel_for(4, |j| {
                total.fetch_add(j, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0 + 1 + 2 + 3));
    }

    #[test]
    fn par_ranges_partitions_exactly() {
        let mut buf = vec![0.0f32; 103];
        let view = SharedSliceMut::new(&mut buf);
        par_ranges(103, 7, |r| {
            // SAFETY: ranges from par_ranges are disjoint.
            let chunk = unsafe { view.range_mut(r.clone()) };
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (r.start + off) as f32;
            }
        });
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, i as f32);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let order = std::sync::Mutex::new(Vec::new());
        pool.parallel_for(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_submitters_from_many_threads() {
        // Several OS threads race `parallel_for` on the same pool; losers
        // of the job slot must fall back to inline execution rather than
        // deadlock or corrupt the winner's job. Every task of every
        // submission must still run exactly once.
        let pool = ThreadPool::new(4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = &pool;
                s.spawn(move || {
                    for round in 0..20 {
                        let tasks = 16 + (t + round) % 7;
                        let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
                        pool.parallel_for(tasks, |i| {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        });
                        assert!(
                            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                            "thread {t} round {round}: task ran zero or multiple times"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn resolve_workers_zero_is_auto() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }
}
