//! Dense `f32` tensor math used by the Lancet reproduction.
//!
//! This crate is the numerical substrate for the [IR executor]: a small,
//! dependency-free n-dimensional array library with exactly the kernels a
//! Transformer-with-MoE model needs (matmul, softmax, layer norm, GELU,
//! elementwise arithmetic, axis slicing/concatenation). Matmuls run on a
//! packed, cache-blocked engine ([`gemm`]) parallelized over a persistent
//! shared thread pool ([`pool`]); every kernel keeps a fixed per-element
//! accumulation order, so results are bit-identical for any worker count —
//! the executor runs tiny model configs to check mathematical equivalence of
//! compiler transformations, and that check demands determinism.
//!
//! [IR executor]: https://docs.rs/lancet-exec
//!
//! # Example
//!
//! ```
//! use lancet_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.])?;
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[4., 5., 10., 11.]);
//! # Ok::<(), lancet_tensor::TensorError>(())
//! ```

mod error;
pub mod gemm;
mod init;
mod ops;
pub mod pack;
pub mod pool;
mod shape;
pub mod storage;
mod tensor;
pub mod tune;

pub use error::TensorError;
pub use gemm::BlockSpec;
pub use init::TensorRng;
pub use pack::PackedTensor;
pub use shape::{stride_for, Shape};
pub use storage::{Buf, BufOwner, VecOwner};
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Absolute tolerance used by [`Tensor::allclose`] by default.
pub const DEFAULT_ATOL: f32 = 1e-5;

/// Relative tolerance used by [`Tensor::allclose`] by default.
pub const DEFAULT_RTOL: f32 = 1e-4;
