//! Element-buffer storage: owned heap vectors or slices borrowed from a
//! shared owner (e.g. a memory-mapped model store).
//!
//! A [`Tensor`](crate::Tensor) historically owned its elements in a
//! `Vec<f32>`. Zero-copy model loading (the `lancet-store` crate) needs
//! tensors whose elements live inside a mapped file region instead, so N
//! serving replicas on one host share the same physical pages and
//! cold-start is O(open) rather than O(copy). [`Buf`] is that seam: an
//! owned vector, or an `(owner, offset, len)` window into any
//! [`BufOwner`].
//!
//! The read path (`as_slice`) is identical either way; mutation goes
//! through [`Buf::make_mut`], which copies a shared window into an owned
//! vector first (copy-on-write), so existing kernels never observe the
//! difference.

use std::sync::Arc;

/// Owner of an immutable `f32` buffer that tensors may borrow windows of.
///
/// Implementors guarantee the returned slice is stable for the owner's
/// lifetime (mapped file regions, pinned allocations, leaked vectors…).
/// The `Send + Sync` bounds let borrowing tensors cross threads, which the
/// serving runtime requires.
pub trait BufOwner: Send + Sync + 'static {
    /// The full buffer, as aligned little-endian `f32` words.
    fn as_f32(&self) -> &[f32];
}

/// A plain heap-backed owner, useful as a non-mmap fallback: the store
/// reader uses it when mapping is unavailable and tests use it to exercise
/// the shared path without touching the filesystem.
#[derive(Debug)]
pub struct VecOwner(pub Vec<f32>);

impl BufOwner for VecOwner {
    fn as_f32(&self) -> &[f32] {
        &self.0
    }
}

/// Tensor element storage: owned, or a window borrowed from a shared
/// [`BufOwner`].
#[derive(Clone)]
pub enum Buf {
    /// Elements owned by this buffer (the historical representation).
    Owned(Vec<f32>),
    /// A `[offset, offset + len)` window into a shared owner. Cloning
    /// bumps the owner's refcount; the elements are never copied until
    /// someone mutates them.
    Shared {
        /// The buffer's owner (kept alive by this handle).
        owner: Arc<dyn BufOwner>,
        /// Start of the window, in `f32` words.
        offset: usize,
        /// Window length, in `f32` words.
        len: usize,
    },
}

impl Buf {
    /// A shared window into `owner`.
    ///
    /// Returns `None` if `[offset, offset + len)` is out of the owner's
    /// bounds.
    pub fn shared(owner: Arc<dyn BufOwner>, offset: usize, len: usize) -> Option<Buf> {
        let total = owner.as_f32().len();
        match offset.checked_add(len) {
            Some(end) if end <= total => Some(Buf::Shared { owner, offset, len }),
            _ => None,
        }
    }

    /// The elements, regardless of representation.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            Buf::Owned(v) => v,
            Buf::Shared { owner, offset, len } => &owner.as_f32()[*offset..*offset + *len],
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Buf::Owned(v) => v.len(),
            Buf::Shared { len, .. } => *len,
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements are borrowed from a shared owner.
    pub fn is_shared(&self) -> bool {
        matches!(self, Buf::Shared { .. })
    }

    /// Mutable access, copying a shared window into an owned vector first
    /// (copy-on-write). After this call the buffer is always `Owned`.
    pub fn make_mut(&mut self) -> &mut Vec<f32> {
        if let Buf::Shared { .. } = self {
            *self = Buf::Owned(self.as_slice().to_vec());
        }
        match self {
            Buf::Owned(v) => v,
            Buf::Shared { .. } => unreachable!("make_mut just materialized Owned"),
        }
    }

    /// Consumes the buffer, returning an owned vector (copying only if
    /// shared).
    pub fn into_vec(self) -> Vec<f32> {
        match self {
            Buf::Owned(v) => v,
            Buf::Shared { .. } => self.as_slice().to_vec(),
        }
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Buf::Owned(v) => f.debug_tuple("Owned").field(&v.len()).finish(),
            Buf::Shared { offset, len, .. } => f
                .debug_struct("Shared")
                .field("offset", offset)
                .field("len", len)
                .finish(),
        }
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f32>> for Buf {
    fn from(v: Vec<f32>) -> Self {
        Buf::Owned(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_window_reads_and_cow_writes() {
        let owner: Arc<dyn BufOwner> = Arc::new(VecOwner(vec![0.0, 1.0, 2.0, 3.0, 4.0]));
        let mut buf = Buf::shared(Arc::clone(&owner), 1, 3).unwrap();
        assert!(buf.is_shared());
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        buf.make_mut()[0] = 9.0;
        assert!(!buf.is_shared());
        assert_eq!(buf.as_slice(), &[9.0, 2.0, 3.0]);
        // The owner is untouched.
        assert_eq!(owner.as_f32()[1], 1.0);
    }

    #[test]
    fn shared_bounds_are_checked() {
        let owner: Arc<dyn BufOwner> = Arc::new(VecOwner(vec![0.0; 4]));
        assert!(Buf::shared(Arc::clone(&owner), 0, 4).is_some());
        assert!(Buf::shared(Arc::clone(&owner), 2, 3).is_none());
        assert!(Buf::shared(Arc::clone(&owner), usize::MAX, 2).is_none());
    }

    #[test]
    fn owned_and_shared_compare_by_contents() {
        let owner: Arc<dyn BufOwner> = Arc::new(VecOwner(vec![1.0, 2.0]));
        let shared = Buf::shared(owner, 0, 2).unwrap();
        assert_eq!(shared, Buf::Owned(vec![1.0, 2.0]));
        assert_ne!(shared, Buf::Owned(vec![1.0, 2.5]));
    }

    #[test]
    fn into_vec_copies_shared() {
        let owner: Arc<dyn BufOwner> = Arc::new(VecOwner(vec![5.0, 6.0, 7.0]));
        let shared = Buf::shared(owner, 1, 2).unwrap();
        assert_eq!(shared.into_vec(), vec![6.0, 7.0]);
        assert_eq!(Buf::Owned(vec![8.0]).into_vec(), vec![8.0]);
    }
}
