//! Prepacked weight panels: pay [`pack_b`](crate::gemm) once, reuse
//! forever.
//!
//! Every call through [`Tensor::matmul`](crate::Tensor::matmul) packs its
//! `B` operand into the GEMM's panel layout before computing. For model
//! weights — bound once into a serving plan and then multiplied on every
//! request — that repacking is pure steady-state overhead, and for small
//! `m` (a decode step multiplies a handful of rows against a large weight)
//! it *dominates* the call. A [`PackedTensor`] holds the panel layout
//! itself: built once (at `Plan::build` time, or when a decode model
//! loads), then consumed by
//! [`matmul_packed`](crate::gemm::matmul_packed) /
//! [`batched_matmul_packed`](crate::gemm::batched_matmul_packed), which
//! skip `pack_b` entirely.
//!
//! The panels embed the [`BlockSpec`] they were packed with, and the
//! compute path uses exactly that spec — so a packed multiply is
//! bit-identical to the repacking path (and to
//! [`matmul_reference`](crate::gemm::matmul_reference)) no matter which
//! valid blocking produced the panels.
//!
//! # Staleness
//!
//! A `PackedTensor` is a snapshot of the source values at pack time.
//! [`PackedTensor::matches`] checks shape/transpose metadata only — cheap
//! enough for a per-call guard — so holders are responsible for
//! invalidating packs when the source tensor is rebound (the executor's
//! `Bindings` drop a tensor's pack on every rebinding for this reason).

use std::sync::Arc;

use crate::gemm::{self, BlockSpec};
use crate::storage::{Buf, BufOwner};
use crate::{pool, Result, Tensor, TensorError};

/// A `B` operand resident in the GEMM's panel layout.
///
/// Rank-2 sources pack to `batch == 1`; rank-3 sources (per-expert weight
/// stacks) pack each leading slice and record `batch == B`. A `batch == 1`
/// pack broadcasts across the batch axis of
/// [`batched_matmul_packed`](crate::gemm::batched_matmul_packed).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTensor {
    buf: Buf,
    batch: usize,
    k: usize,
    n: usize,
    spec: BlockSpec,
    /// Panel elements per batch slice (`buf.len() == batch * panel_len`).
    panel_len: usize,
    src_shape: Vec<usize>,
    transposed: bool,
}

impl PackedTensor {
    /// Packs a rank-2 operand (resolving a virtual transpose), choosing
    /// blocking from the active tuned table
    /// ([`crate::tune::spec_for_pack`]) and auto-sizing workers.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `b` is rank-2.
    pub fn pack(b: &Tensor, transpose_b: bool) -> Result<PackedTensor> {
        if b.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "pack", expected: 2, actual: b.rank() });
        }
        let (br, bc) = (b.shape()[0], b.shape()[1]);
        let (k, n) = if transpose_b { (bc, br) } else { (br, bc) };
        Self::pack_with(b, transpose_b, crate::tune::spec_for_pack(k, n), 0)
    }

    /// [`PackedTensor::pack`] with an explicit blocking and worker count.
    /// Invalid specs degrade to [`BlockSpec::DEFAULT`].
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `b` is rank-2.
    pub fn pack_with(
        b: &Tensor,
        transpose_b: bool,
        spec: BlockSpec,
        workers: usize,
    ) -> Result<PackedTensor> {
        if b.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "pack", expected: 2, actual: b.rank() });
        }
        let spec = if spec.is_valid() { spec } else { BlockSpec::DEFAULT };
        let (br, bc) = (b.shape()[0], b.shape()[1]);
        let (k, n) = if transpose_b { (bc, br) } else { (br, bc) };
        let w = pool::resolve_workers(workers);
        let buf = gemm::pack_b(spec, k, n, b.data(), bc, transpose_b, w);
        Ok(PackedTensor {
            panel_len: buf.len(),
            buf: Buf::Owned(buf),
            batch: 1,
            k,
            n,
            spec,
            src_shape: b.shape().to_vec(),
            transposed: transpose_b,
        })
    }

    /// Packs a rank-3 `(B, K, N)` operand — every slice in parallel over
    /// the shared pool — choosing blocking from the active tuned table.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `b` is rank-3.
    pub fn pack_batched(b: &Tensor) -> Result<PackedTensor> {
        if b.rank() != 3 {
            return Err(TensorError::RankMismatch { op: "pack", expected: 3, actual: b.rank() });
        }
        Self::pack_batched_with(b, crate::tune::spec_for_pack(b.shape()[1], b.shape()[2]), 0)
    }

    /// [`PackedTensor::pack_batched`] with an explicit blocking and worker
    /// count. Invalid specs degrade to [`BlockSpec::DEFAULT`].
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] unless `b` is rank-3.
    pub fn pack_batched_with(
        b: &Tensor,
        spec: BlockSpec,
        workers: usize,
    ) -> Result<PackedTensor> {
        if b.rank() != 3 {
            return Err(TensorError::RankMismatch { op: "pack", expected: 3, actual: b.rank() });
        }
        let spec = if spec.is_valid() { spec } else { BlockSpec::DEFAULT };
        let (bt, k, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
        let w = pool::resolve_workers(workers);
        let buf = gemm::pack_b_batched(spec, bt, k, n, b.data(), w);
        Ok(PackedTensor {
            panel_len: gemm::packed_len(spec, k, n),
            buf: Buf::Owned(buf),
            batch: bt,
            k,
            n,
            spec,
            src_shape: b.shape().to_vec(),
            transposed: false,
        })
    }

    /// Reconstructs packed panels from a shared buffer owner — the
    /// zero-copy load path used by the `lancet-store` model format, which
    /// serializes panels with [`PackedTensor::panel_data`] at pack time so
    /// replicas skip re-packing at load.
    ///
    /// The window must hold exactly `batch` panel slices for `(k, n)`
    /// under `spec` (i.e. `words == batch * packed_len(spec, k, n)`), laid
    /// out exactly as [`PackedTensor::pack_with`] /
    /// [`PackedTensor::pack_batched_with`] produce them; the panel layout
    /// is part of the store's format contract.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if the window is out of the owner's
    /// bounds or `words` disagrees with the metadata;
    /// [`TensorError::RankMismatch`] if `src_shape`/`batch` are not a
    /// valid rank-2 or rank-3 pack description.
    #[allow(clippy::too_many_arguments)]
    pub fn from_shared_panels(
        owner: Arc<dyn BufOwner>,
        offset: usize,
        words: usize,
        batch: usize,
        k: usize,
        n: usize,
        spec: BlockSpec,
        src_shape: Vec<usize>,
        transposed: bool,
    ) -> Result<PackedTensor> {
        let spec = if spec.is_valid() { spec } else { BlockSpec::DEFAULT };
        let rank_ok = match src_shape.len() {
            2 => batch == 1,
            3 => batch == src_shape[0] && !transposed,
            _ => false,
        };
        if !rank_ok {
            return Err(TensorError::RankMismatch {
                op: "pack",
                expected: if batch == 1 { 2 } else { 3 },
                actual: src_shape.len(),
            });
        }
        let panel_len = gemm::packed_len(spec, k, n);
        let expected = batch.saturating_mul(panel_len);
        if words != expected {
            return Err(TensorError::LengthMismatch { expected, actual: words });
        }
        let total = owner.as_f32().len();
        let buf = Buf::shared(owner, offset, words).ok_or(TensorError::LengthMismatch {
            expected: offset.saturating_add(words),
            actual: total,
        })?;
        Ok(PackedTensor { buf, batch, k, n, spec, panel_len, src_shape, transposed })
    }

    /// The raw panel buffer (all batch slices, contiguous) — the bytes the
    /// model store serializes so a later [`PackedTensor::from_shared_panels`]
    /// can rebuild these panels without re-packing.
    pub fn panel_data(&self) -> &[f32] {
        self.buf.as_slice()
    }

    /// Whether the panels are borrowed zero-copy from a shared owner.
    pub fn is_shared(&self) -> bool {
        self.buf.is_shared()
    }

    /// Whether these panels were packed from a tensor of `b`'s shape with
    /// the same transpose interpretation — the checked fast-path guard.
    ///
    /// Metadata only: it cannot detect that `b`'s *values* changed since
    /// packing. Holders must invalidate packs on rebinding.
    pub fn matches(&self, b: &Tensor, transpose_b: bool) -> bool {
        self.src_shape == b.shape() && self.transposed == transpose_b
    }

    /// Leading batch extent (`1` for a rank-2 source).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Inner (contraction) dimension after transpose resolution.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output-column dimension after transpose resolution.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The blocking the panels are laid out with (and the compute path
    /// will use).
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Shape of the tensor the panels were packed from.
    pub fn src_shape(&self) -> &[usize] {
        &self.src_shape
    }

    /// Whether the source was interpreted as transposed while packing.
    pub fn transposed(&self) -> bool {
        self.transposed
    }

    /// Heap bytes held by the panel buffer — the memory cost of keeping
    /// this weight resident in packed form (surfaced by the serve plan
    /// cache stats).
    pub fn bytes(&self) -> u64 {
        (self.buf.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Panels of batch slice `bi`.
    pub(crate) fn panels(&self, bi: usize) -> &[f32] {
        &self.buf.as_slice()[bi * self.panel_len..(bi + 1) * self.panel_len]
    }

    /// The whole panel buffer (all batch slices, contiguous).
    pub(crate) fn buf(&self) -> &[f32] {
        self.buf.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{batched_matmul_packed, batched_matmul_reference, matmul_packed, matmul_reference};
    use crate::TensorRng;

    #[test]
    fn packed_matmul_is_bit_identical() {
        let mut rng = TensorRng::seed(21);
        let (m, k, n) = (33, 257, 70);
        let a = rng.uniform(vec![m, k], -1.0, 1.0);
        for tb in [false, true] {
            let b = rng.uniform(if tb { vec![n, k] } else { vec![k, n] }, -1.0, 1.0);
            let reference = matmul_reference(&a, &b, false, tb).unwrap();
            let pb = PackedTensor::pack(&b, tb).unwrap();
            assert!(pb.matches(&b, tb));
            assert!(!pb.matches(&b, !tb));
            let y = matmul_packed(&a, &pb, false, 0).unwrap();
            assert_eq!(y.data(), reference.data());
        }
    }

    #[test]
    fn packed_batched_matmul_is_bit_identical() {
        let mut rng = TensorRng::seed(22);
        let (bt, m, k, n) = (3, 40, 65, 50);
        let a = rng.uniform(vec![bt, m, k], -1.0, 1.0);
        let b = rng.uniform(vec![bt, k, n], -1.0, 1.0);
        let reference = batched_matmul_reference(&a, &b).unwrap();
        let pb = PackedTensor::pack_batched(&b).unwrap();
        assert_eq!(pb.batch(), bt);
        for workers in [1, 2, 0] {
            let y = batched_matmul_packed(&a, &pb, workers).unwrap();
            assert_eq!(y.data(), reference.data());
        }
    }

    #[test]
    fn shared_b_broadcasts_across_batch() {
        // batch == 1 panels applied to every slice of a batched A must
        // equal materializing B per slice.
        let mut rng = TensorRng::seed(23);
        let (bt, m, k, n) = (4, 20, 48, 36);
        let a = rng.uniform(vec![bt, m, k], -1.0, 1.0);
        let b2 = rng.uniform(vec![k, n], -1.0, 1.0);
        let mut stacked = Vec::with_capacity(bt * k * n);
        for _ in 0..bt {
            stacked.extend_from_slice(b2.data());
        }
        let b3 = Tensor::from_vec(vec![bt, k, n], stacked).unwrap();
        let reference = batched_matmul_reference(&a, &b3).unwrap();
        let pb = PackedTensor::pack(&b2, false).unwrap();
        assert_eq!(pb.batch(), 1);
        let y = batched_matmul_packed(&a, &pb, 0).unwrap();
        assert_eq!(y.data(), reference.data());
    }

    #[test]
    fn mismatched_pack_is_rejected() {
        let a = Tensor::zeros(vec![4, 7]);
        let b = Tensor::zeros(vec![9, 5]);
        let pb = PackedTensor::pack(&b, false).unwrap();
        assert!(matmul_packed(&a, &pb, false, 0).is_err(), "k mismatch must error");
        let a3 = Tensor::zeros(vec![2, 4, 9]);
        let pb3 = PackedTensor::pack_batched(&Tensor::zeros(vec![3, 9, 5])).unwrap();
        assert!(batched_matmul_packed(&a3, &pb3, 0).is_err(), "batch mismatch must error");
        assert!(PackedTensor::pack(&Tensor::zeros(vec![2, 3, 4]), false).is_err());
        assert!(PackedTensor::pack_batched(&Tensor::zeros(vec![3, 4])).is_err());
    }

    #[test]
    fn shared_panels_round_trip_bit_identically() {
        use crate::storage::VecOwner;
        use std::sync::Arc;
        let mut rng = TensorRng::seed(24);
        let a = rng.uniform(vec![9, 33], -1.0, 1.0);
        let b = rng.uniform(vec![33, 21], -1.0, 1.0);
        let pb = PackedTensor::pack(&b, false).unwrap();
        let owner: Arc<dyn crate::storage::BufOwner> =
            Arc::new(VecOwner(pb.panel_data().to_vec()));
        let shared = PackedTensor::from_shared_panels(
            Arc::clone(&owner),
            0,
            pb.panel_data().len(),
            pb.batch(),
            pb.k(),
            pb.n(),
            pb.spec(),
            pb.src_shape().to_vec(),
            pb.transposed(),
        )
        .unwrap();
        assert!(shared.is_shared());
        assert_eq!(shared, pb);
        let y = matmul_packed(&a, &shared, false, 0).unwrap();
        let reference = matmul_reference(&a, &b, false, false).unwrap();
        assert_eq!(y.data(), reference.data());
        // Wrong word counts and out-of-bounds windows are typed errors.
        assert!(PackedTensor::from_shared_panels(
            Arc::clone(&owner),
            0,
            7,
            pb.batch(),
            pb.k(),
            pb.n(),
            pb.spec(),
            pb.src_shape().to_vec(),
            pb.transposed(),
        )
        .is_err());
        assert!(PackedTensor::from_shared_panels(
            owner,
            64,
            pb.panel_data().len(),
            pb.batch(),
            pb.k(),
            pb.n(),
            pb.spec(),
            pb.src_shape().to_vec(),
            pb.transposed(),
        )
        .is_err());
    }

    #[test]
    fn bytes_reports_panel_buffer() {
        let b = Tensor::zeros(vec![100, 100]);
        let pb = PackedTensor::pack_with(&b, false, BlockSpec::DEFAULT, 1).unwrap();
        // One 256×512 panel slot (edges padded to full size).
        assert_eq!(pb.bytes(), (256 * 512 * 4) as u64);
    }
}
