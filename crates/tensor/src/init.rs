//! Deterministic random initialization for tensors.

use crate::Tensor;

/// A seeded random number generator for reproducible tensor
/// initialization (SplitMix64 under the hood — no external dependency,
/// identical streams on every platform).
///
/// # Example
///
/// ```
/// use lancet_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(42);
/// let a = rng.uniform(vec![2, 2], -1.0, 1.0);
/// let mut rng2 = TensorRng::seed(42);
/// let b = rng2.uniform(vec![2, 2], -1.0, 1.0);
/// assert_eq!(a, b); // same seed, same tensor
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    state: u64,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniformly distributed elements in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, shape: impl Into<crate::Shape>, lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform requires lo < hi");
        let shape = shape.into();
        let data = (0..shape.volume()).map(|_| lo + (hi - lo) * self.sample()).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// Approximately normal elements (mean 0, std `std`) via the sum of
    /// twelve uniforms (Irwin–Hall), which is plenty for initialization.
    pub fn normal(&mut self, shape: impl Into<crate::Shape>, std: f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.volume())
            .map(|_| {
                let s: f32 = (0..12).map(|_| self.sample()).sum();
                (s - 6.0) * std
            })
            .collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// A raw `f32` sample in `[0, 1)`.
    pub fn sample(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }

    /// A uniformly random integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_same_seed() {
        let a = TensorRng::seed(7).uniform(vec![8], 0.0, 1.0);
        let b = TensorRng::seed(7).uniform(vec![8], 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).uniform(vec![32], 0.0, 1.0);
        let b = TensorRng::seed(2).uniform(vec![32], 0.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = TensorRng::seed(3).uniform(vec![1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let t = TensorRng::seed(4).normal(vec![10000], 1.0);
        let mean = t.sum() / 10000.0;
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_in_range() {
        let mut rng = TensorRng::seed(5);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
