use std::fmt;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A slice range was invalid (empty, reversed, or out of bounds).
    InvalidSlice {
        /// The offending axis.
        axis: usize,
        /// Requested start index.
        start: usize,
        /// Requested end index (exclusive).
        end: usize,
        /// Size of the dimension being sliced.
        dim: usize,
    },
    /// The operation requires a different rank than the tensor has.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidSlice { axis, start, end, dim } => {
                write!(f, "invalid slice {start}..{end} on axis {axis} of size {dim}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "rank mismatch in {op}: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
