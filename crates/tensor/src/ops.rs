//! Numeric kernels on [`Tensor`].
//!
//! All kernels allocate their output; inputs are never mutated. Shapes are
//! validated and mismatches reported via [`TensorError`].
//!
//! Dense matrix products run on the packed, cache-blocked engine in
//! [`crate::gemm`]; elementwise maps and row-wise reductions chunk over
//! the shared [`crate::pool`] once tensors are large enough to pay for
//! it. Both are bit-identical at any worker count (module docs carry the
//! determinism contract).

use crate::pool::{self, SharedSliceMut};
use crate::{Result, Shape, Tensor, TensorError};

/// Elementwise kernels on tensors smaller than this run inline; chunking
/// tiny maps over the pool costs more in handoff than it saves.
const PAR_ELEMENTWISE_MIN: usize = 32 * 1024;

/// Maps `f` over `src` into a new buffer, chunk-parallel for large inputs.
fn unary_map(src: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    if src.len() < PAR_ELEMENTWISE_MIN {
        for (o, &s) in out.iter_mut().zip(src) {
            *o = f(s);
        }
    } else {
        let view = SharedSliceMut::new(&mut out);
        pool::par_ranges(src.len(), 0, |r| {
            // SAFETY: `par_ranges` ranges are disjoint.
            let dst = unsafe { view.range_mut(r.clone()) };
            for (o, &s) in dst.iter_mut().zip(&src[r]) {
                *o = f(s);
            }
        });
    }
    out
}

/// Zips `f` over two equal-length buffers, chunk-parallel for large inputs.
fn binary_map(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0.0f32; a.len()];
    if a.len() < PAR_ELEMENTWISE_MIN {
        for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
            *o = f(x, y);
        }
    } else {
        let view = SharedSliceMut::new(&mut out);
        pool::par_ranges(a.len(), 0, |r| {
            // SAFETY: `par_ranges` ranges are disjoint.
            let dst = unsafe { view.range_mut(r.clone()) };
            for (o, (&x, &y)) in dst.iter_mut().zip(a[r.clone()].iter().zip(&b[r])) {
                *o = f(x, y);
            }
        });
    }
    out
}

/// Applies `f` to each contiguous `d`-element row, chunk-parallel over
/// rows for large inputs. `src` and the output have identical layout.
fn rowwise_map(src: &[f32], d: usize, f: impl Fn(&[f32], &mut [f32]) + Sync) -> Vec<f32> {
    let d = d.max(1);
    let rows = src.len() / d;
    let mut out = vec![0.0f32; src.len()];
    if src.len() < PAR_ELEMENTWISE_MIN || rows <= 1 {
        for (srow, orow) in src.chunks(d).zip(out.chunks_mut(d)) {
            f(srow, orow);
        }
    } else {
        let view = SharedSliceMut::new(&mut out);
        pool::par_ranges(rows, 0, |r| {
            // SAFETY: row ranges from `par_ranges` are disjoint.
            let dst = unsafe { view.range_mut(r.start * d..r.end * d) };
            for (srow, orow) in src[r.start * d..r.end * d].chunks(d).zip(dst.chunks_mut(d)) {
                f(srow, orow);
            }
        });
    }
    out
}

impl Tensor {
    fn zip_elementwise(&self, other: &Tensor, op: &'static str, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let data = binary_map(self.data(), other.data(), f);
        Tensor::from_vec(self.shape().to_vec(), data)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(other, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(other, "sub", |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = unary_map(self.data(), |a| a * s);
        Tensor::from_vec(self.shape().to_vec(), data).expect("same volume")
    }

    /// Adds a rank-1 bias along the last dimension.
    ///
    /// For input `(…, D)` and bias `(D,)`, returns `x + bias` broadcast over
    /// the leading dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the bias length differs
    /// from the last dimension.
    pub fn bias_add(&self, bias: &Tensor) -> Result<Tensor> {
        let d = *self.shape().last().unwrap_or(&1);
        if bias.rank() != 1 || bias.shape()[0] != d {
            return Err(TensorError::ShapeMismatch {
                op: "bias_add",
                lhs: self.shape().to_vec(),
                rhs: bias.shape().to_vec(),
            });
        }
        let mut out = self.clone();
        for chunk in out.data_mut().chunks_mut(d) {
            for (x, &b) in chunk.iter_mut().zip(bias.data()) {
                *x += b;
            }
        }
        Ok(out)
    }

    /// Matrix product of the two trailing-2D views: `(M, K) x (K, N) -> (M, N)`.
    ///
    /// Rank-2 inputs only; use [`Tensor::batched_matmul`] for rank-3.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_t(other, false, false)
    }

    /// Matrix product with optional transposes applied to either operand.
    ///
    /// `transpose_a`/`transpose_b` interpret the stored `(R, C)` buffer as
    /// its transpose without materializing it. Runs on the packed tiled
    /// engine ([`crate::gemm`]) over the shared thread pool; results are
    /// bit-identical for any worker count and follow IEEE semantics on
    /// non-finite inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_t(&self, other: &Tensor, transpose_a: bool, transpose_b: bool) -> Result<Tensor> {
        crate::gemm::matmul_tiled(self, other, transpose_a, transpose_b, 0)
    }

    /// Batched matrix product: `(B, M, K) x (B, K, N) -> (B, M, N)`.
    ///
    /// Used for per-expert FFN computation where the leading axis indexes
    /// experts; the shared thread pool parallelizes over that axis with
    /// bit-identical results at any worker count (see [`crate::gemm`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`]/[`TensorError::ShapeMismatch`]
    /// on malformed inputs.
    pub fn batched_matmul(&self, other: &Tensor) -> Result<Tensor> {
        crate::gemm::batched_matmul_tiled(self, other, 0)
    }

    /// Matrix product against a weight already resident in panel layout
    /// (`(M, K) x packed (K, N) -> (M, N)`): the steady-state serving fast
    /// path, skipping the per-call `B` packing. Bit-identical to
    /// [`Tensor::matmul`] against the tensor the panels were packed from.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for a non-rank-2 input and
    /// [`TensorError::ShapeMismatch`] when the inner dimension disagrees
    /// with the packed operand (or the packed operand is batched).
    pub fn matmul_prepacked(&self, packed: &crate::PackedTensor) -> Result<Tensor> {
        crate::gemm::matmul_packed(self, packed, false, 0)
    }

    /// Batched matrix product against prepacked per-expert panels
    /// (`(B, M, K) x packed (B, K, N) -> (B, M, N)`; a `batch == 1` pack
    /// broadcasts). Bit-identical to [`Tensor::batched_matmul`] against
    /// the tensor the panels were packed from.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`]/[`TensorError::ShapeMismatch`]
    /// on malformed or incompatible inputs.
    pub fn batched_matmul_prepacked(&self, packed: &crate::PackedTensor) -> Result<Tensor> {
        crate::gemm::batched_matmul_packed(self, packed, 0)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let data = unary_map(self.data(), |x| x.max(0.0));
        Tensor::from_vec(self.shape().to_vec(), data).expect("same volume")
    }

    /// Gradient of ReLU: passes `grad` where the forward input was positive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn relu_grad(&self, grad: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(grad, "relu_grad", |x, g| if x > 0.0 { g } else { 0.0 })
    }

    /// GELU activation (tanh approximation, as used by GPT-2).
    pub fn gelu(&self) -> Tensor {
        let data = unary_map(self.data(), gelu_scalar);
        Tensor::from_vec(self.shape().to_vec(), data).expect("same volume")
    }

    /// Gradient of [`Tensor::gelu`] with respect to its input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn gelu_grad(&self, grad: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(grad, "gelu_grad", |x, g| g * gelu_grad_scalar(x))
    }

    /// Softmax over the last dimension, numerically stabilized.
    /// Rows are independent, so large inputs chunk over the shared pool.
    pub fn softmax_last(&self) -> Tensor {
        let d = *self.shape().last().unwrap_or(&1);
        let data = rowwise_map(self.data(), d, |src, row| {
            let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (x, &s) in row.iter_mut().zip(src) {
                *x = (s - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        });
        Tensor::from_vec(self.shape().to_vec(), data).expect("same volume")
    }

    /// Gradient of [`Tensor::softmax_last`].
    ///
    /// `self` must be the softmax *output* `y`; returns
    /// `y ⊙ (g − sum(g ⊙ y))` per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn softmax_last_grad(&self, grad: &Tensor) -> Result<Tensor> {
        if self.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "softmax_grad",
                lhs: self.shape().to_vec(),
                rhs: grad.shape().to_vec(),
            });
        }
        let d = *self.shape().last().unwrap_or(&1);
        let mut out = vec![0.0f32; self.volume()];
        for ((yrow, grow), orow) in self
            .data()
            .chunks(d.max(1))
            .zip(grad.data().chunks(d.max(1)))
            .zip(out.chunks_mut(d.max(1)))
        {
            let dot: f32 = yrow.iter().zip(grow).map(|(&y, &g)| y * g).sum();
            for ((&y, &g), o) in yrow.iter().zip(grow).zip(orow.iter_mut()) {
                *o = y * (g - dot);
            }
        }
        Tensor::from_vec(self.shape().to_vec(), out)
    }

    /// Layer normalization over the last dimension with scale `gamma` and
    /// shift `beta` (both rank-1 of the last-dim size).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on malformed parameters.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
        let d = *self.shape().last().unwrap_or(&1);
        if gamma.shape() != [d] || beta.shape() != [d] {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: self.shape().to_vec(),
                rhs: gamma.shape().to_vec(),
            });
        }
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(d) {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (x, (&g, &b)) in row.iter_mut().zip(gamma.data().iter().zip(beta.data())) {
                *x = (*x - mean) * inv * g + b;
            }
        }
        Ok(out)
    }

    /// Gradients of [`Tensor::layer_norm`] with respect to input, gamma and
    /// beta, given the forward input `self` and upstream `grad`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on malformed inputs.
    pub fn layer_norm_grad(
        &self,
        gamma: &Tensor,
        grad: &Tensor,
        eps: f32,
    ) -> Result<(Tensor, Tensor, Tensor)> {
        let d = *self.shape().last().unwrap_or(&1);
        if gamma.shape() != [d] || grad.shape() != self.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm_grad",
                lhs: self.shape().to_vec(),
                rhs: grad.shape().to_vec(),
            });
        }
        let mut dx = vec![0.0f32; self.volume()];
        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        for (row, (grow, orow)) in self
            .data()
            .chunks(d)
            .zip(grad.data().chunks(d).zip(dx.chunks_mut(d)))
        {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            let xhat: Vec<f32> = row.iter().map(|&x| (x - mean) * inv).collect();
            // Accumulate parameter gradients.
            for i in 0..d {
                dgamma[i] += grow[i] * xhat[i];
                dbeta[i] += grow[i];
            }
            // dL/dxhat = g * gamma; standard layernorm backward.
            let dxhat: Vec<f32> = (0..d).map(|i| grow[i] * gamma.data()[i]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(&xhat).map(|(&a, &b)| a * b).sum();
            for i in 0..d {
                orow[i] = inv / d as f32
                    * (d as f32 * dxhat[i] - sum_dxhat - xhat[i] * sum_dxhat_xhat);
            }
        }
        Ok((
            Tensor::from_vec(self.shape().to_vec(), dx)?,
            Tensor::from_vec(vec![d], dgamma)?,
            Tensor::from_vec(vec![d], dbeta)?,
        ))
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Sums over `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for a bad axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let dims = self.shape();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                for i in 0..inner {
                    out[o * inner + i] += self.data()[(o * mid + m) * inner + i];
                }
            }
        }
        let mut new_dims: Vec<usize> = dims[..axis].to_vec();
        new_dims.extend_from_slice(&dims[axis + 1..]);
        Tensor::from_vec(new_dims, out)
    }

    /// Copies the sub-tensor `start..end` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] or
    /// [`TensorError::InvalidSlice`] on bad arguments.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let dim = self.shape()[axis];
        if start >= end || end > dim {
            return Err(TensorError::InvalidSlice { axis, start, end, dim });
        }
        let dims = self.shape();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let len = end - start;
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * dim + start) * inner;
            out.extend_from_slice(&self.data()[base..base + len * inner]);
        }
        let new_shape = Shape::from(dims).with_dim(axis, len);
        Tensor::from_vec(new_shape, out)
    }

    /// Concatenates tensors along `axis`. All other dimensions must match.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when non-concat dims differ,
    /// or [`TensorError::AxisOutOfRange`] for a bad axis. Requires at least
    /// one input.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = parts.first().expect("concat of zero tensors");
        if axis >= first.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: first.rank() });
        }
        let mut total = 0usize;
        for p in parts {
            if p.rank() != first.rank()
                || p.shape()
                    .iter()
                    .zip(first.shape())
                    .enumerate()
                    .any(|(i, (a, b))| i != axis && a != b)
            {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                });
            }
            total += p.shape()[axis];
        }
        let dims = first.shape();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * total * inner);
        for o in 0..outer {
            for p in parts {
                let d = p.shape()[axis];
                let base = o * d * inner;
                out.extend_from_slice(&p.data()[base..base + d * inner]);
            }
        }
        let new_shape = Shape::from(dims).with_dim(axis, total);
        Tensor::from_vec(new_shape, out)
    }

    /// Splits the tensor into `parts` nearly equal chunks along `axis`
    /// (earlier chunks get the remainder), inverse of [`Tensor::concat`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for a bad axis.
    /// `parts` must be non-zero and at most the axis extent.
    pub fn split_axis(&self, axis: usize, parts: usize) -> Result<Vec<Tensor>> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        let dim = self.shape()[axis];
        assert!(parts >= 1 && parts <= dim, "parts must be in 1..=dim");
        let base = dim / parts;
        let rem = dim % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            out.push(self.slice_axis(axis, start, start + len)?);
            start += len;
        }
        Ok(out)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the rank is not 2.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "transpose2", expected: 2, actual: self.rank() });
        }
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data()[i * c + j];
            }
        }
        Tensor::from_vec(vec![c, r], out)
    }
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(vec![2], vec![1.0, 2.0]);
        let b = t(vec![2], vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert!(a.add(&Tensor::zeros(vec![3])).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_transposes_agree() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(vec![3, 4], (0..12).map(|x| x as f32).collect());
        let plain = a.matmul(&b).unwrap();
        let at = a.transpose2().unwrap();
        let bt = b.transpose2().unwrap();
        assert_eq!(at.matmul_t(&b, true, false).unwrap(), plain);
        assert_eq!(a.matmul_t(&bt, false, true).unwrap(), plain);
        assert_eq!(at.matmul_t(&bt, true, true).unwrap(), plain);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![2, 3], vec![0.0; 6]);
        let b = t(vec![2, 3], vec![0.0; 6]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(vec![3])).is_err());
    }

    #[test]
    fn batched_matmul_matches_loop() {
        let a = t(vec![2, 2, 3], (0..12).map(|x| x as f32).collect());
        let b = t(vec![2, 3, 2], (0..12).map(|x| (x as f32) * 0.5).collect());
        let c = a.batched_matmul(&b).unwrap();
        for bi in 0..2 {
            let ai = a.slice_axis(0, bi, bi + 1).unwrap().reshape(vec![2, 3]).unwrap();
            let bi_t = b.slice_axis(0, bi, bi + 1).unwrap().reshape(vec![3, 2]).unwrap();
            let ci = c.slice_axis(0, bi, bi + 1).unwrap().reshape(vec![2, 2]).unwrap();
            assert!(ci.allclose(&ai.matmul(&bi_t).unwrap()));
        }
    }

    #[test]
    fn relu_and_grad() {
        let x = t(vec![4], vec![-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(x.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = t(vec![4], vec![1.0; 4]);
        assert_eq!(x.relu_grad(&g).unwrap().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gelu_known_values() {
        let x = t(vec![3], vec![0.0, 1.0, -1.0]);
        let y = x.gelu();
        assert!((y.data()[0]).abs() < 1e-6);
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
        assert!((y.data()[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        let xs = [-2.0f32, -0.5, 0.0, 0.3, 1.7];
        for &x0 in &xs {
            let x = Tensor::scalar(x0);
            let g = x.gelu_grad(&Tensor::scalar(1.0)).unwrap().data()[0];
            let eps = 1e-3;
            let num = (gelu_scalar(x0 + eps) - gelu_scalar(x0 - eps)) / (2.0 * eps);
            assert!((g - num).abs() < 1e-3, "x={x0}: {g} vs {num}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = x.softmax_last();
        for row in y.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Largest logit gets largest probability.
        assert!(y.data()[2] > y.data()[1] && y.data()[1] > y.data()[0]);
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let x = t(vec![1, 3], vec![0.3, -0.6, 1.1]);
        let g = t(vec![1, 3], vec![0.5, -1.0, 2.0]);
        let y = x.softmax_last();
        let dx = y.softmax_last_grad(&g).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = xp.softmax_last().mul(&g).unwrap().sum();
            let lm: f32 = xm.softmax_last().mul(&g).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx.data()[i] - num).abs() < 1e-3, "i={i}: {} vs {num}", dx.data()[i]);
        }
    }

    #[test]
    fn layer_norm_normalizes() {
        let x = t(vec![2, 4], vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 4.0]);
        let gamma = Tensor::full(vec![4], 1.0);
        let beta = Tensor::zeros(vec![4]);
        let y = x.layer_norm(&gamma, &beta, 1e-5).unwrap();
        for row in y.data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layer_norm_grad_matches_finite_difference() {
        let x = t(vec![1, 4], vec![0.5, -1.0, 2.0, 0.1]);
        let gamma = t(vec![4], vec![1.1, 0.9, 1.0, 1.2]);
        let beta = t(vec![4], vec![0.1, -0.1, 0.0, 0.2]);
        let g = t(vec![1, 4], vec![1.0, -0.5, 0.3, 0.7]);
        let (dx, dgamma, dbeta) = x.layer_norm_grad(&gamma, &g, 1e-5).unwrap();
        let eps = 1e-3;
        let loss = |xx: &Tensor, gm: &Tensor, bt: &Tensor| -> f32 {
            xx.layer_norm(gm, bt, 1e-5).unwrap().mul(&g).unwrap().sum()
        };
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!((dx.data()[i] - num).abs() < 2e-2, "dx[{i}]: {} vs {num}", dx.data()[i]);

            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm2 = gamma.clone();
            gm2.data_mut()[i] -= eps;
            let num = (loss(&x, &gp, &beta) - loss(&x, &gm2, &beta)) / (2.0 * eps);
            assert!((dgamma.data()[i] - num).abs() < 1e-2);

            let mut bp = beta.clone();
            bp.data_mut()[i] += eps;
            let mut bm = beta.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((dbeta.data()[i] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn sum_axis_collapses() {
        let x = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(x.sum_axis(0).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(x.sum_axis(1).unwrap().data(), &[6., 15.]);
        assert!(x.sum_axis(2).is_err());
    }

    #[test]
    fn slice_concat_roundtrip() {
        let x = t(vec![4, 2], (0..8).map(|v| v as f32).collect());
        let a = x.slice_axis(0, 0, 1).unwrap();
        let b = x.slice_axis(0, 1, 4).unwrap();
        let back = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(back, x);
        // Also along axis 1.
        let l = x.slice_axis(1, 0, 1).unwrap();
        let r = x.slice_axis(1, 1, 2).unwrap();
        assert_eq!(Tensor::concat(&[&l, &r], 1).unwrap(), x);
    }

    #[test]
    fn split_axis_uneven() {
        let x = t(vec![5, 1], (0..5).map(|v| v as f32).collect());
        let parts = x.split_axis(0, 2).unwrap();
        assert_eq!(parts[0].shape(), &[3, 1]);
        assert_eq!(parts[1].shape(), &[2, 1]);
        assert_eq!(Tensor::concat(&[&parts[0], &parts[1]], 0).unwrap(), x);
    }

    #[test]
    fn bias_add_broadcasts() {
        let x = t(vec![2, 3], vec![0.0; 6]);
        let b = t(vec![3], vec![1.0, 2.0, 3.0]);
        let y = x.bias_add(&b).unwrap();
        assert_eq!(y.data(), &[1., 2., 3., 1., 2., 3.]);
        assert!(x.bias_add(&Tensor::zeros(vec![2])).is_err());
    }

    #[test]
    fn transpose2_involution() {
        let x = t(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(x.transpose2().unwrap().transpose2().unwrap(), x);
    }
}

impl Tensor {
    /// Permutes dimensions: `out[i_perm[0], …] = in[i_0, …]`.
    ///
    /// `perm` maps output axes to input axes, e.g. `perm = [1, 0]` is a
    /// transpose and `perm = [0, 2, 1, 3]` swaps the middle axes of a
    /// rank-4 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `perm.len() != rank`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "permute",
                expected: self.rank(),
                actual: perm.len(),
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "perm must be a permutation");
            seen[p] = true;
        }
        let in_dims = self.shape();
        let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
        let in_strides = crate::stride_for(in_dims);
        let out_volume: usize = out_dims.iter().product();
        let mut out = vec![0.0f32; out_volume];
        let out_strides = crate::stride_for(&out_dims);
        for (o_idx, slot) in out.iter_mut().enumerate() {
            // Decompose o_idx into output coordinates, map to input offset.
            let mut rem = o_idx;
            let mut in_off = 0usize;
            for (d, &os) in out_strides.iter().enumerate() {
                let coord = rem / os;
                rem %= os;
                in_off += coord * in_strides[perm[d]];
            }
            *slot = self.data()[in_off];
        }
        Tensor::from_vec(out_dims, out)
    }
}

#[cfg(test)]
mod permute_tests {
    use super::*;

    #[test]
    fn permute_matches_transpose2() {
        let x = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        assert_eq!(x.permute(&[1, 0]).unwrap(), x.transpose2().unwrap());
    }

    #[test]
    fn permute_rank3_roundtrip() {
        let x = Tensor::from_vec(vec![2, 3, 4], (0..24).map(|v| v as f32).collect()).unwrap();
        let y = x.permute(&[2, 0, 1]).unwrap();
        assert_eq!(y.shape(), &[4, 2, 3]);
        // Inverse permutation restores the original.
        let z = y.permute(&[1, 2, 0]).unwrap();
        assert_eq!(z, x);
        assert_eq!(y.at(&[3, 1, 2]), x.at(&[1, 2, 3]));
    }

    #[test]
    fn permute_identity() {
        let x = Tensor::from_vec(vec![2, 2, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        assert_eq!(x.permute(&[0, 1, 2]).unwrap(), x);
    }

    #[test]
    fn permute_rejects_wrong_rank() {
        let x = Tensor::zeros(vec![2, 2]);
        assert!(x.permute(&[0]).is_err());
    }
}

impl Tensor {
    /// SiLU (swish) activation: `x · sigmoid(x)`.
    pub fn silu(&self) -> Tensor {
        let data = unary_map(self.data(), silu_scalar);
        Tensor::from_vec(self.shape().to_vec(), data).expect("same volume")
    }

    /// Gradient of [`Tensor::silu`] with respect to its input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn silu_grad(&self, grad: &Tensor) -> Result<Tensor> {
        self.zip_elementwise(grad, "silu_grad", |x, g| g * silu_grad_scalar(x))
    }

    /// RMS normalization over the last dimension with scale `gamma`
    /// (rank-1 of the last-dim size): `x / rms(x) · gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a malformed gamma.
    pub fn rms_norm(&self, gamma: &Tensor, eps: f32) -> Result<Tensor> {
        let d = *self.shape().last().unwrap_or(&1);
        if gamma.shape() != [d] {
            return Err(TensorError::ShapeMismatch {
                op: "rms_norm",
                lhs: self.shape().to_vec(),
                rhs: gamma.shape().to_vec(),
            });
        }
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(d) {
            let ms = row.iter().map(|&x| x * x).sum::<f32>() / d as f32;
            let inv = 1.0 / (ms + eps).sqrt();
            for (x, &g) in row.iter_mut().zip(gamma.data()) {
                *x = *x * inv * g;
            }
        }
        Ok(out)
    }

    /// Gradients of [`Tensor::rms_norm`] with respect to input and gamma,
    /// given the forward input `self` and upstream `grad`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on malformed inputs.
    pub fn rms_norm_grad(&self, gamma: &Tensor, grad: &Tensor, eps: f32) -> Result<(Tensor, Tensor)> {
        let d = *self.shape().last().unwrap_or(&1);
        if gamma.shape() != [d] || grad.shape() != self.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "rms_norm_grad",
                lhs: self.shape().to_vec(),
                rhs: grad.shape().to_vec(),
            });
        }
        let mut dx = vec![0.0f32; self.volume()];
        let mut dgamma = vec![0.0f32; d];
        for (row, (grow, orow)) in self
            .data()
            .chunks(d)
            .zip(grad.data().chunks(d).zip(dx.chunks_mut(d)))
        {
            let ms = row.iter().map(|&x| x * x).sum::<f32>() / d as f32;
            let inv = 1.0 / (ms + eps).sqrt();
            // dL/dgamma_i += g_i · x_i · inv
            for i in 0..d {
                dgamma[i] += grow[i] * row[i] * inv;
            }
            // dL/dx_i = inv · gamma_i g_i − inv³/d · x_i · Σ_j gamma_j g_j x_j
            let dot: f32 = (0..d).map(|j| gamma.data()[j] * grow[j] * row[j]).sum();
            for i in 0..d {
                orow[i] = inv * gamma.data()[i] * grow[i] - inv.powi(3) / d as f32 * row[i] * dot;
            }
        }
        Ok((
            Tensor::from_vec(self.shape().to_vec(), dx)?,
            Tensor::from_vec(vec![d], dgamma)?,
        ))
    }
}

fn silu_scalar(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

fn silu_grad_scalar(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

#[cfg(test)]
mod modern_ops_tests {
    use super::*;

    #[test]
    fn silu_known_values() {
        let x = Tensor::from_vec(vec![3], vec![0.0, 1.0, -1.0]).unwrap();
        let y = x.silu();
        assert!((y.data()[0]).abs() < 1e-7);
        assert!((y.data()[1] - 0.7311).abs() < 1e-3);
        assert!((y.data()[2] + 0.2689).abs() < 1e-3);
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        for &x0 in &[-2.0f32, -0.5, 0.0, 0.7, 2.3] {
            let x = Tensor::scalar(x0);
            let g = x.silu_grad(&Tensor::scalar(1.0)).unwrap().data()[0];
            let eps = 1e-3;
            let num = (silu_scalar(x0 + eps) - silu_scalar(x0 - eps)) / (2.0 * eps);
            assert!((g - num).abs() < 1e-3, "x={x0}: {g} vs {num}");
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let gamma = Tensor::full(vec![4], 1.0);
        let y = x.rms_norm(&gamma, 0.0).unwrap();
        let ms: f32 = y.data().iter().map(|&v| v * v).sum::<f32>() / 4.0;
        assert!((ms - 1.0).abs() < 1e-5, "rms {ms}");
    }

    #[test]
    fn rms_norm_grad_matches_finite_difference() {
        let x = Tensor::from_vec(vec![1, 4], vec![0.5, -1.0, 2.0, 0.1]).unwrap();
        let gamma = Tensor::from_vec(vec![4], vec![1.1, 0.9, 1.0, 1.2]).unwrap();
        let g = Tensor::from_vec(vec![1, 4], vec![1.0, -0.5, 0.3, 0.7]).unwrap();
        let (dx, dgamma) = x.rms_norm_grad(&gamma, &g, 1e-6).unwrap();
        let loss = |xx: &Tensor, gm: &Tensor| -> f32 {
            xx.rms_norm(gm, 1e-6).unwrap().mul(&g).unwrap().sum()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &gamma) - loss(&xm, &gamma)) / (2.0 * eps);
            assert!((dx.data()[i] - num).abs() < 1e-2, "dx[{i}]: {} vs {num}", dx.data()[i]);

            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm2 = gamma.clone();
            gm2.data_mut()[i] -= eps;
            let num = (loss(&x, &gp) - loss(&x, &gm2)) / (2.0 * eps);
            assert!((dgamma.data()[i] - num).abs() < 1e-2);
        }
    }
}
