/// A tensor shape: the extent of each dimension.
///
/// `Shape` is a thin, cheap-to-clone wrapper over `Vec<usize>` that provides
/// the volume / stride helpers the kernels need.
///
/// # Example
///
/// ```
/// use lancet_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Scalar shape (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`. Panics if out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        stride_for(&self.0)
    }

    /// Returns a new shape with dimension `axis` replaced by `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn with_dim(&self, axis: usize, extent: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = extent;
        Shape(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Row-major strides for the given dimension extents.
///
/// ```
/// assert_eq!(lancet_tensor::stride_for(&[2, 3, 4]), vec![12, 4, 1]);
/// assert_eq!(lancet_tensor::stride_for(&[]), Vec::<usize>::new());
/// ```
pub fn stride_for(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(vec![4, 5]);
        assert_eq!(s.volume(), 20);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dim(1), 5);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![7]).strides(), vec![1]);
    }

    #[test]
    fn with_dim_replaces_extent() {
        let s = Shape::new(vec![2, 3]).with_dim(0, 9);
        assert_eq!(s.dims(), &[9, 3]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn zero_extent_volume_is_zero() {
        assert_eq!(Shape::new(vec![2, 0, 4]).volume(), 0);
    }
}
