//! The operator partition pass (paper §5).

mod axis;
mod codegen;
mod dp;

pub use axis::{infer_axes, AxisSolution, PartAxis};
pub use codegen::{apply_partitions, PartitionSpec};
pub use dp::{partition_pass, PartitionOptions, PartitionReport};
