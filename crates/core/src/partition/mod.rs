//! The operator partition pass (paper §5).
//!
//! Three stages, one per submodule:
//!
//! 1. Range selection ([`partition_pass`], `dp` module) chooses *which*
//!    instruction ranges to pipeline and into how many parts — a
//!    dynamic program over instruction groups, run by a parallel,
//!    memoized search engine sharing a [`PartitionMemo`].
//! 2. Axis inference ([`infer_axes`], `axis` module) decides *how* each
//!    tensor inside a candidate range splits — a constraint-propagation
//!    solver over per-op axis rules.
//! 3. Codegen ([`apply_partitions`], `codegen` module) rewrites the
//!    chosen ranges into software-pipelined chunk schedules.
//!
//! A fourth, optional stage ([`apply_tile_schedule`], `tile` module)
//! refines the result below partition granularity: uniform all-to-all →
//! expert-FFN → all-to-all segments are split into capacity tiles whose
//! exchanges hide inside the expert compute (the Comet direction).

mod axis;
mod codegen;
mod dp;
mod tile;

pub use axis::{infer_axes, AxisSolution, PartAxis};
pub use codegen::{apply_partitions, PartitionSpec};
pub use dp::{
    partition_pass, partition_pass_with, PartitionMemo, PartitionOptions, PartitionReport,
};
pub use tile::{apply_tile_schedule, TileReport, TileSchedule};
