//! Partition-axis inference (paper §5.2).
//!
//! For a candidate range of instructions, every tensor must be assigned a
//! partition axis such that each operator's constraint relation `F_Z`
//! admits the combination, tensors keep a single axis throughout the
//! pipeline, and boundary tensors are sliceable/reconstructible. The
//! domain follows the paper: not-partitioned, a real axis (batch for
//! token tensors, capacity for expert buffers), or the special irregular
//! axis `A_irr` for the capacity-passing MoE pipeline.
//!
//! Solved as a finite-domain CSP by constraint propagation with
//! backtracking ([`infer_axes`]): each op contributes its admissible
//! (input-axes, output-axes) combinations (the `combos` table — e.g. a
//! batch-split gate is only admissible for gate kinds that tolerate
//! partial batches, and the MoE gather never accepts the capacity axis),
//! weights are pinned replicated, and boundary tensors are restricted to
//! axes with a well-defined slice/concat. Infeasibility is a *result*,
//! not an error: the DP simply skips unpartitionable candidates, which is
//! how e.g. "BPR models only partition after the MoE layer" emerges
//! without a special case.
//!
//! `infer_axes` is a pure function of the graph and range; the search
//! engine in `dp` calls it from multiple worker threads and memoizes
//! whole-candidate evaluations around it.

use lancet_ir::{Graph, Op, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// A tensor's partition axis within a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartAxis {
    /// Replicated whole (weights).
    None,
    /// Split along the batch dimension (axis 0 of token-shaped tensors,
    /// proportional for flattened `(T,)` metadata).
    Batch,
    /// Split along the capacity dimension (axis 1 of `(E, C, M)` expert
    /// buffers) — the Tutel-style partition.
    Capacity,
    /// The paper's `A_irr`: irregularly partitioned MoE buffers whose
    /// per-expert extents are decided by gating at run time.
    Irregular,
}

/// A consistent axis assignment for every tensor a range touches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AxisSolution {
    /// Axis per tensor (covers in-range tensors and boundary tensors).
    pub axes: HashMap<TensorId, PartAxis>,
}

impl AxisSolution {
    /// The axis assigned to `t` ([`PartAxis::None`] when untouched).
    pub fn axis(&self, t: TensorId) -> PartAxis {
        self.axes.get(&t).copied().unwrap_or(PartAxis::None)
    }
}

use PartAxis::{Batch as B, Capacity as C, Irregular as I, None as N};

/// The constraint relation `F_Z` of each operator: every admissible
/// (input-axes, output-axes) combination.
fn combos(op: &Op) -> Vec<(Vec<PartAxis>, Vec<PartAxis>)> {
    match op {
        Op::MatMul { .. } | Op::BiasAdd => vec![(vec![B, N], vec![B])],
        Op::Add | Op::Mul => vec![
            (vec![B, B], vec![B]),
            (vec![C, C], vec![C]),
            (vec![I, I], vec![I]),
        ],
        Op::Scale { .. } | Op::Relu | Op::Gelu | Op::Silu | Op::Dropout { .. } => {
            vec![(vec![B], vec![B]), (vec![C], vec![C]), (vec![I], vec![I])]
        }
        Op::Softmax => vec![(vec![B], vec![B])],
        Op::LayerNorm { .. } => vec![(vec![B, N, N], vec![B])],
        Op::RmsNorm { .. } => vec![(vec![B, N], vec![B])],
        Op::Embedding => vec![(vec![N, B], vec![B])],
        Op::AttnScores { .. } | Op::AttnContext { .. } => vec![(vec![B, B], vec![B])],
        // Gates whose decision needs the whole batch admit no partition
        // (paper Fig. 4c): the range simply cannot contain them.
        Op::Gate { kind, .. } => {
            if kind.partitionable_before_moe() {
                vec![(vec![B, N], vec![B, B])]
            } else {
                vec![]
            }
        }
        Op::MoeDispatch { .. } => vec![(vec![B, B, B], vec![I])],
        // All-to-all and experts accept the capacity axis only when the
        // range covers just the all-to-all + experts (gather excluded),
        // and `A_irr` otherwise — the gather constraint below enforces
        // exactly the paper's rule.
        Op::AllToAll => vec![(vec![I], vec![I]), (vec![C], vec![C])],
        Op::ExpertsLayout { .. } | Op::ExpertsLayoutInv { .. } => {
            vec![(vec![I], vec![I]), (vec![C], vec![C])]
        }
        Op::BatchedMatMul { .. } => vec![(vec![I, N], vec![I]), (vec![C, N], vec![C])],
        // The gather only accepts the irregular axis, never capacity
        // (tokens of one capacity slice land at irregular output
        // locations — paper Fig. 5a).
        Op::MoeGather { .. } => vec![(vec![I, B, B], vec![B])],
        // Anything else (loss, backward ops, already-partitioned ops)
        // cannot join a pipeline.
        _ => vec![],
    }
}

/// Infers partition axes for `range`, or `None` when no consistent
/// assignment exists (the range is not partitionable).
///
/// # Example
///
/// ```
/// use lancet_core::{infer_axes, PartAxis};
/// use lancet_ir::{Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![4, 8, 16]);
/// let w = g.weight("w", vec![16, 16]);
/// let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
/// let _z = g.emit(Op::Gelu, &[y], Role::Forward)?;
/// let sol = infer_axes(&g, 0..2).expect("row-wise ops partition along batch");
/// assert_eq!(sol.axis(x), PartAxis::Batch);
/// assert_eq!(sol.axis(w), PartAxis::None);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn infer_axes(graph: &Graph, range: Range<usize>) -> Option<AxisSolution> {
    let instrs = &graph.instrs()[range.clone()];
    if instrs.is_empty() {
        return None;
    }
    let produced_in_range: HashSet<TensorId> =
        instrs.iter().flat_map(|i| i.outputs.iter().copied()).collect();
    let users = graph.user_positions();

    // Boundary validity, checked for every complete assignment the DFS
    // produces — an assignment that satisfies the per-op constraints but
    // leaves an unsliceable tensor on the range boundary forces the
    // search to backtrack into an alternative (e.g. capacity instead of
    // irregular for a Tutel-style range).
    let boundary_ok = |axes: &HashMap<TensorId, PartAxis>| -> bool {
        for instr in instrs {
            for &t in &instr.inputs {
                if produced_in_range.contains(&t) {
                    continue;
                }
                let kind = graph.tensor(t).kind;
                match (kind, axes.get(&t).copied().unwrap_or(N)) {
                    (TensorKind::Weight, N) => {}
                    (TensorKind::Weight, _) => return false,
                    (_, B | C) => {}
                    // Replicated non-weight boundary inputs (e.g. FSDP
                    // all-gathered weights) are consumed whole by every
                    // chunk — fine. Irregular tensors cannot cross.
                    (_, N) => {}
                    (_, _) => return false,
                }
            }
        }
        for instr in instrs {
            for &t in &instr.outputs {
                let used_outside = users
                    .get(&t)
                    .map(|ps| ps.iter().any(|&p| p >= range.end))
                    .unwrap_or(false);
                if used_outside && !matches!(axes.get(&t).copied().unwrap_or(N), B | C) {
                    return false;
                }
            }
        }
        true
    };

    let mut axes: HashMap<TensorId, PartAxis> = HashMap::new();
    if !solve(graph, instrs, 0, &mut axes, &boundary_ok) {
        return None;
    }
    Some(AxisSolution { axes })
}

/// Backtracking DFS over the range's instructions, trying each operator
/// combo and unifying tensor assignments.
fn solve(
    graph: &Graph,
    instrs: &[lancet_ir::Instr],
    idx: usize,
    axes: &mut HashMap<TensorId, PartAxis>,
    accept: &dyn Fn(&HashMap<TensorId, PartAxis>) -> bool,
) -> bool {
    let Some(instr) = instrs.get(idx) else { return accept(axes) };
    for (in_axes, out_axes) in combos(&instr.op) {
        if in_axes.len() != instr.inputs.len() || out_axes.len() != instr.outputs.len() {
            continue;
        }
        let mut trail: Vec<TensorId> = Vec::new();
        let mut ok = true;
        for (&t, &a) in instr.inputs.iter().zip(&in_axes).chain(instr.outputs.iter().zip(&out_axes)) {
            // Weights may only be replicated.
            if graph.tensor(t).kind == TensorKind::Weight && a != N {
                ok = false;
                break;
            }
            match axes.get(&t) {
                Some(&existing) if existing != a => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    axes.insert(t, a);
                    trail.push(t);
                }
            }
        }
        if ok && solve(graph, instrs, idx + 1, axes, accept) {
            return true;
        }
        for t in trail {
            axes.remove(&t);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{GateKind, Role};

    fn moe_graph(gate: GateKind) -> (Graph, Vec<TensorId>) {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let wg = g.weight("gate.w", vec![16, 4]);
        let w1 = g.weight("expert.w1", vec![2, 16, 32]);
        let w2 = g.weight("expert.w2", vec![2, 32, 16]);
        let gate_outs = g
            .emit_multi(Op::Gate { kind: gate, experts: 4, capacity: 16 }, &[x, wg], Role::Forward)
            .unwrap();
        let buf = g
            .emit(Op::MoeDispatch { experts: 4, capacity: 16 }, &[x, gate_outs[0], gate_outs[1]], Role::Forward)
            .unwrap();
        let t = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus: 2 }, &[t], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let back = g.emit(Op::ExpertsLayoutInv { gpus: 2 }, &[h], Role::Forward).unwrap();
        let back2 = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
        let y = g
            .emit(
                Op::MoeGather { experts: 4, capacity: 16, batch: 4, seq: 8 },
                &[back2, gate_outs[0], gate_outs[1]],
                Role::Forward,
            )
            .unwrap();
        let _out = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
        (g, vec![x, buf, t, y])
    }

    #[test]
    fn full_moe_pipeline_gets_irregular_axes() {
        let (g, ts) = moe_graph(GateKind::Switch);
        // Range = gate .. gather (positions 0..=10).
        let sol = infer_axes(&g, 0..11).expect("pipeline must be partitionable");
        assert_eq!(sol.axis(ts[0]), PartAxis::Batch); // x
        assert_eq!(sol.axis(ts[1]), PartAxis::Irregular); // dispatch buf
        assert_eq!(sol.axis(ts[3]), PartAxis::Batch); // gather output
    }

    #[test]
    fn tutel_style_range_uses_capacity() {
        let (g, ts) = moe_graph(GateKind::Switch);
        // Range = a2a .. a2a (positions 2..=8): dispatch & gather outside.
        let sol = infer_axes(&g, 2..9).expect("capacity partition must work");
        assert_eq!(sol.axis(ts[1]), PartAxis::Capacity); // buffer sliced at capacity
        assert_eq!(sol.axis(ts[2]), PartAxis::Capacity);
    }

    #[test]
    fn bpr_gate_blocks_ranges_containing_it() {
        let (g, _) = moe_graph(GateKind::BatchPrioritized);
        // Any range containing the gate is infeasible…
        assert!(infer_axes(&g, 0..11).is_none());
        // …but the range starting after the gate works (paper Fig. 4c).
        assert!(infer_axes(&g, 1..11).is_some());
    }

    #[test]
    fn range_splitting_pipeline_is_invalid() {
        let (g, _) = moe_graph(GateKind::Switch);
        // Dispatch inside but gather outside: the irregular buffer would
        // cross the boundary.
        assert!(infer_axes(&g, 0..5).is_none());
        // Gather without its dispatch: irregular boundary-in.
        assert!(infer_axes(&g, 9..11).is_none());
    }

    #[test]
    fn dense_ops_partition_along_batch() {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let gamma = g.weight("g", vec![16]);
        let beta = g.weight("b", vec![16]);
        let w = g.weight("w", vec![16, 16]);
        let xn = g.emit(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], Role::Forward).unwrap();
        let h = g.emit(Op::MatMul { transpose_b: false }, &[xn, w], Role::Forward).unwrap();
        let _r = g.emit(Op::Add, &[xn, h], Role::Forward).unwrap();
        let sol = infer_axes(&g, 0..3).unwrap();
        assert_eq!(sol.axis(x), PartAxis::Batch);
        assert_eq!(sol.axis(w), PartAxis::None);
    }

    #[test]
    fn loss_is_never_partitionable() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 4, 8]);
        let t = g.input("t", vec![2, 4]);
        let _ = g.emit_multi(Op::CrossEntropy, &[x, t], Role::Forward).unwrap();
        assert!(infer_axes(&g, 0..1).is_none());
    }

    #[test]
    fn attention_block_partitions() {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let wq = g.weight("wq", vec![16, 16]);
        let wk = g.weight("wk", vec![16, 16]);
        let wv = g.weight("wv", vec![16, 16]);
        let q = g.emit(Op::MatMul { transpose_b: false }, &[x, wq], Role::Forward).unwrap();
        let k = g.emit(Op::MatMul { transpose_b: false }, &[x, wk], Role::Forward).unwrap();
        let v = g.emit(Op::MatMul { transpose_b: false }, &[x, wv], Role::Forward).unwrap();
        let s = g.emit(Op::AttnScores { heads: 2, causal: true }, &[q, k], Role::Forward).unwrap();
        let p = g.emit(Op::Softmax, &[s], Role::Forward).unwrap();
        let _c = g.emit(Op::AttnContext { heads: 2 }, &[p, v], Role::Forward).unwrap();
        let sol = infer_axes(&g, 0..6).unwrap();
        assert_eq!(sol.axis(x), PartAxis::Batch);
        assert_eq!(sol.axis(s), PartAxis::Batch);
    }

    #[test]
    fn empty_range_is_invalid() {
        let (g, _) = moe_graph(GateKind::Switch);
        assert!(infer_axes(&g, 3..3).is_none());
    }
}
