//! Tile-granular compute–communication overlap (the Comet direction,
//! arXiv:2502.19811).
//!
//! The partition pass pipelines at whole-partition granularity: chunks of
//! the *batch* (or capacity) flow through dispatch → all-to-all → experts
//! → all-to-all → gather, and overlap happens *between* chunk stages. The
//! tile scheduler goes one level deeper: inside a single uniform
//! all-to-all → expert-FFN → all-to-all region it splits the transfer and
//! the expert GEMMs into `K` tiles along the **capacity axis** (dim 1 of
//! the `(E, C, M)` expert buffer) and emits the per-stream interleaved
//! order
//!
//! ```text
//! comm    | a2a₀ a2a₁ … a2aₖ   back₀      back₁      …
//! compute |      ffn₀ ──────── ffn₁ ───── ffn₂ …
//! ```
//!
//! so tile `k`'s exchange hides behind tile `k−1`'s expert compute — the
//! communication is hidden *inside* the operator, not between operators.
//!
//! **Bit-exactness.** Capacity-axis slicing commutes with every op the
//! scheduler tiles: the uniform all-to-all exchanges whole `(c·m)` row
//! blocks keyed by the expert axis only, `ExpertsLayout`/`Inv` pairs
//! cancel per tile, `BatchedMatMul` is row-wise with a fixed K-order
//! accumulation, and element-wise ops are trivially row-wise. The final
//! `Concat` along the capacity axis reassembles the exact rows of the
//! untiled buffer, so a tiled plan's executed forward is bit-identical to
//! the partition-level plan's — the contract `tests/overlap.rs` and the
//! `tile_props` property suite enforce over the model zoo.
//!
//! **What is not tiled.** Irregular (`AllToAllIrr`) pipelines carry
//! per-expert counts tensors whose row payloads are data-dependent;
//! slicing them would need count-splitting arithmetic that no IR op
//! expresses, so irregular segments are left at partition granularity and
//! reported in [`TileReport::skipped`]. Segments whose capacity extent
//! cannot host at least two tiles of [`TileSchedule::min_rows`] rows are
//! skipped the same way.

use lancet_ir::{Graph, Op, Result, Role, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};

/// Tile-granular overlap schedule: how many tiles to split each uniform
/// all-to-all → expert-FFN → all-to-all segment into.
///
/// Selected via [`LancetOptions::tile`](crate::LancetOptions::tile);
/// `None` (the default) keeps partition-level scheduling and produces
/// today's plans byte-for-byte. `tiles <= 1` is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSchedule {
    /// Number of tiles `K` each segment's capacity axis is split into.
    /// Per-segment the count is clamped to the capacity extent (and to
    /// `capacity / min_rows`), so any value is safe.
    pub tiles: usize,
    /// Minimum rows per tile: segments where `capacity / min_rows < 2`
    /// are left untiled (tiny exchanges are latency-bound and tiling
    /// them only multiplies per-message latency).
    pub min_rows: usize,
}

impl TileSchedule {
    /// A schedule splitting segments into `tiles` tiles (no row floor).
    pub fn new(tiles: usize) -> Self {
        TileSchedule { tiles, min_rows: 1 }
    }

    /// Sets the minimum rows per tile (builder style).
    pub fn with_min_rows(mut self, rows: usize) -> Self {
        self.min_rows = rows.max(1);
        self
    }

    /// Reads the schedule from the environment: `LANCET_TILE_COUNT`
    /// enables tiling when set to an integer ≥ 2, `LANCET_TILE_MIN_ROWS`
    /// (default 1) sets the per-tile row floor. Returns `None` — keep
    /// partition-level scheduling — when the count is unset, unparsable,
    /// or ≤ 1. See docs/CONFIG.md.
    pub fn from_env() -> Option<Self> {
        let tiles: usize = std::env::var("LANCET_TILE_COUNT").ok()?.trim().parse().ok()?;
        if tiles <= 1 {
            return None;
        }
        let min_rows = std::env::var("LANCET_TILE_MIN_ROWS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1usize);
        Some(TileSchedule { tiles, min_rows: min_rows.max(1) })
    }
}

/// What [`apply_tile_schedule`] did to a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileReport {
    /// Uniform all-to-all → expert → all-to-all segments tiled.
    pub segments: usize,
    /// All-to-all instructions left at partition granularity (irregular
    /// exchanges, non-expert regions, capacity extents too small).
    pub skipped: usize,
    /// The requested tile count `K`.
    pub tiles: usize,
    /// Net instructions added by the rewrite (slices, per-tile ops,
    /// concats, minus the replaced originals).
    pub ops_added: usize,
}

/// A detected tileable segment in the source graph.
struct Segment {
    /// Position of the entry (dispatch-direction) uniform all-to-all.
    entry: usize,
    /// Positions of the expert-region instructions, in program order.
    members: Vec<usize>,
    /// Position of the exit (combine-direction) uniform all-to-all.
    exit: usize,
    /// Capacity extent `C` of the entry buffer.
    cap: usize,
    /// Effective tile count for this segment (clamped to `C / min_rows`).
    tiles: usize,
}

/// Even-ish split of `extent` rows into `parts` tiles (earlier tiles take
/// the remainder), as (start, len) pairs — the same split rule the
/// partition codegen uses for chunk bounds.
fn tile_bounds(extent: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = extent / parts;
    let rem = extent % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Grows a tileable region from the uniform all-to-all at `entry`:
/// follows dataflow through capacity-row-wise expert ops until a uniform
/// all-to-all consumes a depth-0 region tensor, then checks the region is
/// dataflow-closed (no region tensor escapes to a non-member).
///
/// `depth` tracks `ExpertsLayout` nesting: slicing happened on the raw
/// `(E, C, M)` buffer (depth 0), layout ops fold the device axis into the
/// row axis (depth 1), and only row-wise ops are admitted at any depth —
/// which is what makes per-tile execution bit-identical.
fn grow_segment(src: &Graph, entry: usize, users: &HashMap<TensorId, Vec<usize>>) -> Option<(Vec<usize>, usize)> {
    let instrs = src.instrs();
    let entry_out = instrs[entry].outputs[0];
    let cap = src.tensor(instrs[entry].inputs[0]).shape.dim(1);
    let mut depth: HashMap<TensorId, usize> = HashMap::from([(entry_out, 0usize)]);
    let mut members: Vec<usize> = Vec::new();
    for (q, instr) in instrs.iter().enumerate().skip(entry + 1) {
        let in_depth = |t: &TensorId| depth.get(t).copied();
        if !instr.inputs.iter().any(|t| depth.contains_key(t)) {
            continue; // outside the region (e.g. another chunk's stage)
        }
        // Candidate exit: a uniform all-to-all consuming the raw buffer.
        if matches!(instr.op, Op::AllToAll)
            && instr.inputs.len() == 1
            && in_depth(&instr.inputs[0]) == Some(0)
        {
            if src.tensor(instr.inputs[0]).shape.dim(1) != cap {
                return None;
            }
            // Closure check: every region tensor's users are members (or
            // this exit) — nothing mid-segment escapes the rewrite.
            let member_set: HashSet<usize> = members.iter().copied().chain([q]).collect();
            for t in depth.keys() {
                if let Some(ps) = users.get(t) {
                    if ps.iter().any(|p| !member_set.contains(p)) {
                        return None;
                    }
                }
            }
            return Some((members, q));
        }
        // Otherwise the instruction must be a row-wise expert op with a
        // single output; anything else pins the segment at partition
        // granularity.
        if instr.outputs.len() != 1 {
            return None;
        }
        let d0 = in_depth(&instr.inputs[0]);
        let out_depth = match &instr.op {
            Op::ExpertsLayout { .. } => d0.map(|d| d + 1),
            Op::ExpertsLayoutInv { .. } => match d0 {
                Some(d) if d >= 1 => Some(d - 1),
                _ => None,
            },
            // Weight operand (and bias) must come from outside the region.
            Op::BatchedMatMul { .. } | Op::BiasAdd => {
                if instr.inputs.len() == 2 && !depth.contains_key(&instr.inputs[1]) {
                    d0
                } else {
                    None
                }
            }
            Op::Gelu | Op::Silu | Op::Relu | Op::Dropout { .. } | Op::Scale { .. } => d0,
            Op::Add | Op::Mul => match (d0, instr.inputs.get(1).and_then(in_depth)) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            _ => None,
        };
        match out_depth {
            Some(d) => {
                depth.insert(instr.outputs[0], d);
                members.push(q);
            }
            None => return None,
        }
    }
    None // ran off the end without a closing all-to-all
}

/// Finds every tileable segment under `sched`, returning the segments and
/// the count of all-to-all instructions left untiled.
fn find_segments(src: &Graph, sched: &TileSchedule) -> (Vec<Segment>, usize) {
    let users = src.user_positions();
    let mut claimed: HashSet<usize> = HashSet::new();
    let mut segments: Vec<Segment> = Vec::new();
    for (pos, instr) in src.instrs().iter().enumerate() {
        if claimed.contains(&pos) || !matches!(instr.op, Op::AllToAll) || instr.inputs.len() != 1 {
            continue;
        }
        let shape = &src.tensor(instr.inputs[0]).shape;
        if shape.dims().len() != 3 {
            continue;
        }
        let cap = shape.dim(1);
        let tiles = sched.tiles.min(cap / sched.min_rows.max(1));
        if tiles < 2 {
            continue;
        }
        if let Some((members, exit)) = grow_segment(src, pos, &users) {
            claimed.insert(pos);
            claimed.extend(members.iter().copied());
            claimed.insert(exit);
            segments.push(Segment { entry: pos, members, exit, cap, tiles });
        }
    }
    let a2a_total = src
        .instrs()
        .iter()
        .filter(|i| matches!(i.op, Op::AllToAll | Op::AllToAllIrr))
        .count();
    let skipped = a2a_total - 2 * segments.len();
    (segments, skipped)
}

/// Rewrites `src` with tile-granular overlap: every uniform all-to-all →
/// expert-FFN → all-to-all segment is split into `sched.tiles` capacity
/// tiles with the interleaved per-stream order described in the module
/// docs. Tensor ids are reassigned; look tensors up by name in the
/// result.
///
/// `tiles <= 1` (and graphs without tileable segments) return the source
/// graph unchanged — the exact partition-level schedule, op for op.
///
/// # Errors
///
/// Propagates shape-inference/validation failures from graph rebuild;
/// structurally this cannot fail on a valid source graph.
pub fn apply_tile_schedule(src: &Graph, sched: &TileSchedule) -> Result<(Graph, TileReport)> {
    if sched.tiles <= 1 {
        return Ok((src.clone(), TileReport { tiles: sched.tiles.max(1), ..TileReport::default() }));
    }
    let (segments, skipped) = find_segments(src, sched);
    if segments.is_empty() {
        return Ok((src.clone(), TileReport { tiles: sched.tiles, skipped, ..TileReport::default() }));
    }

    // Membership: position → (segment index, part within it).
    #[derive(Clone, Copy)]
    enum Part {
        Entry(usize),
        Middle(usize),
        Exit(usize),
    }
    let mut part: HashMap<usize, Part> = HashMap::new();
    for (s, seg) in segments.iter().enumerate() {
        part.insert(seg.entry, Part::Entry(s));
        for &m in &seg.members {
            part.insert(m, Part::Middle(s));
        }
        part.insert(seg.exit, Part::Exit(s));
    }

    let mut dst = Graph::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    for t in src.tensors() {
        if matches!(t.kind, TensorKind::Input | TensorKind::Weight) {
            let id = dst.add_tensor(t.name.clone(), t.shape.clone(), t.kind);
            remap.insert(t.id, id);
        }
    }
    // Per-segment (source tensor, tile) → rewritten tile tensor.
    let mut tile_maps: Vec<HashMap<(TensorId, usize), TensorId>> =
        vec![HashMap::new(); segments.len()];
    // Member positions deferred until the segment's exit, where they are
    // re-emitted tile-major (tile k's full chain, then its back-transfer)
    // so the two streams interleave as in the module-docs diagram.
    let mut deferred: Vec<Vec<usize>> = vec![Vec::new(); segments.len()];

    for (pos, instr) in src.instrs().iter().enumerate() {
        match part.get(&pos).copied() {
            None => {
                let inputs: Vec<TensorId> = instr.inputs.iter().map(|t| remap[t]).collect();
                let outs = dst.emit_multi(instr.op.clone(), &inputs, instr.role)?;
                for (&o, n) in instr.outputs.iter().zip(outs) {
                    remap.insert(o, n);
                }
            }
            Some(Part::Entry(s)) => {
                let seg = &segments[s];
                let xin = remap[&instr.inputs[0]];
                let bounds = tile_bounds(seg.cap, seg.tiles);
                // All K entry exchanges issue back to back on the comm
                // stream; each transfers only its tile's rows.
                let slices: Vec<TensorId> = bounds
                    .iter()
                    .map(|&(start, len)| {
                        dst.emit(
                            Op::Slice { axis: 1, start, end: start + len },
                            &[xin],
                            Role::Forward,
                        )
                    })
                    .collect::<Result<_>>()?;
                for (k, &sl) in slices.iter().enumerate() {
                    let t = dst.emit(Op::AllToAll, &[sl], instr.role)?;
                    tile_maps[s].insert((instr.outputs[0], k), t);
                }
            }
            Some(Part::Middle(s)) => deferred[s].push(pos),
            Some(Part::Exit(s)) => {
                let seg = &segments[s];
                let mut tiles_out = Vec::with_capacity(seg.tiles);
                for k in 0..seg.tiles {
                    for &m in &deferred[s] {
                        let mi = &src.instrs()[m];
                        let ins: Vec<TensorId> = mi
                            .inputs
                            .iter()
                            .map(|t| tile_maps[s].get(&(*t, k)).copied().unwrap_or_else(|| remap[t]))
                            .collect();
                        let outs = dst.emit_multi(mi.op.clone(), &ins, mi.role)?;
                        tile_maps[s].insert((mi.outputs[0], k), outs[0]);
                    }
                    // Tile k's combine-direction exchange issues as soon
                    // as its chain finishes, overlapping tile k+1's
                    // compute.
                    let buf = tile_maps[s][&(instr.inputs[0], k)];
                    let back = dst.emit(Op::AllToAll, &[buf], instr.role)?;
                    tiles_out.push(back);
                }
                let whole = dst.emit(Op::Concat { axis: 1 }, &tiles_out, Role::Forward)?;
                remap.insert(instr.outputs[0], whole);
            }
        }
    }
    dst.validate()?;
    let ops_added = dst.instrs().len() - src.instrs().len();
    Ok((
        dst,
        TileReport { segments: segments.len(), skipped, tiles: sched.tiles, ops_added },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{GateKind, Role};

    /// The canonical uniform MoE layer: dispatch → a2a → experts → a2a →
    /// gather, with a trailing op consuming the gather.
    fn uniform_moe(batch: usize, cap: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", vec![batch, 8, 16]);
        let wg = g.weight("gate.w", vec![16, 4]);
        let w1 = g.weight("expert.w1", vec![2, 16, 32]);
        let w2 = g.weight("expert.w2", vec![2, 32, 16]);
        let gate = g
            .emit_multi(Op::Gate { kind: GateKind::Switch, experts: 4, capacity: cap }, &[x, wg], Role::Forward)
            .unwrap();
        let buf = g
            .emit(Op::MoeDispatch { experts: 4, capacity: cap }, &[x, gate[0], gate[1]], Role::Forward)
            .unwrap();
        let t = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus: 2 }, &[t], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let back = g.emit(Op::ExpertsLayoutInv { gpus: 2 }, &[h], Role::Forward).unwrap();
        let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
        let y = g
            .emit(
                Op::MoeGather { experts: 4, capacity: cap, batch, seq: 8 },
                &[back, gate[0], gate[1]],
                Role::Forward,
            )
            .unwrap();
        let _ = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
        g
    }

    #[test]
    fn tiles_one_is_identity() {
        let g = uniform_moe(4, 16);
        let (out, report) = apply_tile_schedule(&g, &TileSchedule::new(1)).unwrap();
        assert_eq!(lancet_ir::to_text(&out), lancet_ir::to_text(&g));
        assert_eq!(report.segments, 0);
        assert_eq!(report.ops_added, 0);
    }

    #[test]
    fn uniform_segment_tiles_into_k_exchanges() {
        let g = uniform_moe(4, 16);
        for k in [2usize, 4, 8] {
            let (out, report) = apply_tile_schedule(&g, &TileSchedule::new(k)).unwrap();
            assert!(out.validate().is_ok());
            assert_eq!(report.segments, 1, "k={k}");
            assert_eq!(report.skipped, 0, "k={k}");
            let count = |pred: &dyn Fn(&Op) -> bool| out.instrs().iter().filter(|i| pred(&i.op)).count();
            // 2 uniform a2as become 2k tile exchanges.
            assert_eq!(count(&|o| matches!(o, Op::AllToAll)), 2 * k, "k={k}");
            assert_eq!(count(&|o| matches!(o, Op::Slice { axis: 1, .. })), k, "k={k}");
            assert_eq!(count(&|o| matches!(o, Op::Concat { axis: 1 })), 1, "k={k}");
            assert_eq!(count(&|o| matches!(o, Op::BatchedMatMul { .. })), 2 * k, "k={k}");
        }
    }

    #[test]
    fn interleaved_stream_order() {
        // The emitted order must pipeline: all K entry exchanges adjacent,
        // then tile 0's chain and its back-transfer *before* tile 1's
        // chain — tile k's combine overlaps tile k+1's compute.
        let g = uniform_moe(4, 16);
        let (out, _) = apply_tile_schedule(&g, &TileSchedule::new(2)).unwrap();
        let a2a: Vec<usize> = out
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.op, Op::AllToAll))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(a2a.len(), 4);
        assert_eq!(a2a[1], a2a[0] + 1, "entry exchanges issue back to back");
        let bmm: Vec<usize> = out
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.op, Op::BatchedMatMul { .. }))
            .map(|(p, _)| p)
            .collect();
        // back-transfer of tile 0 sits between tile 0's and tile 1's GEMMs.
        assert!(bmm[1] < a2a[2] && a2a[2] < bmm[2], "a2a {a2a:?} bmm {bmm:?}");
    }

    #[test]
    fn tile_count_clamps_to_capacity() {
        let g = uniform_moe(4, 4); // capacity 4 < requested 8 tiles
        let (out, report) = apply_tile_schedule(&g, &TileSchedule::new(8)).unwrap();
        assert_eq!(report.segments, 1);
        let n_a2a = out.instrs().iter().filter(|i| matches!(i.op, Op::AllToAll)).count();
        assert_eq!(n_a2a, 8, "clamped to 4 tiles × 2 directions");
    }

    #[test]
    fn min_rows_floor_skips_small_segments() {
        let g = uniform_moe(4, 4);
        let (out, report) =
            apply_tile_schedule(&g, &TileSchedule::new(4).with_min_rows(3)).unwrap();
        assert_eq!(report.segments, 0);
        assert_eq!(report.skipped, 2, "both uniform a2as stay untiled");
        assert_eq!(lancet_ir::to_text(&out), lancet_ir::to_text(&g));
    }

    #[test]
    fn irregular_pipeline_left_untouched() {
        // An irregular (counts-passing) pipeline has no uniform a2as; the
        // schedule must pass it through unchanged and report the skips.
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let wg = g.weight("gate.w", vec![16, 4]);
        let cap0 = g.emit(Op::Zeros { shape: vec![4] }, &[], Role::Forward).unwrap();
        let gate = g
            .emit_multi(
                Op::GateChunk { kind: GateKind::Switch, experts: 4, capacity: 16, parts: 1 },
                &[x, wg, cap0],
                Role::Forward,
            )
            .unwrap();
        let d = g
            .emit_multi(Op::MoeDispatchIrr { experts: 4, capacity: 16, parts: 1 }, &[x, gate[0], gate[1]], Role::Forward)
            .unwrap();
        let _ = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
        let (out, report) = apply_tile_schedule(&g, &TileSchedule::new(4)).unwrap();
        assert_eq!(report.segments, 0);
        assert_eq!(report.skipped, 1);
        assert_eq!(lancet_ir::to_text(&out), lancet_ir::to_text(&g));
    }

    #[test]
    fn env_round_trip() {
        // Serialized env access: no parallel test mutates these vars.
        std::env::remove_var("LANCET_TILE_COUNT");
        assert!(TileSchedule::from_env().is_none());
        std::env::set_var("LANCET_TILE_COUNT", "4");
        std::env::set_var("LANCET_TILE_MIN_ROWS", "2");
        let s = TileSchedule::from_env().expect("enabled");
        assert_eq!(s.tiles, 4);
        assert_eq!(s.min_rows, 2);
        std::env::set_var("LANCET_TILE_COUNT", "1");
        assert!(TileSchedule::from_env().is_none(), "K ≤ 1 keeps partition-level");
        std::env::remove_var("LANCET_TILE_COUNT");
        std::env::remove_var("LANCET_TILE_MIN_ROWS");
    }
}
