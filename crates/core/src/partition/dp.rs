//! Dynamic-programming partition-range selection (paper §5.1).
//!
//! # The search
//!
//! `T(n) = min_{i,k} { T(i) + P(i, n, k) }` over instruction *groups*:
//! consecutive non-MoE instructions are coalesced into time-balanced
//! groups (the paper's group-size knob γ), MoE-related instructions stay
//! atomic so candidate ranges can align exactly with pipeline boundaries.
//! `P` is evaluated by materializing the candidate pipeline (axis
//! inference + codegen) and pricing it with the estimator's two-stream
//! sweep — the pipeline scheduler of paper §5.3.
//!
//! # The search engine
//!
//! The paper reports this search dominating Lancet's compile time
//! (Fig. 15), and mitigates it with a cached profiler. This module goes
//! further, in two independent ways:
//!
//! * **Parallel candidate evaluation.** For a DP frontier `j`, the
//!   candidate costs `P(i, n, k)` for different `i` are independent: each
//!   builds its own scratch segment graph, so the frontier's candidates
//!   are priced concurrently by a small [`std::thread::scope`] worker
//!   pool ([`PartitionOptions::workers`]). Determinism is preserved
//!   because pricing is pure and the min-reduction happens sequentially
//!   in ascending `(i, k)` order — the parallel search selects exactly
//!   the ranges the sequential search selects, enforced by tests.
//! * **Structural memoization.** A [`PartitionMemo`] caches `P` by a
//!   content hash of the candidate segment (ops, shapes, boundary
//!   tensor kinds and escapes), the partition count `k`, and the device
//!   configuration — *not* by instruction positions. Transformer layers
//!   repeat, so the evaluations of layer 1 answer layers 2..L across DP
//!   frontiers, and — when the memo is shared via
//!   [`partition_pass_with`], as [`crate::Lancet`] does — across
//!   repeated `optimize` calls (ablation sweeps, figure regeneration).

use crate::partition::{apply_partitions, infer_axes, PartitionSpec};
use crate::{EstimateReport, TimeEstimator};
use lancet_ir::{Graph, Instr, Op, Result, TensorId, TensorKind};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Hyper-parameters of the partition pass (paper §6: ρ, γ, ι) plus the
/// search-engine knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOptions {
    /// ρ — maximum number of partitions per range (paper default 8).
    pub max_partitions: usize,
    /// γ-equivalent — number of groups each non-MoE instruction run is
    /// split into (paper: "5 groups between each MoE layer").
    pub groups_per_gap: usize,
    /// ι — maximum partition-range length, in groups.
    pub max_range_groups: usize,
    /// Worker threads pricing DP candidates concurrently. `0` defers to
    /// `LANCET_WORKERS` when set, else the machine's available
    /// parallelism (capped at 8) — the same resolution the tensor
    /// backend's thread pool uses, so one env var governs both. `1` runs
    /// the search sequentially on the calling thread. Any value produces
    /// bit-identical results — see the module docs.
    pub workers: usize,
    /// Whether to reuse structurally identical `P(i, n, k)` evaluations
    /// through the [`PartitionMemo`]. Disable only to benchmark the
    /// unmemoized search (e.g. `fig15_opt_time`).
    pub memoize: bool,
}

/// Multiplier on per-chunk compute overhead charged for the (equally
/// chunked) backward pass when the DP prices a candidate partition.
const BACKWARD_CHUNK_FACTOR: f64 = 2.0;

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_partitions: 8,
            groups_per_gap: 5,
            max_range_groups: 24,
            workers: 0,
            memoize: true,
        }
    }
}

impl PartitionOptions {
    /// The worker count `workers` resolves to on this machine:
    /// `LANCET_WORKERS` / available parallelism for `0`, via the shared
    /// resolution in [`lancet_tensor::pool`].
    pub fn effective_workers(&self) -> usize {
        lancet_tensor::pool::resolve_workers(self.workers)
    }
}

/// Outcome of the partition pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Chosen ranges (source-graph instruction positions) and partition
    /// counts.
    pub ranges: Vec<(Range<usize>, usize)>,
    /// DP-estimated execution time of the partitioned forward region.
    pub estimated_forward_time: f64,
    /// DP-estimated time of the unpartitioned forward region (baseline).
    pub unpartitioned_forward_time: f64,
    /// Number of `P(i, n, k)` pricings the DP requested (cached or not).
    pub evaluations: usize,
    /// Pricings answered by the structural memo table.
    pub memo_hits: usize,
    /// Pricings that had to materialize and estimate a pipeline.
    pub memo_misses: usize,
    /// Worker threads the search ran with.
    pub workers: usize,
}

impl PartitionReport {
    /// Fraction of pricings answered from the memo, in `[0, 1]`.
    pub fn memo_hit_ratio(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Structural cache of `P(i, n, k)` evaluations, shareable across
/// [`partition_pass_with`] calls (and threads).
///
/// Keys are content hashes of the candidate segment — see the module
/// docs. The value is `None` when the segment admits no `k`-way
/// partition (axis inference or codegen rejected it), so infeasibility
/// is remembered too.
#[derive(Debug, Default)]
pub struct PartitionMemo {
    table: RwLock<HashMap<u64, Option<EstimateReport>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PartitionMemo {
    /// An empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.table.read().expect("memo poisoned").len()
    }

    /// Whether the memo holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) over all passes sharing this memo.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Looks up `key`, or computes, records, and returns it via `eval`.
    /// The boolean is `true` on a cache hit.
    fn get_or_eval(
        &self,
        key: u64,
        eval: impl FnOnce() -> Result<Option<EstimateReport>>,
    ) -> Result<(Option<EstimateReport>, bool)> {
        if let Some(&cached) = self.table.read().expect("memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((cached, true));
        }
        let value = eval()?;
        self.table.write().expect("memo poisoned").insert(key, value);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((value, false))
    }
}

/// Runs the partition pass on a *forward* graph (apply before autodiff;
/// see crate docs) and returns the rewritten graph plus a report.
///
/// Uses a fresh [`PartitionMemo`], so memoization helps only within this
/// one search; use [`partition_pass_with`] (as [`crate::Lancet`] does) to
/// reuse evaluations across calls.
///
/// # Errors
///
/// Propagates estimator/codegen failures. A graph with no all-to-all in
/// its forward region is returned unchanged.
///
/// # Example
///
/// ```no_run
/// use lancet_core::{partition_pass, Lancet, LancetOptions, PartitionOptions};
/// use lancet_cost::ClusterSpec;
/// use lancet_ir::GateKind;
/// use lancet_models::{build_forward, GptMoeConfig};
///
/// let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
/// let forward = build_forward(&cfg)?.graph;
/// let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
/// let (pipelined, report) =
///     partition_pass(&forward, lancet.estimator(), &PartitionOptions::default())?;
/// println!("{} ranges pipelined", report.ranges.len());
/// # let _ = pipelined;
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn partition_pass(
    graph: &Graph,
    estimator: &TimeEstimator,
    opts: &PartitionOptions,
) -> Result<(Graph, PartitionReport)> {
    partition_pass_with(graph, estimator, opts, &PartitionMemo::new())
}

/// One DP candidate-evaluation unit: every `(i, k)` sharing a range
/// start `i` at the current frontier (the plain estimate is shared by
/// all its partition counts).
struct CandidateTask {
    i: usize,
    prange: Range<usize>,
}

/// Priced candidate costs for one task, in ascending `k` order.
struct CandidateCosts {
    i: usize,
    /// `(k, DP cost)` for every feasible candidate.
    costs: Vec<(usize, f64)>,
    requested: usize,
    hits: usize,
    misses: usize,
}

/// [`partition_pass`] with a caller-provided memo table, so structurally
/// repeated evaluations are shared across searches.
///
/// # Errors
///
/// Propagates estimator/codegen failures.
pub fn partition_pass_with(
    graph: &Graph,
    estimator: &TimeEstimator,
    opts: &PartitionOptions,
    memo: &PartitionMemo,
) -> Result<(Graph, PartitionReport)> {
    let fwd_end = forward_end(graph);
    let groups = build_groups(graph, estimator, fwd_end, opts.groups_per_gap)?;
    let n = groups.len();
    let workers = opts.effective_workers().max(1);

    // Candidate partition counts: 1 plus powers of two up to ρ.
    let mut ks = vec![1usize];
    let mut k = 2;
    while k <= opts.max_partitions {
        ks.push(k);
        k *= 2;
    }

    // Fingerprint of the pricing context: estimates depend on the device
    // and collective models, so memo entries must not leak across
    // clusters when a memo is shared that widely.
    let device_fp = {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}", estimator.profiler().model()).hash(&mut h);
        estimator.gpus().hash(&mut h);
        h.finish()
    };
    // `memoize: false` prices every candidate directly — the pre-engine
    // behavior, kept as the measurable baseline for `fig15_opt_time`.
    let memo = opts.memoize.then_some(memo);

    let mut evaluations = 0usize;
    let mut memo_hits = 0usize;
    let mut memo_misses = 0usize;
    let mut t = vec![f64::INFINITY; n + 1];
    t[0] = 0.0;
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n + 1];

    for j in 1..=n {
        let lo = j.saturating_sub(opts.max_range_groups);
        let tasks: Vec<CandidateTask> = (lo..j)
            .map(|i| CandidateTask { i, prange: groups[i].start..groups[j - 1].end })
            .collect();
        let priced = price_frontier(graph, estimator, memo, device_fp, &ks, tasks, workers)?;

        // Sequential min-reduction in ascending (i, k) order with a
        // strict `<`: ties resolve to the lowest (i, k), independent of
        // how many workers priced the candidates.
        for cand in priced {
            evaluations += cand.requested;
            memo_hits += cand.hits;
            memo_misses += cand.misses;
            for &(k, cost) in &cand.costs {
                if t[cand.i] + cost < t[j] {
                    t[j] = t[cand.i] + cost;
                    parent[j] = Some((cand.i, k));
                }
            }
        }
    }

    // Reconstruct chosen ranges.
    let mut chosen: Vec<(Range<usize>, usize)> = Vec::new();
    let mut j = n;
    while j > 0 {
        let (i, k) = parent[j].expect("dp table is connected");
        if k > 1 {
            chosen.push((groups[i].start..groups[j - 1].end, k));
        }
        j = i;
    }
    chosen.reverse();

    // Baseline: the whole forward region priced unpartitioned.
    let unpartitioned = if n > 0 {
        let (seg, _) = segment_graph(graph, groups[0].start..groups[n - 1].end)?;
        estimator.estimate(&seg)?.total
    } else {
        0.0
    };

    let specs: Vec<PartitionSpec> = chosen
        .iter()
        .map(|(range, k)| {
            let axes = infer_axes(graph, range.clone())
                .expect("range was validated during DP evaluation");
            PartitionSpec { range: range.clone(), parts: *k, axes }
        })
        .collect();
    let new_graph = if specs.is_empty() { graph.clone() } else { apply_partitions(graph, &specs)? };

    Ok((
        new_graph,
        PartitionReport {
            ranges: chosen,
            estimated_forward_time: t[n],
            unpartitioned_forward_time: unpartitioned,
            evaluations,
            memo_hits,
            memo_misses,
            workers,
        },
    ))
}

/// Prices every candidate task of one DP frontier, fanning the tasks out
/// over `workers` scoped threads (or inline when 1 suffices). Results
/// come back in task order; the first evaluation error (in task order)
/// is propagated.
fn price_frontier(
    graph: &Graph,
    estimator: &TimeEstimator,
    memo: Option<&PartitionMemo>,
    device_fp: u64,
    ks: &[usize],
    tasks: Vec<CandidateTask>,
    workers: usize,
) -> Result<Vec<CandidateCosts>> {
    let price = |task: &CandidateTask| price_candidates(graph, estimator, memo, device_fp, ks, task);
    let mut results: Vec<Option<Result<CandidateCosts>>> = Vec::new();
    if workers <= 1 || tasks.len() <= 1 {
        results.extend(tasks.iter().map(|t| Some(price(t))));
    } else {
        results.resize_with(tasks.len(), || None);
        let chunk = tasks.len().div_ceil(workers);
        let price = &price;
        std::thread::scope(|scope| {
            for (task_chunk, slot_chunk) in tasks.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, task) in slot_chunk.iter_mut().zip(task_chunk) {
                        *slot = Some(price(task));
                    }
                });
            }
        });
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every task chunk was priced"))
        .collect()
}

/// Prices `P(i, n, k)` for every `k` of one candidate range, through the
/// memo. Infeasible `k` are omitted from the result.
fn price_candidates(
    graph: &Graph,
    estimator: &TimeEstimator,
    memo: Option<&PartitionMemo>,
    device_fp: u64,
    ks: &[usize],
    task: &CandidateTask,
) -> Result<CandidateCosts> {
    let prange = task.prange.clone();
    // Fingerprinting costs a span walk; the unmemoized baseline skips it.
    let span_fp = memo.map(|_| segment_fingerprint(graph, &prange, device_fp)).unwrap_or(0);
    let mut out = CandidateCosts { i: task.i, costs: Vec::new(), requested: 0, hits: 0, misses: 0 };
    let mut lookup = |k: usize, eval: &dyn Fn() -> Result<Option<EstimateReport>>| {
        out.requested += 1;
        let Some(memo) = memo else {
            out.misses += 1;
            return eval();
        };
        let key = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            span_fp.hash(&mut h);
            k.hash(&mut h);
            h.finish()
        };
        let (value, hit) = memo.get_or_eval(key, eval)?;
        if hit {
            out.hits += 1;
        } else {
            out.misses += 1;
        }
        Ok::<_, lancet_ir::IrError>(value)
    };

    let plain = lookup(1, &|| {
        let (seg, _) = segment_graph(graph, prange.clone())?;
        estimator.estimate(&seg).map(Some)
    })?
    .expect("plain estimate is always feasible");
    out.costs.push((1, plain.total));

    // Partitioning a segment without an all-to-all can only add
    // overhead; skip those evaluations entirely.
    if segment_has_a2a(graph, &prange) {
        for &k in ks.iter().filter(|&&k| k > 1) {
            let part = lookup(k, &|| Ok(evaluate_partitioned(graph, estimator, prange.clone(), k)))?;
            if let Some(part) = part {
                // The backward of a partitioned forward is chunked the
                // same way (autodiff runs after this pass) and pays
                // roughly twice the forward's per-chunk overhead (dX and
                // dW), without the forward pipeline's overlap guarantee.
                // Charge it so the DP does not over-partition (paper
                // Fig. 6's tradeoff, extended to the whole iteration).
                let chunk_overhead = (part.compute_busy - plain.compute_busy).max(0.0);
                out.costs.push((k, part.total + BACKWARD_CHUNK_FACTOR * chunk_overhead));
            }
        }
    }
    Ok(out)
}

/// Content hash of a candidate segment: everything `P(i, n, k)` depends
/// on besides `k` — the ops, every input/output shape, boundary-tensor
/// kinds, which outputs escape the range, and the pricing context
/// (device fingerprint). Instruction *positions* are deliberately
/// excluded so structurally repeated layers share entries.
fn segment_fingerprint(graph: &Graph, range: &Range<usize>, device_fp: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    device_fp.hash(&mut h);
    let instrs = &graph.instrs()[range.clone()];
    let users = graph.user_positions();
    // Stable local ids for produced tensors so dataflow (not raw tensor
    // ids) is hashed.
    let mut local: HashMap<TensorId, usize> = HashMap::new();
    for instr in instrs {
        format!("{:?}", instr.op).hash(&mut h);
        instr.role.hash(&mut h);
        for &t in &instr.inputs {
            let def = graph.tensor(t);
            def.shape.dims().hash(&mut h);
            def.kind.hash(&mut h);
            match local.get(&t) {
                Some(&id) => (0u8, id).hash(&mut h),
                None => 1u8.hash(&mut h), // boundary input
            }
        }
        for &t in &instr.outputs {
            let def = graph.tensor(t);
            def.shape.dims().hash(&mut h);
            let id = local.len();
            local.insert(t, id);
            // Whether this output escapes the range constrains axis
            // inference (boundary tensors must stay sliceable).
            let escapes = users
                .get(&t)
                .map(|ps| ps.iter().any(|&p| p >= range.end))
                .unwrap_or(false);
            escapes.hash(&mut h);
        }
    }
    h.finish()
}

/// Position one past the last partitionable forward instruction (the
/// loss instruction, or the end of the program for forward-only graphs).
fn forward_end(graph: &Graph) -> usize {
    graph
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::CrossEntropy))
        .unwrap_or(graph.instrs().len())
}

/// Whether an op should stay atomic for grouping purposes (MoE pipeline
/// members must align with group boundaries).
fn is_atom(op: &Op) -> bool {
    matches!(
        op,
        Op::Gate { .. }
            | Op::MoeDispatch { .. }
            | Op::MoeGather { .. }
            | Op::AllToAll
            | Op::ExpertsLayout { .. }
            | Op::ExpertsLayoutInv { .. }
            | Op::BatchedMatMul { .. }
    )
}

/// Splits `[0, fwd_end)` into contiguous groups: MoE atoms are singleton
/// groups; runs of other instructions are split into `per_gap`
/// time-balanced groups.
#[allow(clippy::needless_range_loop)] // position-indexed time accumulation
fn build_groups(
    graph: &Graph,
    estimator: &TimeEstimator,
    fwd_end: usize,
    per_gap: usize,
) -> Result<Vec<Range<usize>>> {
    let mut groups = Vec::new();
    let mut run_start: Option<usize> = None;
    let flush_run =
        |groups: &mut Vec<Range<usize>>, start: usize, end: usize, times: &[f64]| {
            if start >= end {
                return;
            }
            let total: f64 = times[start..end].iter().sum();
            let target = total / per_gap.max(1) as f64;
            let mut acc = 0.0;
            let mut gstart = start;
            for p in start..end {
                acc += times[p];
                if acc >= target && p + 1 < end {
                    groups.push(gstart..p + 1);
                    gstart = p + 1;
                    acc = 0.0;
                }
            }
            groups.push(gstart..end);
        };
    let times: Vec<f64> = (0..fwd_end)
        .map(|p| estimator.instr_time(graph, p))
        .collect::<Result<_>>()?;
    for pos in 0..fwd_end {
        if is_atom(&graph.instrs()[pos].op) {
            if let Some(s) = run_start.take() {
                flush_run(&mut groups, s, pos, &times);
            }
            groups.push(pos..pos + 1);
        } else if run_start.is_none() {
            run_start = Some(pos);
        }
    }
    if let Some(s) = run_start {
        flush_run(&mut groups, s, fwd_end, &times);
    }
    Ok(groups)
}

/// Builds a standalone graph containing just `range`, with every
/// externally produced tensor declared as an input (weights keep their
/// kind so axis inference can treat them as replicated).
fn segment_graph(graph: &Graph, range: Range<usize>) -> Result<(Graph, HashMap<TensorId, TensorId>)> {
    let instrs: Vec<Instr> = graph.instrs()[range].to_vec();
    let mut seg = Graph::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    let produced: std::collections::HashSet<TensorId> =
        instrs.iter().flat_map(|i| i.outputs.iter().copied()).collect();
    for instr in &instrs {
        for &t in &instr.inputs {
            if !produced.contains(&t) && !remap.contains_key(&t) {
                let def = graph.tensor(t);
                let kind = if def.kind == TensorKind::Weight { TensorKind::Weight } else { TensorKind::Input };
                let id = seg.add_tensor(def.name.clone(), def.shape.clone(), kind);
                remap.insert(t, id);
            }
        }
        let inputs: Vec<TensorId> = instr.inputs.iter().map(|t| remap[t]).collect();
        let outs = seg.emit_multi(instr.op.clone(), &inputs, instr.role)?;
        for (&o, n) in instr.outputs.iter().zip(outs) {
            remap.insert(o, n);
        }
    }
    Ok((seg, remap))
}

fn segment_has_a2a(graph: &Graph, range: &Range<usize>) -> bool {
    graph.instrs()[range.clone()].iter().any(|i| i.op.is_all_to_all())
}

/// Prices `P(i, n, k)`: axis inference, codegen, estimated sweep.
/// `None` when the range is not partitionable into `k` parts.
fn evaluate_partitioned(
    graph: &Graph,
    estimator: &TimeEstimator,
    range: Range<usize>,
    k: usize,
) -> Option<EstimateReport> {
    // Infer axes on the *original* graph so boundary constraints include
    // consumers outside the segment, then map the solution into the
    // isolated segment for codegen and pricing.
    let sol = infer_axes(graph, range.clone())?;
    let (seg, remap) = segment_graph(graph, range).ok()?;
    let seg_axes = crate::AxisSolution {
        axes: sol
            .axes
            .iter()
            .filter_map(|(t, &a)| remap.get(t).map(|&n| (n, a)))
            .collect(),
    };
    let len = seg.instrs().len();
    let spec = PartitionSpec { range: 0..len, parts: k, axes: seg_axes };
    let part = apply_partitions(&seg, &[spec]).ok()?;
    estimator.estimate(&part).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_cost::{CachingOpProfiler, ClusterSpec, CommCostModel, CommModel, ComputeModel};
    use lancet_ir::GateKind;
    use lancet_models::{build_forward, GptMoeConfig};

    fn estimator(gpus: usize, nodes: usize) -> TimeEstimator {
        let spec = ClusterSpec::v100(nodes);
        let truth = CommModel::new(spec.clone());
        let a2a = CommCostModel::build(&truth, 1 << 30, gpus);
        TimeEstimator::new(
            CachingOpProfiler::new(ComputeModel::new(spec.device.clone())),
            a2a,
            truth,
            gpus,
        )
    }

    fn small_model(gate: GateKind, gpus: usize) -> Graph {
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, gate).with_layers(4).with_batch(8);
        build_forward(&cfg).unwrap().graph
    }

    #[test]
    fn groups_align_with_moe_atoms() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let fwd_end = forward_end(&g);
        let groups = build_groups(&g, &est, fwd_end, 5).unwrap();
        // Groups tile the region exactly.
        assert_eq!(groups[0].start, 0);
        assert_eq!(groups.last().unwrap().end, fwd_end);
        for w in groups.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Every all-to-all is its own group.
        for &p in &g.all_to_all_positions() {
            if p < fwd_end {
                assert!(groups.contains(&(p..p + 1)), "a2a at {p} not atomic");
            }
        }
    }

    #[test]
    fn partition_pass_chooses_ranges_and_improves_estimate() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(out.validate().is_ok());
        assert!(!report.ranges.is_empty(), "expected at least one partitioned range");
        assert!(
            report.estimated_forward_time < report.unpartitioned_forward_time,
            "{} !< {}",
            report.estimated_forward_time,
            report.unpartitioned_forward_time
        );
        assert!(report.evaluations > 0);
        // The result contains a partitioned pipeline: either the
        // irregular (batch) variant or the capacity variant — both
        // multiply the all-to-all count.
        let n_a2a_out = out.instrs().iter().filter(|i| i.op.is_all_to_all()).count();
        assert!(
            n_a2a_out > g.all_to_all_positions().len(),
            "no pipelined all-to-alls ({n_a2a_out})"
        );
    }

    #[test]
    fn bpr_model_partitions_after_moe_only() {
        let g = small_model(GateKind::BatchPrioritized, 16);
        let est = estimator(16, 2);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(out.validate().is_ok());
        // Gates must remain unpartitioned.
        assert!(!out.instrs().iter().any(|i| matches!(i.op, Op::GateChunk { .. })));
        // But partitioning still happens (dispatch onwards).
        assert!(!report.ranges.is_empty());
        for (range, _) in &report.ranges {
            // No chosen range contains a Gate op.
            assert!(
                !g.instrs()[range.clone()].iter().any(|i| matches!(i.op, Op::Gate { .. })),
                "range {range:?} contains the BPR gate"
            );
        }
    }

    #[test]
    fn dense_graph_stays_unchanged() {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let w = g.weight("w", vec![16, 16]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], lancet_ir::Role::Forward).unwrap();
        let _y = g.emit(Op::Gelu, &[h], lancet_ir::Role::Forward).unwrap();
        let est = estimator(8, 1);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(report.ranges.is_empty());
        assert_eq!(out.instrs().len(), g.instrs().len());
    }

    /// The determinism guarantee: any worker count returns bit-identical
    /// results (same ranges, same estimate) as the sequential search,
    /// memoized or not.
    #[test]
    fn parallel_search_matches_sequential() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let sequential = PartitionOptions { workers: 1, memoize: false, ..Default::default() };
        let (_, base) = partition_pass(&g, &est, &sequential).unwrap();
        for workers in [2, 4, 7] {
            for memoize in [false, true] {
                let opts = PartitionOptions { workers, memoize, ..Default::default() };
                let (out, report) = partition_pass(&g, &est, &opts).unwrap();
                assert_eq!(report.ranges, base.ranges, "workers={workers} memoize={memoize}");
                assert_eq!(
                    report.estimated_forward_time, base.estimated_forward_time,
                    "workers={workers} memoize={memoize}"
                );
                assert!(out.validate().is_ok());
            }
        }
    }

    /// Repeated transformer layers make the memo effective even within a
    /// single search, and a second search over the same graph is almost
    /// entirely cache hits.
    #[test]
    fn memo_reuses_repeated_layers_and_repeat_searches() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let memo = PartitionMemo::new();
        let opts = PartitionOptions::default();
        let (_, first) = partition_pass_with(&g, &est, &opts, &memo).unwrap();
        assert!(first.memo_hits > 0, "4 identical layers must share evaluations");
        assert!(first.memo_misses > 0);
        assert_eq!(first.memo_hits + first.memo_misses, first.evaluations);

        let (_, second) = partition_pass_with(&g, &est, &opts, &memo).unwrap();
        assert_eq!(second.ranges, first.ranges);
        assert_eq!(second.estimated_forward_time, first.estimated_forward_time);
        assert_eq!(second.memo_misses, 0, "second search must be fully cached");
        assert_eq!(second.memo_hits, second.evaluations);
        assert!(second.memo_hit_ratio() > 0.99);
    }

    /// Memo entries must not collide across device configurations.
    #[test]
    fn memo_distinguishes_clusters() {
        let g = small_model(GateKind::Switch, 16);
        let memo = PartitionMemo::new();
        let opts = PartitionOptions::default();
        let est_a = estimator(16, 2);
        let (_, first) = partition_pass_with(&g, &est_a, &opts, &memo).unwrap();
        // Same graph, different cluster: nothing may be answered from the
        // other cluster's entries.
        let est_b = estimator(32, 4);
        let (_, second) = partition_pass_with(&g, &est_b, &opts, &memo).unwrap();
        assert_eq!(second.memo_misses, first.memo_misses, "cross-cluster hits would be wrong");
    }

    #[test]
    fn estimator_and_memo_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<TimeEstimator>();
        assert_sync::<PartitionMemo>();
        assert_sync::<Graph>();
    }
}
