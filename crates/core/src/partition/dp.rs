//! Dynamic-programming partition-range selection (paper §5.1).
//!
//! `T(n) = min_{i,k} { T(i) + P(i, n, k) }` over instruction *groups*:
//! consecutive non-MoE instructions are coalesced into time-balanced
//! groups (the paper's group-size knob γ), MoE-related instructions stay
//! atomic so candidate ranges can align exactly with pipeline boundaries.
//! `P` is evaluated by materializing the candidate pipeline (axis
//! inference + codegen) and pricing it with the estimator's two-stream
//! sweep — the pipeline scheduler of paper §5.3.

use crate::partition::{apply_partitions, infer_axes, PartitionSpec};
use crate::TimeEstimator;
use lancet_ir::{Graph, Instr, Op, Result, TensorId, TensorKind};
use std::collections::HashMap;
use std::ops::Range;

/// Hyper-parameters of the partition pass (paper §6: ρ, γ, ι).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOptions {
    /// ρ — maximum number of partitions per range (paper default 8).
    pub max_partitions: usize,
    /// γ-equivalent — number of groups each non-MoE instruction run is
    /// split into (paper: "5 groups between each MoE layer").
    pub groups_per_gap: usize,
    /// ι — maximum partition-range length, in groups.
    pub max_range_groups: usize,
}

/// Multiplier on per-chunk compute overhead charged for the (equally
/// chunked) backward pass when the DP prices a candidate partition.
const BACKWARD_CHUNK_FACTOR: f64 = 2.0;

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { max_partitions: 8, groups_per_gap: 5, max_range_groups: 24 }
    }
}

/// Outcome of the partition pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Chosen ranges (source-graph instruction positions) and partition
    /// counts.
    pub ranges: Vec<(Range<usize>, usize)>,
    /// DP-estimated execution time of the partitioned forward region.
    pub estimated_forward_time: f64,
    /// DP-estimated time of the unpartitioned forward region (baseline).
    pub unpartitioned_forward_time: f64,
    /// Number of `P(i, n, k)` evaluations performed.
    pub evaluations: usize,
}

/// Runs the partition pass on a *forward* graph (apply before autodiff;
/// see crate docs) and returns the rewritten graph plus a report.
///
/// # Errors
///
/// Propagates estimator/codegen failures. A graph with no all-to-all in
/// its forward region is returned unchanged.
///
/// # Example
///
/// ```no_run
/// use lancet_core::{partition_pass, Lancet, LancetOptions, PartitionOptions};
/// use lancet_cost::ClusterSpec;
/// use lancet_ir::GateKind;
/// use lancet_models::{build_forward, GptMoeConfig};
///
/// let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
/// let forward = build_forward(&cfg)?.graph;
/// let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
/// let (pipelined, report) =
///     partition_pass(&forward, lancet.estimator(), &PartitionOptions::default())?;
/// println!("{} ranges pipelined", report.ranges.len());
/// # let _ = pipelined;
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn partition_pass(
    graph: &Graph,
    estimator: &TimeEstimator,
    opts: &PartitionOptions,
) -> Result<(Graph, PartitionReport)> {
    let fwd_end = forward_end(graph);
    let groups = build_groups(graph, estimator, fwd_end, opts.groups_per_gap)?;
    let n = groups.len();

    // Candidate partition counts: 1 plus powers of two up to ρ.
    let mut ks = vec![1usize];
    let mut k = 2;
    while k <= opts.max_partitions {
        ks.push(k);
        k *= 2;
    }

    let mut evaluations = 0usize;
    // Memoized per-(i,j) segment graphs are cheap enough to rebuild; the
    // op profiler underneath caches per-shape times.
    let mut t = vec![f64::INFINITY; n + 1];
    t[0] = 0.0;
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n + 1];
    let mut plain_cost: HashMap<(usize, usize), crate::EstimateReport> = HashMap::new();

    for j in 1..=n {
        let lo = j.saturating_sub(opts.max_range_groups);
        for i in lo..j {
            let prange = groups[i].start..groups[j - 1].end;
            let plain = *match plain_cost.entry((i, j)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    evaluations += 1;
                    let (seg, _) = segment_graph(graph, prange.clone())?;
                    e.insert(estimator.estimate(&seg)?)
                }
            };
            for &k in &ks {
                let cost = if k == 1 {
                    plain.total
                } else {
                    // Partitioning a segment without an all-to-all can
                    // only add overhead; skip the evaluation.
                    if !segment_has_a2a(graph, &prange) {
                        continue;
                    }
                    evaluations += 1;
                    match evaluate_partitioned(graph, estimator, prange.clone(), k) {
                        Some(part) => {
                            // The backward of a partitioned forward is
                            // chunked the same way (autodiff runs after
                            // this pass) and pays roughly twice the
                            // forward's per-chunk overhead (dX and dW),
                            // without the forward pipeline's overlap
                            // guarantee. Charge it so the DP does not
                            // over-partition (paper Fig. 6's tradeoff,
                            // extended to the whole iteration).
                            let chunk_overhead =
                                (part.compute_busy - plain.compute_busy).max(0.0);
                            part.total + BACKWARD_CHUNK_FACTOR * chunk_overhead
                        }
                        None => continue,
                    }
                };
                if t[i] + cost < t[j] {
                    t[j] = t[i] + cost;
                    parent[j] = Some((i, k));
                }
            }
        }
    }

    // Reconstruct chosen ranges.
    let mut chosen: Vec<(Range<usize>, usize)> = Vec::new();
    let mut j = n;
    while j > 0 {
        let (i, k) = parent[j].expect("dp table is connected");
        if k > 1 {
            chosen.push((groups[i].start..groups[j - 1].end, k));
        }
        j = i;
    }
    chosen.reverse();

    // Baseline: the whole forward region priced unpartitioned.
    let unpartitioned = if n > 0 {
        let (seg, _) = segment_graph(graph, groups[0].start..groups[n - 1].end)?;
        estimator.estimate(&seg)?.total
    } else {
        0.0
    };

    let specs: Vec<PartitionSpec> = chosen
        .iter()
        .map(|(range, k)| {
            let axes = infer_axes(graph, range.clone())
                .expect("range was validated during DP evaluation");
            PartitionSpec { range: range.clone(), parts: *k, axes }
        })
        .collect();
    let new_graph = if specs.is_empty() { graph.clone() } else { apply_partitions(graph, &specs)? };

    Ok((
        new_graph,
        PartitionReport {
            ranges: chosen,
            estimated_forward_time: t[n],
            unpartitioned_forward_time: unpartitioned,
            evaluations,
        },
    ))
}

/// Position one past the last partitionable forward instruction (the
/// loss instruction, or the end of the program for forward-only graphs).
fn forward_end(graph: &Graph) -> usize {
    graph
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::CrossEntropy))
        .unwrap_or(graph.instrs().len())
}

/// Whether an op should stay atomic for grouping purposes (MoE pipeline
/// members must align with group boundaries).
fn is_atom(op: &Op) -> bool {
    matches!(
        op,
        Op::Gate { .. }
            | Op::MoeDispatch { .. }
            | Op::MoeGather { .. }
            | Op::AllToAll
            | Op::ExpertsLayout { .. }
            | Op::ExpertsLayoutInv { .. }
            | Op::BatchedMatMul { .. }
    )
}

/// Splits `[0, fwd_end)` into contiguous groups: MoE atoms are singleton
/// groups; runs of other instructions are split into `per_gap`
/// time-balanced groups.
#[allow(clippy::needless_range_loop)] // position-indexed time accumulation
fn build_groups(
    graph: &Graph,
    estimator: &TimeEstimator,
    fwd_end: usize,
    per_gap: usize,
) -> Result<Vec<Range<usize>>> {
    let mut groups = Vec::new();
    let mut run_start: Option<usize> = None;
    let flush_run =
        |groups: &mut Vec<Range<usize>>, start: usize, end: usize, times: &[f64]| {
            if start >= end {
                return;
            }
            let total: f64 = times[start..end].iter().sum();
            let target = total / per_gap.max(1) as f64;
            let mut acc = 0.0;
            let mut gstart = start;
            for p in start..end {
                acc += times[p];
                if acc >= target && p + 1 < end {
                    groups.push(gstart..p + 1);
                    gstart = p + 1;
                    acc = 0.0;
                }
            }
            groups.push(gstart..end);
        };
    let times: Vec<f64> = (0..fwd_end)
        .map(|p| estimator.instr_time(graph, p))
        .collect::<Result<_>>()?;
    for pos in 0..fwd_end {
        if is_atom(&graph.instrs()[pos].op) {
            if let Some(s) = run_start.take() {
                flush_run(&mut groups, s, pos, &times);
            }
            groups.push(pos..pos + 1);
        } else if run_start.is_none() {
            run_start = Some(pos);
        }
    }
    if let Some(s) = run_start {
        flush_run(&mut groups, s, fwd_end, &times);
    }
    Ok(groups)
}

/// Builds a standalone graph containing just `range`, with every
/// externally produced tensor declared as an input (weights keep their
/// kind so axis inference can treat them as replicated).
fn segment_graph(graph: &Graph, range: Range<usize>) -> Result<(Graph, HashMap<TensorId, TensorId>)> {
    let instrs: Vec<Instr> = graph.instrs()[range].to_vec();
    let mut seg = Graph::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    let produced: std::collections::HashSet<TensorId> =
        instrs.iter().flat_map(|i| i.outputs.iter().copied()).collect();
    for instr in &instrs {
        for &t in &instr.inputs {
            if !produced.contains(&t) && !remap.contains_key(&t) {
                let def = graph.tensor(t);
                let kind = if def.kind == TensorKind::Weight { TensorKind::Weight } else { TensorKind::Input };
                let id = seg.add_tensor(def.name.clone(), def.shape.clone(), kind);
                remap.insert(t, id);
            }
        }
        let inputs: Vec<TensorId> = instr.inputs.iter().map(|t| remap[t]).collect();
        let outs = seg.emit_multi(instr.op.clone(), &inputs, instr.role)?;
        for (&o, n) in instr.outputs.iter().zip(outs) {
            remap.insert(o, n);
        }
    }
    Ok((seg, remap))
}

fn segment_has_a2a(graph: &Graph, range: &Range<usize>) -> bool {
    graph.instrs()[range.clone()].iter().any(|i| i.op.is_all_to_all())
}

/// Prices `P(i, n, k)`: axis inference, codegen, estimated sweep.
/// `None` when the range is not partitionable into `k` parts.
fn evaluate_partitioned(
    graph: &Graph,
    estimator: &TimeEstimator,
    range: Range<usize>,
    k: usize,
) -> Option<crate::EstimateReport> {
    // Infer axes on the *original* graph so boundary constraints include
    // consumers outside the segment, then map the solution into the
    // isolated segment for codegen and pricing.
    let sol = infer_axes(graph, range.clone())?;
    let (seg, remap) = segment_graph(graph, range).ok()?;
    let seg_axes = crate::AxisSolution {
        axes: sol
            .axes
            .iter()
            .filter_map(|(t, &a)| remap.get(t).map(|&n| (n, a)))
            .collect(),
    };
    let len = seg.instrs().len();
    let spec = PartitionSpec { range: 0..len, parts: k, axes: seg_axes };
    let part = apply_partitions(&seg, &[spec]).ok()?;
    estimator.estimate(&part).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_cost::{CachingOpProfiler, ClusterSpec, CommCostModel, CommModel, ComputeModel};
    use lancet_ir::GateKind;
    use lancet_models::{build_forward, GptMoeConfig};

    fn estimator(gpus: usize, nodes: usize) -> TimeEstimator {
        let spec = ClusterSpec::v100(nodes);
        let truth = CommModel::new(spec.clone());
        let a2a = CommCostModel::build(&truth, 1 << 30, gpus);
        TimeEstimator::new(
            CachingOpProfiler::new(ComputeModel::new(spec.device.clone())),
            a2a,
            truth,
            gpus,
        )
    }

    fn small_model(gate: GateKind, gpus: usize) -> Graph {
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, gate).with_layers(4).with_batch(8);
        build_forward(&cfg).unwrap().graph
    }

    #[test]
    fn groups_align_with_moe_atoms() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let fwd_end = forward_end(&g);
        let groups = build_groups(&g, &est, fwd_end, 5).unwrap();
        // Groups tile the region exactly.
        assert_eq!(groups[0].start, 0);
        assert_eq!(groups.last().unwrap().end, fwd_end);
        for w in groups.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Every all-to-all is its own group.
        for &p in &g.all_to_all_positions() {
            if p < fwd_end {
                assert!(groups.contains(&(p..p + 1)), "a2a at {p} not atomic");
            }
        }
    }

    #[test]
    fn partition_pass_chooses_ranges_and_improves_estimate() {
        let g = small_model(GateKind::Switch, 16);
        let est = estimator(16, 2);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(out.validate().is_ok());
        assert!(!report.ranges.is_empty(), "expected at least one partitioned range");
        assert!(
            report.estimated_forward_time < report.unpartitioned_forward_time,
            "{} !< {}",
            report.estimated_forward_time,
            report.unpartitioned_forward_time
        );
        assert!(report.evaluations > 0);
        // The result contains a partitioned pipeline: either the
        // irregular (batch) variant or the capacity variant — both
        // multiply the all-to-all count.
        let n_a2a_out = out.instrs().iter().filter(|i| i.op.is_all_to_all()).count();
        assert!(
            n_a2a_out > g.all_to_all_positions().len(),
            "no pipelined all-to-alls ({n_a2a_out})"
        );
    }

    #[test]
    fn bpr_model_partitions_after_moe_only() {
        let g = small_model(GateKind::BatchPrioritized, 16);
        let est = estimator(16, 2);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(out.validate().is_ok());
        // Gates must remain unpartitioned.
        assert!(!out.instrs().iter().any(|i| matches!(i.op, Op::GateChunk { .. })));
        // But partitioning still happens (dispatch onwards).
        assert!(!report.ranges.is_empty());
        for (range, _) in &report.ranges {
            // No chosen range contains a Gate op.
            assert!(
                !g.instrs()[range.clone()].iter().any(|i| matches!(i.op, Op::Gate { .. })),
                "range {range:?} contains the BPR gate"
            );
        }
    }

    #[test]
    fn dense_graph_stays_unchanged() {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8, 16]);
        let w = g.weight("w", vec![16, 16]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], lancet_ir::Role::Forward).unwrap();
        let _y = g.emit(Op::Gelu, &[h], lancet_ir::Role::Forward).unwrap();
        let est = estimator(8, 1);
        let (out, report) = partition_pass(&g, &est, &PartitionOptions::default()).unwrap();
        assert!(report.ranges.is_empty());
        assert_eq!(out.instrs().len(), g.instrs().len());
    }
}
