//! Partitioned-pipeline code generation (paper Figs. 8b and 9).
//!
//! Given a range, a partition count, and an axis solution, rewrites the
//! range into `k` pipelined chunks: boundary tensors are sliced on entry
//! and concatenated on exit, gates become capacity-passing chunk gates,
//! dispatch/all-to-all/gather become their irregular variants, and the
//! chunk instructions are emitted in *stage-major* order (all partitions
//! of stage 0, then stage 1, …) so the two-stream execution naturally
//! forms the computation-communication pipeline of paper Fig. 9.
//!
//! [`apply_partitions`] is the single entry point; it is called twice per
//! DP run — once per candidate evaluation on an isolated segment graph
//! (where its cost is the reason candidate pricing is worth memoizing,
//! see the `dp` module), and once at the end on the real graph for each
//! chosen range. Like axis inference it is a pure function of its
//! inputs, which is what lets the search engine share one immutable
//! source graph across worker threads.

use crate::{AxisSolution, PartAxis};
use lancet_ir::{Graph, Instr, IrError, Op, Result, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// One range to partition.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Instruction positions to pipeline (in the source graph).
    pub range: Range<usize>,
    /// Number of chunks `k`.
    pub parts: usize,
    /// The axis assignment from [`infer_axes`](crate::infer_axes).
    pub axes: AxisSolution,
}

/// Rewrites `src`, replacing each spec'd range with its partitioned
/// pipeline. Specs must be sorted by position and disjoint.
///
/// Tensor ids are reassigned; look tensors up by name in the result.
///
/// # Errors
///
/// Returns [`IrError::InvalidTransform`] for overlapping/unsorted specs or
/// infeasible partition counts, and propagates shape-inference errors.
pub fn apply_partitions(src: &Graph, specs: &[PartitionSpec]) -> Result<Graph> {
    for w in specs.windows(2) {
        if w[1].range.start < w[0].range.end {
            return Err(IrError::InvalidTransform("partition specs must be sorted and disjoint".into()));
        }
    }
    let mut dst = Graph::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    // Re-declare inputs and weights up front.
    for t in src.tensors() {
        if matches!(t.kind, TensorKind::Input | TensorKind::Weight) {
            let id = dst.add_tensor(t.name.clone(), t.shape.clone(), t.kind);
            remap.insert(t.id, id);
        }
    }
    let users = src.user_positions();
    let mut pos = 0usize;
    for spec in specs {
        replay_plain(src, &mut dst, &mut remap, pos..spec.range.start)?;
        emit_range(src, &mut dst, &mut remap, spec, &users)?;
        pos = spec.range.end;
    }
    replay_plain(src, &mut dst, &mut remap, pos..src.instrs().len())?;
    dst.validate()?;
    Ok(dst)
}

fn replay_plain(src: &Graph, dst: &mut Graph, remap: &mut HashMap<TensorId, TensorId>, range: Range<usize>) -> Result<()> {
    for instr in &src.instrs()[range] {
        let inputs: Vec<TensorId> = instr.inputs.iter().map(|t| remap[t]).collect();
        let outs = dst.emit_multi(instr.op.clone(), &inputs, instr.role)?;
        for (&o, n) in instr.outputs.iter().zip(outs) {
            remap.insert(o, n);
        }
    }
    Ok(())
}

/// Even-ish split of `extent` into `parts` (earlier chunks take the
/// remainder), returned as (start, len) pairs.
fn chunk_bounds(extent: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = extent / parts;
    let rem = extent % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push((start, len));
        start += len;
    }
    out
}

fn emit_range(
    src: &Graph,
    dst: &mut Graph,
    remap: &mut HashMap<TensorId, TensorId>,
    spec: &PartitionSpec,
    users: &HashMap<TensorId, Vec<usize>>,
) -> Result<()> {
    let range = spec.range.clone();
    let parts = spec.parts;
    let axes = &spec.axes;
    let instrs: Vec<Instr> = src.instrs()[range.clone()].to_vec();
    let produced: HashSet<TensorId> = instrs.iter().flat_map(|i| i.outputs.iter().copied()).collect();

    // Classify boundary tensors.
    let mut boundary_in: Vec<TensorId> = Vec::new();
    let mut seen = HashSet::new();
    for instr in &instrs {
        for &t in &instr.inputs {
            if !produced.contains(&t) && seen.insert(t) {
                boundary_in.push(t);
            }
        }
    }
    let mut boundary_out: Vec<TensorId> = Vec::new();
    for instr in &instrs {
        for &t in &instr.outputs {
            let outside = users.get(&t).map(|ps| ps.iter().any(|&p| p >= range.end)).unwrap_or(false);
            if outside {
                boundary_out.push(t);
            }
        }
    }

    // Reference extents for the batch and capacity axes.
    let batch_ref = boundary_in
        .iter()
        .filter(|&&t| axes.axis(t) == PartAxis::Batch)
        .map(|&t| src.tensor(t).shape.dim(0))
        .min();
    let cap_ref = boundary_in
        .iter()
        .filter(|&&t| axes.axis(t) == PartAxis::Capacity)
        .map(|&t| src.tensor(t).shape.dim(1))
        .min();
    let any_batch = axes.axes.values().any(|&a| a == PartAxis::Batch);
    if any_batch && batch_ref.is_none() {
        return Err(IrError::InvalidTransform("batch-partitioned range without batch boundary input".into()));
    }
    if let Some(b) = batch_ref {
        if parts > b {
            return Err(IrError::InvalidTransform(format!("{parts} parts > batch extent {b}")));
        }
    }
    if let Some(c) = cap_ref {
        if parts > c {
            return Err(IrError::InvalidTransform(format!("{parts} parts > capacity extent {c}")));
        }
    }
    // All capacity boundary tensors must be raw (E, C, M) buffers.
    for &t in boundary_in.iter().chain(&boundary_out) {
        if axes.axis(t) == PartAxis::Capacity && Some(src.tensor(t).shape.dim(1)) != cap_ref {
            return Err(IrError::InvalidTransform("capacity boundary tensor is not a raw expert buffer".into()));
        }
    }
    let batch_chunks = batch_ref.map(|b| chunk_bounds(b, parts));
    let cap_chunks = cap_ref.map(|c| chunk_bounds(c, parts));

    // Slice bounds for a boundary tensor on chunk p.
    let slice_of = |t: TensorId, p: usize| -> Result<(usize, usize, usize)> {
        let shape = &src.tensor(t).shape;
        match axes.axis(t) {
            PartAxis::Batch => {
                let b = batch_ref.expect("checked above");
                let d0 = shape.dim(0);
                if !d0.is_multiple_of(b) {
                    return Err(IrError::InvalidTransform(format!(
                        "batch tensor extent {d0} not a multiple of batch {b}"
                    )));
                }
                let scale = d0 / b;
                let (s, l) = batch_chunks.as_ref().expect("batch ref present")[p];
                Ok((0, s * scale, l * scale))
            }
            PartAxis::Capacity => {
                let (s, l) = cap_chunks.as_ref().expect("cap ref present")[p];
                Ok((1, s, l))
            }
            _ => Err(IrError::InvalidTransform("unsliceable boundary tensor".into())),
        }
    };

    // Pre-slice boundary inputs.
    let mut chunk_map: HashMap<(TensorId, usize), TensorId> = HashMap::new();
    for &t in &boundary_in {
        match axes.axis(t) {
            PartAxis::None => {} // weights: resolved through remap directly
            _ => {
                for p in 0..parts {
                    let (axis, start, len) = slice_of(t, p)?;
                    let sliced = dst.emit(
                        Op::Slice { axis, start, end: start + len },
                        &[remap[&t]],
                        src.instrs()[range.start].role,
                    )?;
                    chunk_map.insert((t, p), sliced);
                }
            }
        }
    }

    // Capacity-state chains, one per gate instruction in the range.
    let mut cap_state: HashMap<usize, TensorId> = HashMap::new();
    for (local, instr) in instrs.iter().enumerate() {
        if let Op::Gate { experts, .. } = instr.op {
            let zeros = dst.emit(Op::Zeros { shape: vec![experts] }, &[], instr.role)?;
            cap_state.insert(local, zeros);
        }
    }

    // Stage decomposition: maximal runs of same-stream instructions.
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for (local, instr) in instrs.iter().enumerate() {
        let is_comm = instr.op.is_comm();
        match stages.last() {
            Some(stage) if instrs[stage[0]].op.is_comm() == is_comm => {
                stages.last_mut().expect("non-empty").push(local);
            }
            _ => stages.push(vec![local]),
        }
    }

    // Counts-tensor threading for the irregular pipeline.
    let mut counts_map: HashMap<(TensorId, usize), TensorId> = HashMap::new();

    for stage in &stages {
        for p in 0..parts {
            for &local in stage {
                let instr = &instrs[local];
                let chunk_in = |t: TensorId, cm: &HashMap<(TensorId, usize), TensorId>| -> TensorId {
                    if let Some(&c) = cm.get(&(t, p)) {
                        c
                    } else {
                        remap[&t] // weights / unpartitioned
                    }
                };
                match &instr.op {
                    Op::Gate { kind, experts, capacity } => {
                        let x = chunk_in(instr.inputs[0], &chunk_map);
                        let wg = remap[&instr.inputs[1]];
                        let cap = cap_state[&local];
                        let outs = dst.emit_multi(
                            Op::GateChunk { kind: *kind, experts: *experts, capacity: *capacity, parts },
                            &[x, wg, cap],
                            instr.role,
                        )?;
                        chunk_map.insert((instr.outputs[0], p), outs[0]);
                        chunk_map.insert((instr.outputs[1], p), outs[1]);
                        cap_state.insert(local, outs[2]);
                    }
                    Op::MoeDispatch { experts, capacity } => {
                        let ins: Vec<TensorId> =
                            instr.inputs.iter().map(|&t| chunk_in(t, &chunk_map)).collect();
                        let outs = dst.emit_multi(
                            Op::MoeDispatchIrr { experts: *experts, capacity: *capacity, parts },
                            &ins,
                            instr.role,
                        )?;
                        chunk_map.insert((instr.outputs[0], p), outs[0]);
                        counts_map.insert((instr.outputs[0], p), outs[1]);
                    }
                    Op::AllToAll if axes.axis(instr.inputs[0]) == PartAxis::Irregular => {
                        let buf = chunk_in(instr.inputs[0], &chunk_map);
                        let counts = counts_map
                            .get(&(instr.inputs[0], p))
                            .copied()
                            .ok_or_else(|| IrError::InvalidTransform("irregular all-to-all without counts".into()))?;
                        let outs = dst.emit_multi(Op::AllToAllIrr, &[buf, counts], instr.role)?;
                        chunk_map.insert((instr.outputs[0], p), outs[0]);
                        counts_map.insert((instr.outputs[0], p), outs[1]);
                    }
                    Op::MoeGather { experts, capacity, seq, .. } => {
                        let ins: Vec<TensorId> =
                            instr.inputs.iter().map(|&t| chunk_in(t, &chunk_map)).collect();
                        let (_, _, blen) = slice_of_chunk_batch(src, axes, &instrs, instr, batch_ref, &batch_chunks, p)?;
                        let out = dst.emit(
                            Op::MoeGatherIrr { experts: *experts, capacity: *capacity, batch: blen, seq: *seq },
                            &ins,
                            instr.role,
                        )?;
                        chunk_map.insert((instr.outputs[0], p), out);
                    }
                    op => {
                        let ins: Vec<TensorId> =
                            instr.inputs.iter().map(|&t| chunk_in(t, &chunk_map)).collect();
                        let outs = dst.emit_multi(op.clone(), &ins, instr.role)?;
                        for (&o, n) in instr.outputs.iter().zip(&outs) {
                            chunk_map.insert((o, p), *n);
                        }
                        // Propagate the counts association through
                        // shape-preserving ops on irregular buffers.
                        if instr.outputs.len() == 1
                            && axes.axis(instr.outputs[0]) == PartAxis::Irregular
                        {
                            if let Some(&c) = instr
                                .inputs
                                .iter()
                                .find_map(|t| counts_map.get(&(*t, p)))
                            {
                                counts_map.insert((instr.outputs[0], p), c);
                            }
                        }
                    }
                }
            }
        }
    }

    // Reconstruct boundary outputs.
    for &t in &boundary_out {
        let axis = match axes.axis(t) {
            PartAxis::Batch => 0,
            PartAxis::Capacity => 1,
            _ => return Err(IrError::InvalidTransform("irregular tensor crosses range boundary".into())),
        };
        let chunks: Vec<TensorId> = (0..parts).map(|p| chunk_map[&(t, p)]).collect();
        let whole = dst.emit(Op::Concat { axis }, &chunks, src.instr_role_of(t, &instrs))?;
        remap.insert(t, whole);
    }
    Ok(())
}

/// Batch extent of chunk `p` for the gather's output.
fn slice_of_chunk_batch(
    _src: &Graph,
    _axes: &AxisSolution,
    _instrs: &[Instr],
    instr: &Instr,
    batch_ref: Option<usize>,
    batch_chunks: &Option<Vec<(usize, usize)>>,
    p: usize,
) -> Result<(usize, usize, usize)> {
    let Op::MoeGather { batch, .. } = instr.op else {
        return Err(IrError::InvalidTransform("not a gather".into()));
    };
    let b = batch_ref.ok_or_else(|| IrError::InvalidTransform("gather without batch split".into()))?;
    if batch != b {
        return Err(IrError::InvalidTransform(format!("gather batch {batch} != range batch {b}")));
    }
    let (s, l) = batch_chunks.as_ref().expect("batch ref present")[p];
    Ok((0, s, l))
}

/// Helper: the role to use for reconstruction instructions of tensor `t`.
trait RoleOf {
    fn instr_role_of(&self, t: TensorId, instrs: &[Instr]) -> lancet_ir::Role;
}

impl RoleOf for Graph {
    fn instr_role_of(&self, t: TensorId, instrs: &[Instr]) -> lancet_ir::Role {
        instrs
            .iter()
            .find(|i| i.outputs.contains(&t))
            .map(|i| i.role)
            .unwrap_or(lancet_ir::Role::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_axes;
    use lancet_ir::{GateKind, Role};

    fn moe_graph(gate: GateKind, batch: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", vec![batch, 8, 16]);
        let wg = g.weight("gate.w", vec![16, 4]);
        let w1 = g.weight("expert.w1", vec![2, 16, 32]);
        let w2 = g.weight("expert.w2", vec![2, 32, 16]);
        let gate_outs = g
            .emit_multi(Op::Gate { kind: gate, experts: 4, capacity: 16 }, &[x, wg], Role::Forward)
            .unwrap();
        let buf = g
            .emit(Op::MoeDispatch { experts: 4, capacity: 16 }, &[x, gate_outs[0], gate_outs[1]], Role::Forward)
            .unwrap();
        let t = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus: 2 }, &[t], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let back = g.emit(Op::ExpertsLayoutInv { gpus: 2 }, &[h], Role::Forward).unwrap();
        let back2 = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
        let y = g
            .emit(
                Op::MoeGather { experts: 4, capacity: 16, batch, seq: 8 },
                &[back2, gate_outs[0], gate_outs[1]],
                Role::Forward,
            )
            .unwrap();
        let _out = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
        g
    }

    #[test]
    fn irregular_codegen_produces_valid_pipeline() {
        let g = moe_graph(GateKind::Switch, 4);
        let axes = infer_axes(&g, 0..10).unwrap();
        let spec = PartitionSpec { range: 0..10, parts: 2, axes };
        let out = apply_partitions(&g, &[spec]).unwrap();
        assert!(out.validate().is_ok());
        // Two chunks → 2 GateChunks, 2 dispatches, 4 irregular a2as.
        let count = |pred: &dyn Fn(&Op) -> bool| out.instrs().iter().filter(|i| pred(&i.op)).count();
        assert_eq!(count(&|o| matches!(o, Op::GateChunk { .. })), 2);
        assert_eq!(count(&|o| matches!(o, Op::MoeDispatchIrr { .. })), 2);
        assert_eq!(count(&|o| matches!(o, Op::AllToAllIrr)), 4);
        assert_eq!(count(&|o| matches!(o, Op::MoeGatherIrr { .. })), 2);
        // Gather outputs are concatenated back for the trailing Gelu.
        assert_eq!(count(&|o| matches!(o, Op::Concat { .. })), 1);
    }

    #[test]
    fn capacity_codegen_keeps_uniform_alltoalls() {
        let g = moe_graph(GateKind::Switch, 4);
        let axes = infer_axes(&g, 2..9).unwrap();
        let spec = PartitionSpec { range: 2..9, parts: 4, axes };
        let out = apply_partitions(&g, &[spec]).unwrap();
        assert!(out.validate().is_ok());
        let n_a2a = out.instrs().iter().filter(|i| matches!(i.op, Op::AllToAll)).count();
        assert_eq!(n_a2a, 8); // 2 per chunk × 4 chunks
        let n_irr = out.instrs().iter().filter(|i| matches!(i.op, Op::AllToAllIrr)).count();
        assert_eq!(n_irr, 0);
        // Buffer slices along the capacity axis.
        assert!(out
            .instrs()
            .iter()
            .any(|i| matches!(i.op, Op::Slice { axis: 1, .. })));
    }

    #[test]
    fn stage_major_order_pipelines_chunks() {
        let g = moe_graph(GateKind::Switch, 4);
        let axes = infer_axes(&g, 0..10).unwrap();
        let spec = PartitionSpec { range: 0..10, parts: 2, axes };
        let out = apply_partitions(&g, &[spec]).unwrap();
        // The two first-direction irregular all-to-alls must be adjacent
        // in issue order (same comm stage), before any expert compute.
        let a2a_positions: Vec<usize> = out
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.op, Op::AllToAllIrr))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(a2a_positions[1], a2a_positions[0] + 1, "chunk a2as interleave as one stage");
    }

    #[test]
    fn too_many_parts_rejected() {
        let g = moe_graph(GateKind::Switch, 2);
        let axes = infer_axes(&g, 0..10).unwrap();
        let spec = PartitionSpec { range: 0..10, parts: 8, axes };
        assert!(apply_partitions(&g, &[spec]).is_err());
    }

    #[test]
    fn overlapping_specs_rejected() {
        let g = moe_graph(GateKind::Switch, 4);
        let axes = infer_axes(&g, 0..10).unwrap();
        let s1 = PartitionSpec { range: 0..10, parts: 2, axes: axes.clone() };
        let s2 = PartitionSpec { range: 5..10, parts: 2, axes };
        assert!(apply_partitions(&g, &[s1, s2]).is_err());
    }

    #[test]
    fn plain_replay_preserves_graph() {
        let g = moe_graph(GateKind::Switch, 4);
        let out = apply_partitions(&g, &[]).unwrap();
        assert_eq!(out.instrs().len(), g.instrs().len());
        for (a, b) in g.instrs().iter().zip(out.instrs()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.role, b.role);
        }
    }
}
