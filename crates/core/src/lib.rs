//! The Lancet compiler passes — the paper's primary contribution.
//!
//! Two optimization passes transform a training-iteration graph so that
//! all-to-all communication overlaps with computation across the *whole*
//! training graph:
//!
//! * [`schedule_weight_gradients`] (paper §4) reorders backward-pass
//!   weight-gradient (dW) instructions to execute while all-to-alls are in
//!   flight, using dependency labelling plus a best-fit greedy assignment
//!   (paper Alg. 1).
//! * [`partition_pass`] (paper §5) partitions forward-pass operators —
//!   including non-MoE computation — into a computation-communication
//!   pipeline: a dynamic program selects the optimal partition ranges and
//!   counts (§5.1), a constraint solver infers per-tensor partition axes
//!   (§5.2), and a pipeline scheduler prices each candidate (§5.3).
//!
//! The [`Lancet`] facade runs the whole flow. One deviation from the
//! paper's pass ordering (documented in DESIGN.md): we partition the
//! *forward* graph first and then differentiate it, so the backward pass
//! of a partitioned layer is generated consistently by autodiff — which
//! both preserves numerical equivalence (verified by executor tests) and
//! makes the partitioned backward all-to-alls schedulable by the dW pass.
//!
//! # Example
//!
//! ```no_run
//! use lancet_core::{Lancet, LancetOptions};
//! use lancet_cost::ClusterSpec;
//! use lancet_ir::GateKind;
//! use lancet_models::{build_forward, GptMoeConfig};
//!
//! let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
//! let model = build_forward(&cfg)?;
//! let lancet = Lancet::new(ClusterSpec::a100(2), 16, LancetOptions::default());
//! let optimized = lancet.optimize(model.graph)?;
//! println!("predicted iteration time: {:.1} ms", optimized.predicted_time * 1e3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod dw;
mod estimate;
mod lancet;
mod partition;
mod prefetch;
mod recompute;

pub use dw::{schedule_weight_gradients, DwScheduleReport};
pub use estimate::{EstimateReport, TimeEstimator};
pub use lancet::{
    Lancet, LancetOptions, OptimizeOutcome, OptimizerStats, PlacementOutcome, PlacementSearch,
};
pub use prefetch::{prefetch_allgathers, PrefetchReport};
pub use recompute::{recompute_segments, RecomputeReport};
pub use partition::{
    apply_partitions, apply_tile_schedule, infer_axes, partition_pass, partition_pass_with,
    AxisSolution, PartAxis, PartitionMemo, PartitionOptions, PartitionReport, PartitionSpec,
    TileReport, TileSchedule,
};
