//! The compiler's iteration-time estimate (two-stream sweep over
//! profiler/cost-model latencies).
//!
//! This is what the passes *believe* execution will cost; the simulator
//! measures what it "actually" costs. The gap between the two is the
//! cost-model error reported in paper Fig. 14. Two approximations live
//! here by design (paper §3): communication times come from the linearly
//! interpolated [`CommCostModel`], and irregular all-to-alls are priced by
//! the static-shape rule — query the uniform model at capacity `C/n`.

use lancet_cost::{CachingOpProfiler, CommCostModel, CommModel};
use lancet_ir::{Graph, Op, Shape, TensorId};
use std::collections::HashMap;

/// Breakdown of an estimated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimateReport {
    /// Estimated end-to-end time, seconds.
    pub total: f64,
    /// Estimated compute-stream busy time.
    pub compute_busy: f64,
    /// Estimated communication-stream busy time.
    pub comm_busy: f64,
}

/// Prices instruction sequences with the compiler-side cost models.
#[derive(Debug)]
pub struct TimeEstimator {
    profiler: CachingOpProfiler,
    a2a_model: CommCostModel,
    comm_truth: CommModel,
    gpus: usize,
}

impl TimeEstimator {
    /// Builds an estimator.
    ///
    /// `a2a_model` must have been profiled for the same `gpus`;
    /// `comm_truth` prices the (rare) all-reduce instructions for which no
    /// interpolated model is built.
    pub fn new(
        profiler: CachingOpProfiler,
        a2a_model: CommCostModel,
        comm_truth: CommModel,
        gpus: usize,
    ) -> Self {
        TimeEstimator { profiler, a2a_model, comm_truth, gpus }
    }

    /// The underlying op profiler (exposes cache statistics).
    pub fn profiler(&self) -> &CachingOpProfiler {
        &self.profiler
    }

    /// Device count used for collective pricing.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The ground-truth communication model (topology source for
    /// placement-aware passes).
    pub fn comm_truth(&self) -> &CommModel {
        &self.comm_truth
    }

    /// Estimated latency of a single instruction.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the profiler.
    pub fn instr_time(&self, graph: &Graph, pos: usize) -> lancet_ir::Result<f64> {
        let instr = &graph.instrs()[pos];
        let in_shapes: Vec<&Shape> = instr.inputs.iter().map(|&t| &graph.tensor(t).shape).collect();
        if instr.op.is_comm() {
            Ok(self.comm_time(graph, pos, &in_shapes))
        } else {
            self.profiler.profile(&instr.op, &in_shapes)
        }
    }

    fn comm_time(&self, graph: &Graph, pos: usize, ins: &[&Shape]) -> f64 {
        let op = &graph.instrs()[pos].op;
        match op {
            Op::AllToAll => self.a2a_model.query(op.comm_bytes(ins)),
            Op::AllToAllIrr => {
                // Static-shape approximation: the n-partitioned irregular
                // all-to-all costs what a uniform one of capacity C/n
                // costs (paper §3).
                let padded = op.comm_bytes(ins);
                let parts = irr_parts(graph, pos).max(1);
                self.a2a_model.query_partitioned(padded, parts)
            }
            Op::AllReduce => self.comm_truth.all_reduce_time(op.comm_bytes(ins), self.gpus),
            Op::AllGather { .. } => self.comm_truth.all_gather_time(op.comm_bytes(ins), self.gpus),
            Op::ReduceScatter { .. } => {
                self.comm_truth.reduce_scatter_time(op.comm_bytes(ins), self.gpus)
            }
            _ => unreachable!("comm_time on compute op"),
        }
    }

    /// Runs the two-stream sweep over the whole instruction sequence and
    /// reports the estimated timeline.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the profiler.
    pub fn estimate(&self, graph: &Graph) -> lancet_ir::Result<EstimateReport> {
        let mut ready: HashMap<TensorId, f64> = HashMap::new();
        let mut compute_free = 0.0f64;
        let mut comm_free = 0.0f64;
        let mut compute_busy = 0.0;
        let mut comm_busy = 0.0;
        for (pos, instr) in graph.instrs().iter().enumerate() {
            let in_ready = instr
                .inputs
                .iter()
                .map(|t| ready.get(t).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            let dur = self.instr_time(graph, pos)?;
            let end = if instr.op.is_comm() {
                let start = in_ready.max(comm_free);
                comm_free = start + dur;
                comm_busy += dur;
                comm_free
            } else {
                let start = in_ready.max(compute_free);
                compute_free = start + dur;
                compute_busy += dur;
                compute_free
            };
            for &o in &instr.outputs {
                ready.insert(o, end);
            }
        }
        Ok(EstimateReport { total: compute_free.max(comm_free), compute_busy, comm_busy })
    }
}

/// The `n` of the static-shape approximation for an irregular all-to-all:
/// read from the `parts` attribute of the dispatch that originated its
/// counts chain.
fn irr_parts(graph: &Graph, pos: usize) -> usize {
    let producers = graph.producer_positions();
    let mut cursor = graph.instrs()[pos].inputs[1];
    for _ in 0..graph.instrs().len() {
        let Some(&p) = producers.get(&cursor) else { return 1 };
        match &graph.instrs()[p].op {
            Op::MoeDispatchIrr { parts, .. } => return *parts,
            Op::AllToAllIrr => cursor = graph.instrs()[p].inputs[1],
            _ => return 1,
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_cost::{ClusterSpec, ComputeModel};
    use lancet_ir::{GateKind, Role};

    fn estimator(gpus: usize) -> TimeEstimator {
        let spec = ClusterSpec::v100(gpus.div_ceil(8));
        let truth = CommModel::new(spec.clone());
        let a2a = CommCostModel::build(&truth, 1 << 28, gpus);
        TimeEstimator::new(
            CachingOpProfiler::new(ComputeModel::new(spec.device.clone())),
            a2a,
            truth,
            gpus,
        )
    }

    #[test]
    fn sequential_chain_sums() {
        let mut g = Graph::new();
        let x = g.input("x", vec![256, 256]);
        let w = g.weight("w", vec![256, 256]);
        let a = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _b = g.emit(Op::MatMul { transpose_b: false }, &[a, w], Role::Forward).unwrap();
        let est = estimator(8);
        let r = est.estimate(&g).unwrap();
        assert!((r.total - r.compute_busy).abs() < 1e-12);
        assert_eq!(r.comm_busy, 0.0);
    }

    #[test]
    fn overlap_reduces_total() {
        let mut g = Graph::new();
        let x = g.input("x", vec![8, 64, 512]);
        let w = g.weight("w", vec![512, 512]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
        let _i = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
        let est = estimator(16);
        let r = est.estimate(&g).unwrap();
        assert!(r.total < r.compute_busy + r.comm_busy);
    }

    #[test]
    fn partitioned_alltoall_priced_at_fraction() {
        let mk = |parts: usize| {
            let mut g = Graph::new();
            let x = g.input("x", vec![4, 16, 64]);
            let wg = g.weight("gate.w", vec![64, 8]);
            let cap0 = g.emit(Op::Zeros { shape: vec![8] }, &[], Role::Forward).unwrap();
            let gate = g
                .emit_multi(
                    Op::GateChunk { kind: GateKind::Switch, experts: 8, capacity: 16, parts },
                    &[x, wg, cap0],
                    Role::Forward,
                )
                .unwrap();
            let d = g
                .emit_multi(Op::MoeDispatchIrr { experts: 8, capacity: 16, parts }, &[x, gate[0], gate[1]], Role::Forward)
                .unwrap();
            let _ = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
            g
        };
        let est = estimator(16);
        let one = est.estimate(&mk(1)).unwrap();
        let four = est.estimate(&mk(4)).unwrap();
        assert!(four.comm_busy < one.comm_busy);
    }

    #[test]
    fn profiler_cache_fills() {
        let mut g = Graph::new();
        let x = g.input("x", vec![64, 64]);
        let _ = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let _ = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let est = estimator(8);
        est.estimate(&g).unwrap();
        assert_eq!(est.profiler().stats().misses, 1);
        assert_eq!(est.profiler().stats().hits, 1);
    }
}
