//! The weight-gradient computation schedule pass (paper §4, Alg. 1).

use crate::TimeEstimator;
use lancet_ir::{DepGraph, Graph, InstrId, Result};
use std::collections::{HashMap, HashSet};

/// Outcome of the dW scheduling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DwScheduleReport {
    /// Number of all-to-all instructions considered.
    pub alltoalls: usize,
    /// Number of dW instructions moved behind an all-to-all.
    pub assigned: usize,
    /// Total estimated all-to-all time (seconds).
    pub total_a2a_time: f64,
    /// Estimated all-to-all time hidden behind scheduled dW compute.
    pub estimated_overlap: f64,
}

impl DwScheduleReport {
    /// Fraction of all-to-all time the pass expects to hide.
    pub fn overlap_fraction(&self) -> f64 {
        if self.total_a2a_time <= 0.0 {
            0.0
        } else {
            self.estimated_overlap / self.total_a2a_time
        }
    }
}

/// Reorders weight-gradient instructions to overlap all-to-alls.
///
/// Implements the paper's two steps:
///
/// 1. **Labelling** (§4.1): dW instruction `w` may overlap all-to-all `a`
///    iff no directed path connects them (checked on the dependency
///    graph's transitive closure). We additionally require that every
///    producer of `w` lands before `a` in the reordered program, so the
///    result is always a valid topological order.
/// 2. **Best-fit greedy** (§4.2 / Alg. 1): for each all-to-all in program
///    order, repeatedly pick the unused candidate minimizing
///    `|t_unoverlapped − t_w|` until the all-to-all is covered.
///
/// The chosen dW instructions are re-inserted immediately after their
/// all-to-all so they launch while the transfer is in flight.
///
/// # Errors
///
/// Propagates profiler shape errors and reorder validation failures (the
/// latter would indicate a bug — the pass only produces valid orders).
///
/// # Example
///
/// ```
/// use lancet_core::{schedule_weight_gradients, Lancet, LancetOptions};
/// use lancet_cost::ClusterSpec;
/// use lancet_ir::GateKind;
/// use lancet_models::{build_training, GptMoeConfig};
///
/// let cfg = GptMoeConfig::tiny(4, GateKind::Switch).with_layers(4);
/// let mut model = build_training(&cfg, &Default::default())?;
/// let lancet = Lancet::new(ClusterSpec::v100(1), 4, LancetOptions::default());
/// let report = schedule_weight_gradients(&mut model.graph, lancet.estimator())?;
/// assert!(report.assigned > 0);
/// assert!(model.graph.validate().is_ok());
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn schedule_weight_gradients(
    graph: &mut Graph,
    estimator: &TimeEstimator,
) -> Result<DwScheduleReport> {
    let dep = DepGraph::build(graph);
    let a2a_positions = graph.all_to_all_positions();
    let dw_positions = graph.weight_grad_positions();

    // Pre-compute estimated durations.
    let mut dw_time: HashMap<usize, f64> = HashMap::new();
    for &p in &dw_positions {
        dw_time.insert(p, estimator.instr_time(graph, p)?);
    }

    let mut used: HashSet<usize> = HashSet::new();
    // dW instructions that must stay in place because an already-moved dW
    // depends on them (moving them later would break topological order —
    // dW→dW chains arise from gradient accumulation of shared weights).
    let mut frozen: HashSet<usize> = HashSet::new();
    // a2a position → dW positions scheduled behind it (in pick order).
    let mut assignment: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut total_a2a_time = 0.0;
    let mut estimated_overlap = 0.0;

    for &a in &a2a_positions {
        let t_a = estimator.instr_time(graph, a)?;
        total_a2a_time += t_a;
        let mut t_u = t_a;
        // Candidates: independent of the all-to-all in both directions.
        let mut candidates: Vec<usize> = dw_positions
            .iter()
            .copied()
            .filter(|&w| !used.contains(&w) && !frozen.contains(&w) && dep.independent(w, a))
            .collect();
        let mut assigned_here: Vec<usize> = Vec::new();
        while t_u > 0.0 && !candidates.is_empty() {
            // A candidate moves together with its chain of dependent dW
            // instructions that sit before the all-to-all (gradient
            // accumulation `Add`s): the whole *unit* is re-inserted after
            // the all-to-all in original order. The unit is infeasible
            // when some early consumer is not a movable dW (e.g. an FSDP
            // reduce-scatter mid-backward — moving past it would break
            // topological order).
            let unit_of = |w: usize| -> Option<Vec<usize>> {
                let mut unit: Vec<usize> = vec![w];
                let mut i = 0;
                while i < unit.len() {
                    let u = unit[i];
                    i += 1;
                    for &s in dep.succs(u) {
                        if s > a || unit.contains(&s) {
                            continue;
                        }
                        let movable = graph.instrs()[s].role.is_weight_grad()
                            && !used.contains(&s)
                            && !frozen.contains(&s)
                            && dep.independent(s, a);
                        if movable {
                            unit.push(s);
                        } else {
                            return None;
                        }
                    }
                }
                unit.sort_unstable();
                Some(unit)
            };
            // Producers of every unit member must land before the
            // all-to-all: non-moved instructions at earlier positions, or
            // dWs already scheduled behind this/an earlier all-to-all, or
            // fellow unit members.
            let preds_ok = |unit: &[usize]| {
                unit.iter().all(|&m| {
                    dep.preds(m).iter().all(|&q| {
                        if unit.contains(&q) {
                            true
                        } else if used.contains(&q) {
                            assigned_here.contains(&q)
                                || assignment
                                    .iter()
                                    .any(|(&a2, ws): (&usize, &Vec<usize>)| a2 < a && ws.contains(&q))
                        } else {
                            q < a
                        }
                    })
                })
            };
            let unit_time =
                |unit: &[usize]| unit.iter().map(|m| dw_time[m]).sum::<f64>();
            let best = candidates
                .iter()
                .copied()
                .filter(|&w| !frozen.contains(&w) && !used.contains(&w))
                .filter_map(|w| unit_of(w).filter(|u| preds_ok(u)))
                .min_by(|x, y| {
                    let dx = (t_u - unit_time(x)).abs();
                    let dy = (t_u - unit_time(y)).abs();
                    dx.partial_cmp(&dy).expect("finite times")
                });
            let Some(unit) = best else { break };
            t_u -= unit_time(&unit);
            for &m in &unit {
                used.insert(m);
                assigned_here.push(m);
                candidates.retain(|&c| c != m);
                // Freeze every not-yet-moved dW ancestor outside the
                // unit: it must keep its original position.
                let mut stack: Vec<usize> = dep.preds(m).to_vec();
                while let Some(q) = stack.pop() {
                    if graph.instrs()[q].role.is_weight_grad()
                        && !used.contains(&q)
                        && !unit.contains(&q)
                        && frozen.insert(q)
                    {
                        stack.extend_from_slice(dep.preds(q));
                    }
                }
            }
        }
        assignment.insert(a, assigned_here);
        estimated_overlap += (t_a - t_u.max(0.0)).min(t_a);
    }

    // Reorder: walk the original sequence, skipping moved dWs, appending
    // each all-to-all's assignments right after it.
    let instr_ids: Vec<InstrId> = graph.instrs().iter().map(|i| i.id).collect();
    let mut order: Vec<InstrId> = Vec::with_capacity(instr_ids.len());
    for (pos, &id) in instr_ids.iter().enumerate() {
        if used.contains(&pos) {
            continue;
        }
        order.push(id);
        if let Some(ws) = assignment.get(&pos) {
            for &w in ws {
                order.push(instr_ids[w]);
            }
        }
    }
    let assigned = used.len();
    graph.reorder(order)?;
    Ok(DwScheduleReport {
        alltoalls: a2a_positions.len(),
        assigned,
        total_a2a_time,
        estimated_overlap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_cost::{CachingOpProfiler, ClusterSpec, CommCostModel, CommModel, ComputeModel};
    use lancet_ir::{build_backward, BackwardOptions, GateKind, Op, Role};

    fn estimator(gpus: usize) -> TimeEstimator {
        let spec = ClusterSpec::v100(gpus.div_ceil(8));
        let truth = CommModel::new(spec.clone());
        let a2a = CommCostModel::build(&truth, 1 << 28, gpus);
        TimeEstimator::new(
            CachingOpProfiler::new(ComputeModel::new(spec.device.clone())),
            a2a,
            truth,
            gpus,
        )
    }

    /// Two-layer chain with an all-to-all between them; backward produces
    /// dW instructions independent of the backward all-to-all.
    fn training_graph() -> Graph {
        let mut g = Graph::new();
        let ids = g.input("ids", vec![4, 16]);
        let targets = g.input("targets", vec![4, 16]);
        let table = g.weight("wte", vec![32, 64]);
        let w1 = g.weight("w1", vec![64, 64]);
        let w2 = g.weight("w2", vec![64, 64]);
        let lm = g.weight("lm", vec![64, 32]);
        let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        // A "dispatch-like" buffer so the all-to-all has 3 dims.
        let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
        let h2 = g.emit(Op::MatMul { transpose_b: false }, &[t, w2], Role::Forward).unwrap();
        let logits = g.emit(Op::MatMul { transpose_b: false }, &[h2, lm], Role::Forward).unwrap();
        let _ = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        g
    }

    #[test]
    fn pass_produces_valid_reorder_with_assignments() {
        let mut g = training_graph();
        let before: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let est = estimator(16);
        let report = schedule_weight_gradients(&mut g, &est).unwrap();
        assert!(g.validate().is_ok());
        // Same instructions, new order.
        let mut after: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let mut sorted_before = before.clone();
        sorted_before.sort();
        after.sort();
        assert_eq!(after, sorted_before);
        // The backward all-to-all gets at least one dW scheduled.
        assert!(report.assigned >= 1, "assigned {}", report.assigned);
        assert!(report.estimated_overlap > 0.0);
        assert!(report.overlap_fraction() > 0.0);
    }

    #[test]
    fn moved_dws_sit_after_their_alltoall() {
        let mut g = training_graph();
        let est = estimator(16);
        let report = schedule_weight_gradients(&mut g, &est).unwrap();
        assert!(report.assigned > 0);
        // After the pass, at least one weight-grad op directly follows an
        // all-to-all in program order.
        let instrs = g.instrs();
        let mut found = false;
        for w in instrs.windows(2) {
            if w[0].op.is_all_to_all() && w[1].role.is_weight_grad() {
                found = true;
            }
        }
        assert!(found, "no dW directly after any all-to-all");
    }

    #[test]
    fn overlap_improves_estimated_time() {
        let mut g = training_graph();
        let est = estimator(16);
        let before = est.estimate(&g).unwrap().total;
        schedule_weight_gradients(&mut g, &est).unwrap();
        let after = est.estimate(&g).unwrap().total;
        assert!(after < before, "estimated {after} !< {before}");
    }

    #[test]
    fn moe_training_graph_schedules_many() {
        use lancet_models::{build_training, GptMoeConfig};
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_layers(4);
        let mut m = build_training(&cfg, &BackwardOptions::default()).unwrap();
        let est = estimator(16);
        let report = schedule_weight_gradients(&mut m.graph, &est).unwrap();
        assert!(m.graph.validate().is_ok());
        // Two MoE layers → 8 all-to-alls (4 fwd + 4 bwd); backward ones
        // should attract dW work.
        assert_eq!(report.alltoalls, 8);
        assert!(report.assigned >= 2);
    }

    #[test]
    fn graph_without_alltoall_unchanged() {
        let mut g = Graph::new();
        let ids = g.input("ids", vec![2, 4]);
        let targets = g.input("targets", vec![2, 4]);
        let table = g.weight("wte", vec![16, 8]);
        let lm = g.weight("lm", vec![8, 16]);
        let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let logits = g.emit(Op::MatMul { transpose_b: false }, &[x, lm], Role::Forward).unwrap();
        let _ = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        let before: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let est = estimator(8);
        let report = schedule_weight_gradients(&mut g, &est).unwrap();
        let after: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        assert_eq!(before, after);
        assert_eq!(report.assigned, 0);
        assert_eq!(report.overlap_fraction(), 0.0);
    }
}
