//! The `Lancet` facade: full optimization flow and iteration-time
//! prediction.

use crate::{
    apply_tile_schedule, partition_pass_with, prefetch_allgathers, schedule_weight_gradients,
    DwScheduleReport, PartitionMemo, PartitionOptions, PartitionReport, PrefetchReport,
    TileReport, TileSchedule, TimeEstimator,
};
use lancet_cost::{
    optimize_placement, CachingOpProfiler, ClusterSpec, CommCostModel, CommModel, ComputeModel,
    ExpertTraffic, PlacementOptions, PlacementPlan, PlacementReport,
};
use lancet_ir::{build_backward, BackwardOptions, Graph, Result};
use std::time::{Duration, Instant};

/// Options controlling the Lancet optimization flow.
#[derive(Debug, Clone)]
pub struct LancetOptions {
    /// Disable the dW scheduling pass (ablation).
    pub disable_dw_schedule: bool,
    /// Disable the operator partition pass (ablation).
    pub disable_partition: bool,
    /// Partition-pass hyper-parameters (ρ, γ, ι).
    pub partition: PartitionOptions,
    /// Backward-graph construction options.
    pub backward: BackwardOptions,
    /// FSDP all-gather prefetch lookahead (0 disables; only affects
    /// graphs containing all-gathers).
    pub prefetch_lookahead: usize,
    /// Expert-placement co-optimization: when a routing histogram is
    /// supplied, [`Lancet::optimize`] runs the placement search next to
    /// the partition pass and attaches the resulting plan to the
    /// outcome. `None` keeps the implicit uniform placement.
    pub placement: Option<PlacementSearch>,
    /// Tile-granular overlap schedule (Comet direction): when set, the
    /// partition pass's output is refined by
    /// [`apply_tile_schedule`](crate::apply_tile_schedule), splitting
    /// each uniform all-to-all → expert-FFN → all-to-all segment into
    /// capacity tiles with an interleaved per-stream order. `None` (the
    /// default unless `LANCET_TILE_COUNT` is set) keeps partition-level
    /// scheduling and produces byte-identical plans to previous releases.
    pub tile: Option<TileSchedule>,
}

/// Inputs for the placement search inside the optimization flow.
#[derive(Debug, Clone)]
pub struct PlacementSearch {
    /// Routing histogram driving the search (collected by
    /// `lancet_moe::RoutingHistogram` or generated synthetically).
    pub traffic: ExpertTraffic,
    /// Search knobs (balance weight, sweep budget).
    pub options: PlacementOptions,
}

impl PlacementSearch {
    /// Wraps a histogram with default search options.
    pub fn new(traffic: ExpertTraffic) -> Self {
        PlacementSearch { traffic, options: PlacementOptions::default() }
    }
}

/// The placement half of an [`OptimizeOutcome`]: the chosen plan plus
/// the before/after cost report, sitting next to [`PartitionReport`] so
/// downstream consumers (simulator replay, serve dispatch) can pick it
/// up from one place.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOutcome {
    /// The optimized expert→device assignment.
    pub plan: PlacementPlan,
    /// Uniform-vs-optimized cost comparison from the search.
    pub report: PlacementReport,
}

impl Default for LancetOptions {
    fn default() -> Self {
        LancetOptions {
            disable_dw_schedule: false,
            disable_partition: false,
            partition: PartitionOptions::default(),
            backward: BackwardOptions::default(),
            prefetch_lookahead: 1,
            placement: None,
            tile: TileSchedule::from_env(),
        }
    }
}

impl LancetOptions {
    /// Options for building **decode-serving plans** (prefill and
    /// decode-step graphs in `lancet-decode`).
    ///
    /// Every training/throughput pass is off, deliberately:
    ///
    /// * **Partitioning is disabled** because decode plans harvest
    ///   per-layer K/V activations by the tensor ids recorded at graph
    ///   construction — the partition pass renumbers tensors, which would
    ///   leave those handles dangling. (Decode-step graphs are also
    ///   latency-bound at tiny batch sizes, where partition-pipelining a
    ///   single micro-batch has nothing to overlap.) With partitioning
    ///   off, [`Lancet::optimize_forward`] returns the forward graph
    ///   unchanged, so construction-time ids stay valid — the contract
    ///   `lancet_serve::Plan::build_prefill` checks via
    ///   [`Lancet::options`].
    /// * dW scheduling and prefetch are training passes; no backward
    ///   graph exists at serving time.
    /// * **Tile scheduling is forced off** (even when `LANCET_TILE_COUNT`
    ///   is exported) for the same tensor-id-stability reason as the
    ///   partition pass: the tile rewrite renumbers tensors.
    pub fn decode_serving() -> Self {
        LancetOptions {
            disable_dw_schedule: true,
            disable_partition: true,
            prefetch_lookahead: 0,
            tile: None,
            ..LancetOptions::default()
        }
    }
}

/// Where the optimizer's wall-clock time went and how effective the
/// search caches were — the measurement behind the paper's Fig. 15
/// optimization-time story (see `fig15_opt_time` in `lancet-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OptimizerStats {
    /// Wall time spent in the partition pass (dominates optimization).
    pub partition_time: Duration,
    /// Wall time spent in autodiff + prefetch placement.
    pub backward_time: Duration,
    /// Wall time spent in dW scheduling.
    pub dw_time: Duration,
    /// `P(i, n, k)` pricings the partition DP had to materialize and
    /// estimate (memo misses).
    pub candidates_evaluated: usize,
    /// Pricings answered by the structural memo — including hits against
    /// evaluations from *earlier* [`Lancet::optimize`] calls, since the
    /// memo lives on the [`Lancet`] instance.
    pub candidates_cached: usize,
    /// Worker threads the partition search ran with.
    pub workers: usize,
}

impl OptimizerStats {
    /// Fraction of DP pricings answered from the memo, in `[0, 1]`.
    pub fn cache_ratio(&self) -> f64 {
        let total = self.candidates_evaluated + self.candidates_cached;
        if total == 0 {
            0.0
        } else {
            self.candidates_cached as f64 / total as f64
        }
    }
}

/// Result of optimizing one model.
#[derive(Debug)]
pub struct OptimizeOutcome {
    /// The optimized training graph (forward partitioned, backward
    /// generated, dW instructions scheduled).
    pub graph: Graph,
    /// Cost-model-predicted iteration time, seconds (paper Fig. 14
    /// compares this against measured time).
    pub predicted_time: f64,
    /// Partition-pass report (empty ranges when disabled).
    pub partition: Option<PartitionReport>,
    /// Tile-scheduler report (`None` unless [`LancetOptions::tile`] was
    /// set): how many uniform expert segments were split into tiles.
    pub tile: Option<TileReport>,
    /// Expert-placement plan + report (`None` unless a routing histogram
    /// was supplied via [`LancetOptions::placement`]).
    pub placement: Option<PlacementOutcome>,
    /// dW-pass report (`None` when disabled).
    pub dw: Option<DwScheduleReport>,
    /// FSDP prefetch report (zero moves for non-FSDP graphs).
    pub prefetch: PrefetchReport,
    /// Wall-clock time the optimization took (paper Fig. 15).
    pub optimization_time: Duration,
    /// Per-pass timing and search-cache effectiveness.
    pub stats: OptimizerStats,
}

/// The Lancet optimizer: compiler passes wired to a cluster's cost
/// models. See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Lancet {
    estimator: TimeEstimator,
    options: LancetOptions,
    memo: PartitionMemo,
}

impl Lancet {
    /// Builds an optimizer for a cluster of `gpus` devices described by
    /// `spec`. Profiles the communication cost model up to 1 GiB
    /// transfers (paper §3).
    pub fn new(spec: ClusterSpec, gpus: usize, options: LancetOptions) -> Self {
        let truth = CommModel::new(spec.clone());
        let a2a = CommCostModel::build(&truth, 1 << 30, gpus);
        let profiler = CachingOpProfiler::new(ComputeModel::new(spec.device.clone()));
        Lancet {
            estimator: TimeEstimator::new(profiler, a2a, truth, gpus),
            options,
            memo: PartitionMemo::new(),
        }
    }

    /// The compiler-side time estimator.
    pub fn estimator(&self) -> &TimeEstimator {
        &self.estimator
    }

    /// The options this optimizer was built with. Downstream plan
    /// builders use this to *check* preconditions instead of assuming
    /// them — e.g. KV-harvesting prefill plans require
    /// [`LancetOptions::decode_serving`]-style options (partition
    /// disabled) so graph tensor ids survive optimization.
    pub fn options(&self) -> &LancetOptions {
        &self.options
    }

    /// The structural memo shared by every [`optimize`](Self::optimize)
    /// call on this instance: repeated optimizations of structurally
    /// similar graphs (ablation sweeps, figure regeneration) reuse each
    /// other's partition-candidate evaluations.
    pub fn partition_memo(&self) -> &PartitionMemo {
        &self.memo
    }

    /// Runs the expert-placement search when a histogram is configured.
    /// Devices and node width come from the cluster the optimizer was
    /// built for, so the plan prices against the same topology as every
    /// other pass.
    fn search_placement(&self) -> Option<PlacementOutcome> {
        let search = self.options.placement.as_ref()?;
        let gpn = self.estimator.comm_truth().spec().net.gpus_per_node;
        let (plan, report) =
            optimize_placement(&search.traffic, self.estimator.gpus(), gpn, &search.options);
        Some(PlacementOutcome { plan, report })
    }

    /// Applies the tile-granular overlap rewrite when configured. Runs
    /// *after* the partition pass (it refines the partitioned plan's
    /// uniform segments) and *before* autodiff, so forward and training
    /// flows share it.
    fn apply_tile(&self, graph: &mut Graph) -> Result<Option<TileReport>> {
        let Some(sched) = &self.options.tile else { return Ok(None) };
        let (tiled, report) = apply_tile_schedule(graph, sched)?;
        *graph = tiled;
        Ok(Some(report))
    }

    /// Optimizes a *forward* graph into a full training iteration:
    /// operator partitioning (paper §5), autodiff, then dW scheduling
    /// (paper §4).
    ///
    /// # Errors
    ///
    /// Propagates IR/estimation failures from the passes.
    pub fn optimize(&self, forward: Graph) -> Result<OptimizeOutcome> {
        let started = Instant::now();
        let mut stats = OptimizerStats::default();
        let (mut graph, partition) = if self.options.disable_partition {
            (forward, None)
        } else {
            let (g, report) =
                partition_pass_with(&forward, &self.estimator, &self.options.partition, &self.memo)?;
            stats.partition_time = started.elapsed();
            stats.candidates_evaluated = report.memo_misses;
            stats.candidates_cached = report.memo_hits;
            stats.workers = report.workers;
            (g, Some(report))
        };
        let tile = self.apply_tile(&mut graph)?;
        let backward_started = Instant::now();
        build_backward(&mut graph, &self.options.backward)?;
        let prefetch = prefetch_allgathers(&mut graph, self.options.prefetch_lookahead)?;
        stats.backward_time = backward_started.elapsed();
        let dw_started = Instant::now();
        let dw = if self.options.disable_dw_schedule {
            None
        } else {
            Some(schedule_weight_gradients(&mut graph, &self.estimator)?)
        };
        stats.dw_time = dw_started.elapsed();
        let predicted_time = self.estimator.estimate(&graph)?.total;
        Ok(OptimizeOutcome {
            graph,
            predicted_time,
            partition,
            tile,
            placement: self.search_placement(),
            dw,
            prefetch,
            optimization_time: started.elapsed(),
            stats,
        })
    }

    /// Optimizes a *forward* graph for inference serving: the operator
    /// partition pass (paper §5) and the time estimate, with no autodiff,
    /// prefetch, or dW scheduling — none of which exist at serving time.
    ///
    /// This is the plan-building half of a serving runtime: the returned
    /// outcome is deterministic for a given graph and optimizer, so a
    /// plan cache (`lancet-serve`) can key it by model/batch/cluster and
    /// replay it for every request. Partition-candidate pricing reuses
    /// the same [`PartitionMemo`] as [`optimize`](Self::optimize), and
    /// the search/caching measurements land in the same
    /// [`OptimizerStats`].
    ///
    /// # Errors
    ///
    /// Propagates IR/estimation failures from the passes.
    pub fn optimize_forward(&self, forward: Graph) -> Result<OptimizeOutcome> {
        let started = Instant::now();
        let mut stats = OptimizerStats::default();
        let (mut graph, partition) = if self.options.disable_partition {
            (forward, None)
        } else {
            let (g, report) =
                partition_pass_with(&forward, &self.estimator, &self.options.partition, &self.memo)?;
            stats.partition_time = started.elapsed();
            stats.candidates_evaluated = report.memo_misses;
            stats.candidates_cached = report.memo_hits;
            stats.workers = report.workers;
            (g, Some(report))
        };
        let tile = self.apply_tile(&mut graph)?;
        let predicted_time = self.estimator.estimate(&graph)?.total;
        Ok(OptimizeOutcome {
            graph,
            predicted_time,
            partition,
            tile,
            placement: self.search_placement(),
            dw: None,
            prefetch: PrefetchReport { moved: 0 },
            optimization_time: started.elapsed(),
            stats,
        })
    }

    /// Builds the unoptimized training graph (autodiff only) and predicts
    /// its iteration time — the RAF baseline.
    ///
    /// # Errors
    ///
    /// Propagates IR/estimation failures.
    pub fn baseline(&self, forward: Graph) -> Result<OptimizeOutcome> {
        let started = Instant::now();
        let mut graph = forward;
        build_backward(&mut graph, &self.options.backward)?;
        let predicted_time = self.estimator.estimate(&graph)?.total;
        Ok(OptimizeOutcome {
            graph,
            predicted_time,
            partition: None,
            tile: None,
            placement: None,
            dw: None,
            prefetch: PrefetchReport { moved: 0 },
            optimization_time: started.elapsed(),
            stats: OptimizerStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::GateKind;
    use lancet_models::{build_forward, GptMoeConfig};

    fn forward(gate: GateKind) -> Graph {
        let cfg = GptMoeConfig::gpt2_s_moe(16, gate).with_layers(4).with_batch(8);
        build_forward(&cfg).unwrap().graph
    }

    #[test]
    fn optimize_beats_baseline_prediction() {
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let base = lancet.baseline(forward(GateKind::Switch)).unwrap();
        let opt = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert!(opt.graph.validate().is_ok());
        assert!(
            opt.predicted_time < base.predicted_time,
            "optimized {} !< baseline {}",
            opt.predicted_time,
            base.predicted_time
        );
        assert!(opt.partition.as_ref().is_some_and(|p| !p.ranges.is_empty()));
        assert!(opt.dw.as_ref().is_some_and(|d| d.assigned > 0));
    }

    #[test]
    fn ablation_toggles_apply() {
        let mut only_dw = LancetOptions::default();
        only_dw.disable_partition = true;
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, only_dw);
        let out = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert!(out.partition.is_none());
        assert!(out.dw.is_some());

        let mut only_part = LancetOptions::default();
        only_part.disable_dw_schedule = true;
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, only_part);
        let out = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert!(out.partition.is_some());
        assert!(out.dw.is_none());
    }

    #[test]
    fn optimization_time_recorded() {
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let out = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert!(out.optimization_time.as_nanos() > 0);
        assert!(out.stats.partition_time.as_nanos() > 0);
        assert!(out.stats.workers >= 1);
        let report = out.partition.unwrap();
        assert_eq!(out.stats.candidates_cached, report.memo_hits);
        assert_eq!(out.stats.candidates_evaluated, report.memo_misses);
    }

    /// The placement search rides along with `optimize`: a configured
    /// histogram yields a plan next to the partition report, priced on
    /// the optimizer's own cluster topology, deterministically.
    #[test]
    fn optimize_threads_placement_plan() {
        let traffic = ExpertTraffic::synthetic(4, 16, 1024, 1.2, 0.8, 4096, 0x91ACE);
        let mut options = LancetOptions::default();
        options.placement = Some(PlacementSearch::new(traffic));
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, options);
        let out = lancet.optimize(forward(GateKind::Switch)).unwrap();
        let placement = out.placement.expect("placement configured");
        assert_eq!(placement.plan.devices(), 16);
        assert!(placement.report.optimized.objective <= placement.report.uniform.objective);
        let again = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert_eq!(again.placement.unwrap(), placement, "search must be deterministic");
        // Unconfigured optimizers keep the implicit uniform placement.
        let plain = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        assert!(plain.optimize(forward(GateKind::Switch)).unwrap().placement.is_none());
    }

    /// `optimize_forward` is the serving-side flow: no backward pass in
    /// the result, deterministic across calls (the plan-cache contract),
    /// and it shares the instance's partition memo with `optimize`.
    #[test]
    fn optimize_forward_is_deterministic_and_forward_only() {
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let first = lancet.optimize_forward(forward(GateKind::Switch)).unwrap();
        assert!(first.dw.is_none());
        assert_eq!(first.prefetch.moved, 0);
        assert!(first.graph.validate().is_ok());
        // Forward-only: autodiff never ran, so no weight-gradient instrs.
        assert!(first.graph.weight_grad_positions().is_empty());

        let second = lancet.optimize_forward(forward(GateKind::Switch)).unwrap();
        assert_eq!(second.predicted_time, first.predicted_time);
        assert_eq!(
            lancet_ir::to_text(&second.graph),
            lancet_ir::to_text(&first.graph),
            "plan building must be deterministic"
        );
        // The second build is answered from the shared partition memo.
        assert_eq!(second.stats.candidates_evaluated, 0);
    }

    /// The memo lives on the `Lancet` instance: re-optimizing the same
    /// model is answered (almost) entirely from cache, with identical
    /// results.
    #[test]
    fn repeat_optimize_hits_partition_memo() {
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let first = lancet.optimize(forward(GateKind::Switch)).unwrap();
        let second = lancet.optimize(forward(GateKind::Switch)).unwrap();
        assert_eq!(second.stats.candidates_evaluated, 0, "second optimize must be fully cached");
        assert!(second.stats.cache_ratio() > 0.99);
        assert_eq!(second.predicted_time, first.predicted_time);
        assert_eq!(
            second.partition.as_ref().unwrap().ranges,
            first.partition.as_ref().unwrap().ranges
        );
        assert!(!lancet.partition_memo().is_empty());
    }
}
