//! FSDP all-gather prefetch scheduling (the "additional scheduling"
//! called out in the paper's §8 discussion of FSDP/ZeRO-3).
//!
//! FSDP materializes each sharded weight with an all-gather immediately
//! before its first use, serializing communication against compute. This
//! pass hoists every forward-pass all-gather `lookahead` gathers ahead of
//! its natural position, so the transfer of block *n + L*'s weights runs
//! while block *n* computes — bounded-lookahead prefetching keeps the
//! peak number of materialized weights (and hence memory) in check.

use lancet_ir::{Graph, InstrId, Op, Result};

/// Outcome of the prefetch pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchReport {
    /// Number of all-gather instructions hoisted.
    pub moved: usize,
}

/// Hoists forward-region all-gathers for prefetching. `lookahead = L`
/// issues gather *i* where gather *i − L* was originally issued; the first
/// `L` gathers move to the program start. A graph without all-gathers is
/// returned unchanged.
///
/// # Errors
///
/// Propagates reorder validation failures (would indicate a bug; the
/// produced order is always topologically valid because all-gathers
/// depend only on persistent weight shards).
///
/// # Example
///
/// ```
/// use lancet_core::prefetch_allgathers;
/// use lancet_ir::{build_backward, GateKind};
/// use lancet_models::{build_forward, GptMoeConfig};
///
/// let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_fsdp(true);
/// let mut graph = build_forward(&cfg)?.graph;
/// build_backward(&mut graph, &Default::default())?;
/// let report = prefetch_allgathers(&mut graph, 1)?;
/// assert!(report.moved > 0);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn prefetch_allgathers(graph: &mut Graph, lookahead: usize) -> Result<PrefetchReport> {
    let loss_pos = graph
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::CrossEntropy))
        .unwrap_or(graph.instrs().len());
    let gathers: Vec<usize> = graph
        .instrs()
        .iter()
        .enumerate()
        .filter(|(p, i)| *p < loss_pos && matches!(i.op, Op::AllGather { .. }))
        .map(|(p, _)| p)
        .collect();
    if gathers.is_empty() || lookahead == 0 {
        return Ok(PrefetchReport { moved: 0 });
    }

    // Anchor for gather i: the original position of gather i − L (its own
    // original position for the front group, which anchors at 0).
    let mut anchor_of: Vec<(usize, usize)> = Vec::new(); // (gather pos, anchor pos)
    for (i, &gpos) in gathers.iter().enumerate() {
        let anchor = if i < lookahead { 0 } else { gathers[i - lookahead] };
        anchor_of.push((gpos, anchor));
    }

    let ids: Vec<InstrId> = graph.instrs().iter().map(|i| i.id).collect();
    let is_moved: std::collections::HashSet<usize> = anchor_of.iter().map(|&(g, _)| g).collect();
    // Gathers to insert *before* each anchor position.
    let mut inserts: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for &(gpos, anchor) in &anchor_of {
        inserts.entry(anchor).or_default().push(gpos);
    }

    let mut order: Vec<InstrId> = Vec::with_capacity(ids.len());
    for pos in 0..ids.len() {
        if let Some(gs) = inserts.get(&pos) {
            for &gp in gs {
                order.push(ids[gp]);
            }
        }
        if !is_moved.contains(&pos) {
            order.push(ids[pos]);
        }
    }
    let moved = anchor_of.iter().filter(|&&(g, a)| a < g).count();
    graph.reorder(order)?;
    Ok(PrefetchReport { moved })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lancet, LancetOptions};
    use lancet_cost::ClusterSpec;
    use lancet_ir::{build_backward, BackwardOptions, GateKind};
    use lancet_models::{build_forward, GptMoeConfig};

    fn fsdp_training(gpus: usize) -> Graph {
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch)
            .with_layers(4)
            .with_batch(8)
            .with_fsdp(true);
        let mut g = build_forward(&cfg).unwrap().graph;
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        g
    }

    #[test]
    fn prefetch_hoists_gathers_and_stays_valid() {
        let mut g = fsdp_training(16);
        let before: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let report = prefetch_allgathers(&mut g, 1).unwrap();
        assert!(report.moved > 0);
        assert!(g.validate().is_ok());
        let mut after: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let mut sorted = before;
        sorted.sort();
        after.sort();
        assert_eq!(after, sorted);
    }

    #[test]
    fn prefetch_improves_estimated_time() {
        let mut g = fsdp_training(16);
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let before = lancet.estimator().estimate(&g).unwrap().total;
        prefetch_allgathers(&mut g, 1).unwrap();
        let after = lancet.estimator().estimate(&g).unwrap().total;
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn unbounded_lookahead_backfires_behind_alltoalls() {
        // Hoisting *every* gather to the front queues them all on the
        // communication stream ahead of the first MoE all-to-all, delaying
        // it — bounded lookahead avoids exactly this (and also bounds the
        // memory of materialized weights).
        let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
        let mut one = fsdp_training(16);
        prefetch_allgathers(&mut one, 1).unwrap();
        let t1 = lancet.estimator().estimate(&one).unwrap().total;
        let mut all = fsdp_training(16);
        prefetch_allgathers(&mut all, usize::MAX / 2).unwrap();
        let t_all = lancet.estimator().estimate(&all).unwrap().total;
        assert!(t1 <= t_all + 1e-12, "bounded lookahead {t1} should not lose to unbounded {t_all}");
    }

    #[test]
    fn noop_without_gathers() {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
        let mut g = build_forward(&cfg).unwrap().graph;
        let report = prefetch_allgathers(&mut g, 1).unwrap();
        assert_eq!(report.moved, 0);
    }

    #[test]
    fn zero_lookahead_is_noop() {
        let mut g = fsdp_training(16);
        let before: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        let report = prefetch_allgathers(&mut g, 0).unwrap();
        assert_eq!(report.moved, 0);
        let after: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
        assert_eq!(before, after);
    }
}
