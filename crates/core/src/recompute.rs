//! Activation recomputation (gradient checkpointing).
//!
//! Standard large-model training trades compute for memory: activations
//! inside a checkpoint segment are discarded after the forward pass and
//! recomputed from the segment's input just before its backward pass.
//! This pass rewrites a *training* graph accordingly: it clones each
//! segment's forward instructions immediately before the segment's first
//! backward consumer and redirects every backward instruction to the
//! recomputed tensors. The original activations then die at the end of
//! the forward pass, which the liveness-based memory estimator sees
//! directly; the duplicated instructions surface the extra compute in the
//! simulator.

use lancet_ir::{Graph, Instr, IrError, Result, Role, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Outcome of the recomputation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecomputeReport {
    /// Number of checkpoint segments rewritten.
    pub segments: usize,
    /// Number of forward instructions duplicated.
    pub recomputed_instrs: usize,
}

/// Rewrites `graph` so the forward activations inside each `segment`
/// (disjoint, ascending ranges of forward-region positions) are
/// recomputed before their backward consumers instead of kept alive.
///
/// Communication instructions inside a segment are recomputed too (their
/// collectives re-run — as real checkpointing implementations do for MoE
/// layers, re-dispatching tokens).
///
/// # Errors
///
/// Returns [`IrError::InvalidTransform`] for overlapping/unsorted
/// segments, segments outside the forward region, or segments whose
/// tensors are consumed by *later forward* instructions outside any
/// segment continuation (checkpoint boundaries must cut the graph at
/// tensors that flow forward, which block boundaries do).
///
/// # Example
///
/// ```
/// use lancet_core::recompute_segments;
/// use lancet_ir::{build_backward, GateKind};
/// use lancet_models::{block_boundaries, build_forward, GptMoeConfig};
/// use lancet_sim::estimate_peak_memory;
///
/// let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_layers(3);
/// let mut graph = build_forward(&cfg)?.graph;
/// build_backward(&mut graph, &Default::default())?;
/// let before = estimate_peak_memory(&graph);
/// let segments = block_boundaries(&graph);
/// recompute_segments(&mut graph, &segments)?;
/// assert!(estimate_peak_memory(&graph) < before);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn recompute_segments(graph: &mut Graph, segments: &[Range<usize>]) -> Result<RecomputeReport> {
    for w in segments.windows(2) {
        if w[1].start < w[0].end {
            return Err(IrError::InvalidTransform("segments must be sorted and disjoint".into()));
        }
    }
    let instrs: Vec<Instr> = graph.instrs().to_vec();
    let loss_pos = instrs
        .iter()
        .position(|i| matches!(i.op, lancet_ir::Op::CrossEntropy))
        .unwrap_or(instrs.len());
    for s in segments {
        if s.end > loss_pos || s.is_empty() {
            return Err(IrError::InvalidTransform(format!(
                "segment {s:?} outside forward region (loss at {loss_pos})"
            )));
        }
    }

    // Rebuild the whole graph with recompute clones spliced in.
    let mut dst = Graph::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    for t in graph.tensors() {
        if matches!(t.kind, TensorKind::Input | TensorKind::Weight) {
            let id = dst.add_tensor(t.name.clone(), t.shape.clone(), t.kind);
            remap.insert(t.id, id);
        }
    }
    // For tensors produced inside a segment: the id backward consumers
    // should use after recomputation.
    let mut recomputed: HashMap<TensorId, TensorId> = HashMap::new();
    let mut recomputed_instrs = 0usize;

    // For each segment: internal tensors and the position of the first
    // backward consumer.
    struct Seg {
        range: Range<usize>,
        splice_at: usize,
    }
    let users = graph.user_positions();
    let mut segs: Vec<Seg> = Vec::new();
    for range in segments {
        // Tensors this segment produces; their backward consumers define
        // the splice point.
        let internal: HashSet<TensorId> = instrs[range.clone()]
            .iter()
            .flat_map(|i| i.outputs.iter().copied())
            .collect();
        // Tensors used by later *forward* instructions keep their original
        // (live) values — only backward consumers switch to recomputed
        // copies. The first backward consumer decides the splice point.
        let splice_at = internal
            .iter()
            .flat_map(|t| users.get(t).into_iter().flatten())
            .copied()
            .filter(|&p| p >= loss_pos)
            .min()
            .unwrap_or(instrs.len());
        segs.push(Seg { range: range.clone(), splice_at });
    }

    // Map from splice position to segment indices spliced there (later
    // segments first: backward visits them in reverse).
    let mut splice_map: HashMap<usize, Vec<usize>> = HashMap::new();
    for (idx, s) in segs.iter().enumerate() {
        splice_map.entry(s.splice_at).or_default().push(idx);
    }

    let in_backward = |pos: usize| pos >= loss_pos;
    for (pos, instr) in instrs.iter().enumerate() {
        // Splice recompute clones before the first backward consumer.
        if let Some(seg_idxs) = splice_map.get(&pos) {
            for &si in seg_idxs {
                let seg = &segs[si];
                for fwd in &instrs[seg.range.clone()] {
                    let inputs: Vec<TensorId> = fwd
                        .inputs
                        .iter()
                        .map(|t| recomputed.get(t).copied().unwrap_or_else(|| remap[t]))
                        .collect();
                    let outs = dst.emit_multi(fwd.op.clone(), &inputs, Role::Forward)?;
                    recomputed_instrs += 1;
                    for (&o, n) in fwd.outputs.iter().zip(outs) {
                        recomputed.insert(o, n);
                    }
                }
            }
        }
        // Replay the original instruction; backward instructions read the
        // recomputed tensors where available.
        let inputs: Vec<TensorId> = instr
            .inputs
            .iter()
            .map(|t| {
                if in_backward(pos) {
                    recomputed.get(t).copied().unwrap_or_else(|| remap[t])
                } else {
                    remap[t]
                }
            })
            .collect();
        let outs = dst.emit_multi(instr.op.clone(), &inputs, instr.role)?;
        for (&o, n) in instr.outputs.iter().zip(outs) {
            remap.insert(o, n);
        }
    }
    dst.validate()?;
    *graph = dst;
    Ok(RecomputeReport { segments: segments.len(), recomputed_instrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{build_backward, BackwardOptions, GateKind, Op};
    use lancet_models::{block_boundaries, build_forward, GptMoeConfig};
    use lancet_sim::estimate_peak_memory;

    fn training(layers: usize) -> Graph {
        let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch)
            .with_layers(layers)
            .with_batch(8);
        let mut g = build_forward(&cfg).unwrap().graph;
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        g
    }

    #[test]
    fn recompute_reduces_peak_memory_and_adds_compute() {
        let mut g = training(4);
        let before_mem = estimate_peak_memory(&g);
        let before_instrs = g.instrs().len();
        let segments = block_boundaries(&g);
        assert!(segments.len() >= 4);
        let report = recompute_segments(&mut g, &segments).unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(report.segments, segments.len());
        let after_mem = estimate_peak_memory(&g);
        assert!(
            after_mem < before_mem,
            "peak memory {after_mem} !< {before_mem}"
        );
        assert!(g.instrs().len() > before_instrs);
    }

    #[test]
    fn recompute_rejects_bad_segments() {
        let mut g = training(2);
        let loss = g.instrs().iter().position(|i| matches!(i.op, Op::CrossEntropy)).unwrap();
        // Overlapping.
        assert!(recompute_segments(&mut g, &[0..5, 3..8]).is_err());
        // Crossing the loss.
        assert!(recompute_segments(&mut g, &[loss - 1..loss + 2]).is_err());
        // Empty.
        assert!(recompute_segments(&mut g, &[4..4]).is_err());
    }

    #[test]
    fn recompute_preserves_instruction_semantics_numerically() {
        use lancet_exec::{Bindings, Executor};
        use lancet_tensor::{Tensor, TensorRng};
        let devices = 2;
        let cfg = GptMoeConfig::tiny(devices, GateKind::Switch);
        let mut g = build_forward(&cfg).unwrap().graph;
        build_backward(
            &mut g,
            &BackwardOptions { sgd_lr: Some(0.1), optimizer: Default::default(), allreduce_grads: false },
        )
        .unwrap();
        // Bind weights by *name* (stable across the rebuild, which
        // renumbers tensor ids).
        let name_seed = |name: &str| -> u64 {
            name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
            })
        };
        let bind = move |g: &Graph| -> Bindings {
            let mut b = Bindings::new(devices);
            for t in g.tensors() {
                match t.kind {
                    TensorKind::Weight => {
                        if t.name.contains("expert") {
                            for d in 0..devices {
                                let mut rng = TensorRng::seed(name_seed(&t.name) ^ (d as u64 + 1));
                                b.set(d, t.id, rng.normal(t.shape.clone(), 0.25));
                            }
                        } else {
                            let mut rng = TensorRng::seed(name_seed(&t.name));
                            b.set_all(t.id, rng.normal(t.shape.clone(), 0.25));
                        }
                    }
                    TensorKind::Input => {
                        for d in 0..devices {
                            let vals: Vec<f32> =
                                (0..t.shape.volume()).map(|i| ((i * 3 + d) % 7) as f32).collect();
                            b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                        }
                    }
                    _ => {}
                }
            }
            b
        };
        let run = |g: &Graph| -> Vec<f32> {
            let out = Executor::new(g, devices).unwrap().run(bind(g)).unwrap();
            g.instrs()
                .iter()
                .filter(|i| matches!(i.op, Op::SgdUpdate { .. }))
                .flat_map(|i| out.get(0, i.outputs[0]).unwrap().data().to_vec())
                .collect()
        };
        let reference = run(&g);
        let segments = block_boundaries(&g);
        let mut rg = g.clone();
        recompute_segments(&mut rg, &segments).unwrap();
        let got = run(&rg);
        assert_eq!(reference, got, "recompute changed training results");
    }

    #[test]
    fn simulated_time_increases_with_recompute() {
        use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
        use lancet_sim::{SimConfig, Simulator};
        let mut g = training(4);
        let spec = ClusterSpec::v100(2);
        let sim = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16),
        );
        let before = sim.simulate(&g);
        let segments = block_boundaries(&g);
        recompute_segments(&mut g, &segments).unwrap();
        let after = sim.simulate(&g);
        assert!(after.compute_busy > before.compute_busy);
        assert!(after.iteration_time > before.iteration_time);
        assert!(after.peak_memory < before.peak_memory);
    }
}
