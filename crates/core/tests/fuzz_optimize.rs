//! Robustness fuzz: `Lancet::optimize` must succeed, produce a valid
//! graph, and never regress the predicted iteration time across random
//! model configurations, gates, and hyper-parameters.
//!
//! Runs 10 cases by default; set `LANCET_PROPTEST_CASES` to raise the
//! coverage (e.g. a long CI fuzz sweep) without editing this file.

use lancet_core::{Lancet, LancetOptions, PartitionOptions};
use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_ir::GateKind;
use lancet_models::{build_forward, GptMoeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::env_cases(10))]

    #[test]
    fn optimize_never_fails_or_regresses(
        layers in 2usize..6,
        batch in 2usize..12,
        gate_sel in 0usize..4,
        cluster_sel in 0usize..2,
        nodes_pow in 0u32..3,
        rho_pow in 1u32..4,
        iota in 6usize..30,
        fsdp in any::<bool>(),
        shared in any::<bool>(),
    ) {
        let gate = match gate_sel {
            0 => GateKind::Switch,
            1 => GateKind::TopK { k: 2 },
            2 => GateKind::BatchPrioritized,
            _ => GateKind::Hash,
        };
        let cluster = if cluster_sel == 0 { ClusterKind::V100 } else { ClusterKind::A100 };
        let nodes = 1usize << nodes_pow;
        let gpus = nodes * 8;
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, gate)
            .with_layers(layers)
            .with_batch(batch)
            .with_fsdp(fsdp)
            .with_shared_expert(shared);
        let options = LancetOptions {
            partition: PartitionOptions {
                max_partitions: 1 << rho_pow,
                groups_per_gap: 5,
                max_range_groups: iota,
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = ClusterSpec::of(cluster, nodes);
        let lancet = Lancet::new(spec, gpus, options);
        let fwd = build_forward(&cfg).unwrap().graph;

        let base = lancet.baseline(fwd.clone()).unwrap();
        let opt = lancet.optimize(fwd).unwrap();
        prop_assert!(opt.graph.validate().is_ok());
        prop_assert!(
            opt.predicted_time <= base.predicted_time + 1e-9,
            "optimize regressed: {} > {} (gate {gate:?}, layers {layers}, batch {batch}, gpus {gpus})",
            opt.predicted_time,
            base.predicted_time
        );
    }
}
