//! Property-based conformance for the tile scheduler: for arbitrary MoE
//! shapes, capacities and tile counts, `apply_tile_schedule` produces a
//! valid graph whose executed forward is bit-identical to the untiled
//! one; `tiles ≤ 1` is the exact identity. Case count honors
//! `LANCET_PROPTEST_CASES` like the other property suites.

use lancet_core::{apply_tile_schedule, TileSchedule};
use lancet_exec::{Bindings, Executor};
use lancet_ir::{GateKind, Graph, Op, Role, TensorId};
use lancet_tensor::TensorRng;
use proptest::prelude::*;

/// The canonical uniform MoE segment: dispatch all-to-all, expert layout
/// and GEMM chain, combine all-to-all — the shape the partition pass
/// leaves behind and the tile scheduler splits.
fn moe_forward(
    batch: usize,
    seq: usize,
    hidden: usize,
    gpus: usize,
    cap: usize,
) -> (Graph, TensorId) {
    let experts = 2 * gpus;
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, seq, hidden]);
    let wg = g.weight("gate.w", vec![hidden, experts]);
    let w1 = g.weight("expert.w1", vec![2, hidden, 2 * hidden]);
    let w2 = g.weight("expert.w2", vec![2, 2 * hidden, hidden]);
    let pre = g.emit(Op::Gelu, &[x], Role::Forward).unwrap();
    let gate = g
        .emit_multi(Op::Gate { kind: GateKind::Switch, experts, capacity: cap }, &[pre, wg], Role::Forward)
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts, capacity: cap }, &[pre, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let t = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus }, &[t], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(Op::MoeGather { experts, capacity: cap, batch, seq }, &[back, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let out = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
    (g, out)
}

/// Binds weights and inputs by *name*, not tensor id — the tile rewrite
/// renumbers ids, so id-keyed seeding would bind different values to the
/// two graphs and make bit-identity vacuously false.
fn run_forward(g: &Graph, out: TensorId, gpus: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut b = Bindings::new(gpus);
    for t in g.tensors() {
        match t.kind {
            lancet_ir::TensorKind::Weight => {
                if t.name.contains("expert") {
                    for d in 0..gpus {
                        let mut rng = TensorRng::seed(1000 + d as u64);
                        b.set(d, t.id, rng.normal(t.shape.clone(), 0.3));
                    }
                } else {
                    let mut rng = TensorRng::seed(2000);
                    b.set_all(t.id, rng.uniform(t.shape.clone(), -1.0, 1.0));
                }
            }
            lancet_ir::TensorKind::Input => {
                for d in 0..gpus {
                    let mut rng = TensorRng::seed(seed ^ (d as u64 + 7));
                    b.set(d, t.id, rng.uniform(t.shape.clone(), -1.0, 1.0));
                }
            }
            _ => {}
        }
    }
    let res = Executor::new(g, gpus).unwrap().run(b).unwrap();
    (0..gpus)
        .map(|d| res.get(d, out).unwrap().data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::env_cases(12))]

    /// For any shape, capacity and tile count, the tiled graph validates
    /// and its executed forward is bit-identical to the untiled graph's.
    #[test]
    fn tiled_forward_is_bit_identical(
        batch in 2usize..6,
        seq in 1usize..4,
        hidden_quarters in 1usize..3,
        cap in 2usize..9,
        tiles in 2usize..9,
        seed in any::<u64>(),
    ) {
        let gpus = 2;
        let hidden = hidden_quarters * 4;
        let (g, out) = moe_forward(batch, seq, hidden, gpus, cap);
        let (tg, report) = apply_tile_schedule(&g, &TileSchedule::new(tiles)).unwrap();
        prop_assert!(tg.validate().is_ok());
        prop_assert_eq!(report.segments, 1, "the MoE segment must tile");
        let t_out = tg.instrs().last().unwrap().outputs[0];
        let reference = run_forward(&g, out, gpus, seed);
        let got = run_forward(&tg, t_out, gpus, seed);
        prop_assert_eq!(reference, got);
    }

    /// `tiles ≤ 1` is the exact identity: same printed program, zero
    /// segments, zero added ops.
    #[test]
    fn tiles_at_most_one_is_identity(
        batch in 2usize..6,
        cap in 2usize..9,
        tiles in 0usize..2,
    ) {
        let (g, _) = moe_forward(batch, 2, 8, 2, cap);
        let (tg, report) = apply_tile_schedule(&g, &TileSchedule::new(tiles)).unwrap();
        prop_assert_eq!(lancet_ir::to_text(&g), lancet_ir::to_text(&tg));
        prop_assert_eq!(report.segments, 0);
        prop_assert_eq!(report.ops_added, 0);
    }

    /// Structural accounting: the rewrite adds exactly `ops_added`
    /// instructions, the effective tile count never exceeds the capacity,
    /// and per-stream op multiplicity matches the schedule — K slices,
    /// 2K all-to-alls (K out, K back), K copies of each member, and one
    /// concat per segment.
    #[test]
    fn tile_rewrite_op_accounting(
        cap in 2usize..9,
        tiles in 2usize..9,
    ) {
        let (g, _) = moe_forward(4, 2, 8, 2, cap);
        let (tg, report) = apply_tile_schedule(&g, &TileSchedule::new(tiles)).unwrap();
        let k = report.tiles.min(cap).max(1);
        prop_assert_eq!(tg.instrs().len(), g.instrs().len() + report.ops_added);
        prop_assert!(k <= cap);
        let count = |g: &Graph, pred: &dyn Fn(&Op) -> bool| {
            g.instrs().iter().filter(|i| pred(&i.op)).count()
        };
        let slices = count(&tg, &|o| matches!(o, Op::Slice { .. }));
        let concats = count(&tg, &|o| matches!(o, Op::Concat { .. }));
        let a2a = count(&tg, &|o| matches!(o, Op::AllToAll));
        let bmm = count(&tg, &|o| matches!(o, Op::BatchedMatMul { .. }));
        prop_assert_eq!(slices, k);
        prop_assert_eq!(concats, 1);
        prop_assert_eq!(a2a, 2 * k);
        prop_assert_eq!(bmm, 2 * k, "each of the 2 member GEMMs is replayed per tile");
    }
}
