//! Property-based tests for the compiler passes: the partition pass is
//! semantics-preserving for arbitrary MoE shapes/chunkings, and the dW
//! pass always produces a valid permutation of the same instructions.

use lancet_core::{
    apply_partitions, infer_axes, schedule_weight_gradients, Lancet, LancetOptions,
    PartitionSpec,
};
use lancet_cost::ClusterSpec;
use lancet_exec::{Bindings, Executor};
use lancet_ir::{GateKind, Graph, Op, Role, TensorId};
use lancet_models::{build_training, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// Builds the canonical MoE-layer forward graph surrounded by dense ops.
fn moe_forward(batch: usize, seq: usize, hidden: usize, gpus: usize, cap: usize) -> (Graph, TensorId, TensorId) {
    let experts = 2 * gpus;
    let mut g = Graph::new();
    let x = g.input("x", vec![batch, seq, hidden]);
    let wg = g.weight("gate.w", vec![hidden, experts]);
    let w1 = g.weight("expert.w1", vec![2, hidden, 2 * hidden]);
    let w2 = g.weight("expert.w2", vec![2, 2 * hidden, hidden]);
    let pre = g.emit(Op::Gelu, &[x], Role::Forward).unwrap();
    let gate = g
        .emit_multi(Op::Gate { kind: GateKind::Switch, experts, capacity: cap }, &[pre, wg], Role::Forward)
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts, capacity: cap }, &[pre, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let t = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus }, &[t], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(Op::MoeGather { experts, capacity: cap, batch, seq }, &[back, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let out = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
    (g, x, out)
}

fn run_graph(g: &Graph, x: TensorId, out: TensorId, gpus: usize, seed: u64) -> Vec<Tensor> {
    let mut b = Bindings::new(gpus);
    for t in g.tensors() {
        match t.kind {
            lancet_ir::TensorKind::Weight => {
                if t.name.contains("expert") {
                    for d in 0..gpus {
                        let mut rng = TensorRng::seed(1000 + d as u64);
                        b.set(d, t.id, rng.normal(t.shape.clone(), 0.3));
                    }
                } else {
                    let mut rng = TensorRng::seed(2000);
                    b.set_all(t.id, rng.uniform(t.shape.clone(), -1.0, 1.0));
                }
            }
            lancet_ir::TensorKind::Input => {
                for d in 0..gpus {
                    let mut rng = TensorRng::seed(seed ^ (d as u64 + 7));
                    b.set(d, t.id, rng.uniform(t.shape.clone(), -1.0, 1.0));
                }
            }
            _ => {}
        }
    }
    let _ = x;
    let res = Executor::new(g, gpus).unwrap().run(b).unwrap();
    (0..gpus).map(|d| res.get(d, out).unwrap().clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::env_cases(12))]

    /// For any shape, capacity and chunk count, the partition pass's
    /// generated pipeline is bit-identical to the original MoE layer.
    #[test]
    fn partition_codegen_is_semantics_preserving(
        batch in 2usize..6,
        seq in 1usize..4,
        hidden_quarters in 1usize..3,
        cap in 2usize..6,
        parts in 2usize..5,
        seed in any::<u64>(),
    ) {
        let gpus = 2;
        let hidden = hidden_quarters * 4;
        let parts = parts.min(batch);
        let (g, x, out) = moe_forward(batch, seq, hidden, gpus, cap);
        // The MoE pipeline spans instructions 1..=10 (gate … gather); the
        // trailing Gelu stays outside and consumes the reconstruction.
        let axes = infer_axes(&g, 1..11).expect("pipeline partitionable");
        let spec = PartitionSpec { range: 1..11, parts, axes };
        let (gp, xp, outp) = {
            let gp = apply_partitions(&g, &[spec]).unwrap();
            // Find the matching tensors by name/position in the new graph.
            let xp = gp.tensors().iter().find(|t| t.name == "x").unwrap().id;
            let outp = gp.instrs().last().unwrap().outputs[0];
            (gp, xp, outp)
        };
        let reference = run_graph(&g, x, out, gpus, seed);
        let got = run_graph(&gp, xp, outp, gpus, seed);
        prop_assert_eq!(reference, got);
    }

    /// The dW pass yields a valid permutation of the identical instruction
    /// set for arbitrary model shapes.
    #[test]
    fn dw_pass_is_a_valid_permutation(layers in 2usize..6, gpus_pow in 1usize..3) {
        let gpus = 1 << gpus_pow;
        let cfg = GptMoeConfig::tiny(gpus, GateKind::Switch).with_layers(layers);
        let mut m = build_training(&cfg, &Default::default()).unwrap();
        let before: Vec<_> = {
            let mut ids: Vec<_> = m.graph.instrs().iter().map(|i| i.id).collect();
            ids.sort();
            ids
        };
        let lancet = Lancet::new(ClusterSpec::v100(1), gpus, LancetOptions::default());
        schedule_weight_gradients(&mut m.graph, lancet.estimator()).unwrap();
        prop_assert!(m.graph.validate().is_ok());
        let mut after: Vec<_> = m.graph.instrs().iter().map(|i| i.id).collect();
        after.sort();
        prop_assert_eq!(before, after);
    }

    /// The dW pass never increases the estimated iteration time.
    #[test]
    fn dw_pass_never_hurts_estimate(layers in 2usize..5) {
        let cfg = GptMoeConfig::tiny(4, GateKind::Switch).with_layers(layers);
        let mut m = build_training(&cfg, &Default::default()).unwrap();
        let lancet = Lancet::new(ClusterSpec::v100(1), 4, LancetOptions::default());
        let before = lancet.estimator().estimate(&m.graph).unwrap().total;
        schedule_weight_gradients(&mut m.graph, lancet.estimator()).unwrap();
        let after = lancet.estimator().estimate(&m.graph).unwrap().total;
        prop_assert!(after <= before + 1e-12, "{} > {}", after, before);
    }
}
