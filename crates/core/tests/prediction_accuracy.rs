//! Meta-test of the cost model (paper Fig. 14): across random
//! configurations, the compiler's predicted iteration time stays within a
//! tight band of the simulator's measurement. The only modelled
//! divergences are comm-curve interpolation and the static-shape `C/n`
//! approximation for irregular all-to-alls, so the band is narrow.

use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterKind, ClusterSpec, CommModel, ComputeModel};
use lancet_ir::GateKind;
use lancet_models::{build_forward, GptMoeConfig};
use lancet_sim::{SimConfig, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::env_cases(8))]

    #[test]
    fn prediction_within_ten_percent(
        layers in 2usize..6,
        batch in 4usize..16,
        nodes_pow in 0u32..3,
        cluster_sel in 0usize..2,
        gate_sel in 0usize..3,
    ) {
        let gate = match gate_sel {
            0 => GateKind::Switch,
            1 => GateKind::TopK { k: 2 },
            _ => GateKind::BatchPrioritized,
        };
        let cluster = if cluster_sel == 0 { ClusterKind::V100 } else { ClusterKind::A100 };
        let nodes = 1usize << nodes_pow;
        let gpus = nodes * 8;
        let cfg = GptMoeConfig::gpt2_s_moe(gpus, gate).with_layers(layers).with_batch(batch);
        let spec = ClusterSpec::of(cluster, nodes);
        let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
        let outcome = lancet.optimize(build_forward(&cfg).unwrap().graph).unwrap();
        let sim = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(gpus),
        );
        let measured = sim.simulate(&outcome.graph).iteration_time;
        let err = (outcome.predicted_time - measured).abs() / measured;
        prop_assert!(
            err < 0.10,
            "prediction error {:.1}% (gate {gate:?}, layers {layers}, batch {batch}, {gpus} {cluster:?} gpus)",
            err * 100.0
        );
    }
}
