//! End-to-end semantics preservation: a full Lancet optimization
//! (partition pass → autodiff → dW scheduling) must leave training
//! mathematics untouched. We execute the optimized and unoptimized
//! training graphs of a tiny GPT-MoE on the numerical executor with
//! identical (name-keyed) weights and inputs, then compare the loss
//! (bit-exact: the pipelined forward computes identical values) and the
//! SGD-updated weights (tolerance: gradient accumulation order differs).

use lancet_core::{Lancet, LancetOptions, PartitionOptions};
use lancet_cost::ClusterSpec;
use lancet_exec::{Bindings, Executor};
use lancet_ir::{BackwardOptions, GateKind, Graph, Op, TensorId, TensorKind};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};
use std::collections::HashMap;

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Binds weights deterministically by *name* (stable across graph
/// rewrites that renumber tensor ids) and inputs per device.
fn bind(graph: &Graph, devices: usize) -> Bindings {
    let mut b = Bindings::new(devices);
    for t in graph.tensors() {
        match t.kind {
            TensorKind::Weight => {
                let fan_in = if t.shape.rank() >= 2 { t.shape.dim(t.shape.rank() - 2) } else { 4 };
                let std = 1.0 / (fan_in as f32).sqrt();
                if t.name.contains("expert") {
                    for d in 0..devices {
                        let mut rng = TensorRng::seed(name_seed(&t.name) ^ (d as u64 + 1));
                        b.set(d, t.id, rng.normal(t.shape.clone(), std));
                    }
                } else {
                    let mut rng = TensorRng::seed(name_seed(&t.name));
                    b.set_all(t.id, rng.normal(t.shape.clone(), std));
                }
            }
            TensorKind::Input => {
                for d in 0..devices {
                    let mut rng = TensorRng::seed(name_seed(&t.name) ^ (0x9000 + d as u64));
                    let vals: Vec<f32> =
                        (0..t.shape.volume()).map(|_| (rng.below(7)) as f32).collect();
                    b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                }
            }
            _ => {}
        }
    }
    b
}

/// Runs a training graph and returns (loss per device, updated weight per
/// (name, device)).
fn run(graph: &Graph, devices: usize) -> (Vec<f32>, HashMap<(String, usize), Tensor>) {
    let bindings = bind(graph, devices);
    let out = Executor::new(graph, devices).unwrap().run(bindings).unwrap();
    let loss_tensor: TensorId = graph
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .unwrap();
    let losses: Vec<f32> = (0..devices)
        .map(|d| out.get(d, loss_tensor).unwrap().data()[0])
        .collect();
    let mut updated = HashMap::new();
    for instr in graph.instrs() {
        if matches!(instr.op, Op::SgdUpdate { .. }) {
            let wname = graph.tensor(instr.inputs[0]).name.clone();
            for d in 0..devices {
                updated.insert((wname.clone(), d), out.get(d, instr.outputs[0]).unwrap().clone());
            }
        }
    }
    (losses, updated)
}

fn options() -> LancetOptions {
    LancetOptions {
        disable_dw_schedule: false,
        disable_partition: false,
        partition: PartitionOptions {
            max_partitions: 2,
            groups_per_gap: 3,
            max_range_groups: 24,
            ..Default::default()
        },
        backward: BackwardOptions { sgd_lr: Some(0.05), optimizer: Default::default(), allreduce_grads: false },
        prefetch_lookahead: 1,
        placement: None,
    }
}

/// Builds the optimized training graph with the MoE pipeline *forcibly*
/// partitioned (at toy scale the DP would rightly decline — partition
/// overhead exceeds the benefit — but the semantics test must exercise
/// the transformed pipeline), plus the unoptimized baseline.
fn optimized_and_baseline(gate: GateKind, gpus: usize) -> (Graph, Graph) {
    use lancet_core::{apply_partitions, infer_axes, schedule_weight_gradients, PartitionSpec};
    use lancet_ir::build_backward;

    let cfg = GptMoeConfig::tiny(gpus, gate);
    let fwd = build_forward(&cfg).unwrap().graph;

    // Locate the MoE pipeline: gate (or dispatch, for BPR) … gather.
    let start_op = |i: &lancet_ir::Instr| match gate {
        GateKind::BatchPrioritized => matches!(i.op, Op::MoeDispatch { .. }),
        _ => matches!(i.op, Op::Gate { .. }),
    };
    let start = fwd.instrs().iter().position(start_op).unwrap();
    let end = fwd
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::MoeGather { .. }))
        .unwrap()
        + 1;
    let axes = infer_axes(&fwd, start..end).expect("MoE pipeline must be partitionable");
    let spec = PartitionSpec { range: start..end, parts: 2, axes };
    let mut opt = apply_partitions(&fwd, &[spec]).unwrap();
    let backward = BackwardOptions { sgd_lr: Some(0.05), optimizer: Default::default(), allreduce_grads: false };
    build_backward(&mut opt, &backward).unwrap();
    let lancet = Lancet::new(ClusterSpec::v100(1), gpus, options());
    schedule_weight_gradients(&mut opt, lancet.estimator()).unwrap();

    let mut base = fwd;
    build_backward(&mut base, &backward).unwrap();
    (opt, base)
}

#[test]
fn optimized_training_graph_preserves_loss_and_updates_switch() {
    let (opt, base) = optimized_and_baseline(GateKind::Switch, 2);
    let (loss_opt, w_opt) = run(&opt, 2);
    let (loss_base, w_base) = run(&base, 2);
    assert_eq!(loss_opt, loss_base, "forward loss must be bit-identical");
    assert_eq!(w_opt.len(), w_base.len());
    for (key, a) in &w_opt {
        let b = &w_base[key];
        assert!(
            a.allclose_with(b, 1e-4, 1e-3),
            "updated weight {key:?} differs: max diff {:?}",
            a.max_abs_diff(b)
        );
    }
}

#[test]
fn optimized_training_graph_preserves_loss_and_updates_bpr() {
    let (opt, base) = optimized_and_baseline(GateKind::BatchPrioritized, 2);
    let (loss_opt, w_opt) = run(&opt, 2);
    let (loss_base, w_base) = run(&base, 2);
    assert_eq!(loss_opt, loss_base);
    for (key, a) in &w_opt {
        assert!(a.allclose_with(&w_base[key], 1e-4, 1e-3), "weight {key:?} differs");
    }
}

#[test]
fn optimized_training_graph_preserves_loss_and_updates_topk() {
    // GShard-style top-2 routing through the full optimization pipeline.
    let (opt, base) = optimized_and_baseline(GateKind::TopK { k: 2 }, 2);
    let (loss_opt, w_opt) = run(&opt, 2);
    let (loss_base, w_base) = run(&base, 2);
    assert_eq!(loss_opt, loss_base, "top-2 forward loss must be bit-identical");
    for (key, a) in &w_opt {
        assert!(a.allclose_with(&w_base[key], 1e-4, 1e-3), "weight {key:?} differs");
    }
}

#[test]
fn dw_schedule_alone_is_bit_exact() {
    // Pure reordering cannot change any numerics at all.
    let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
    let fwd = build_forward(&cfg).unwrap().graph;
    let mut opts = options();
    opts.disable_partition = true;
    let lancet = Lancet::new(ClusterSpec::v100(1), 2, opts);
    let opt = lancet.optimize(fwd.clone()).unwrap();
    let base = lancet.baseline(fwd).unwrap();
    let (loss_opt, w_opt) = run(&opt.graph, 2);
    let (loss_base, w_base) = run(&base.graph, 2);
    assert_eq!(loss_opt, loss_base);
    for (key, a) in &w_opt {
        assert_eq!(a, &w_base[key], "reordering changed weight {key:?}");
    }
}

#[test]
fn partitioning_actually_happened() {
    // Guard against the semantics tests passing vacuously: the optimized
    // graph must really contain the pipelined (irregular) MoE layer, and
    // its backward must contain the irregular all-to-all adjoints.
    let (opt, _) = optimized_and_baseline(GateKind::Switch, 2);
    let n_irr = opt.instrs().iter().filter(|i| matches!(i.op, Op::AllToAllIrr)).count();
    // 2 chunks × 2 forward a2as + their backward adjoints = 8.
    assert_eq!(n_irr, 8, "expected fully partitioned forward+backward");
    assert!(opt.instrs().iter().any(|i| matches!(i.op, Op::GateChunk { .. })));
}
