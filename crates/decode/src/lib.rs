//! `lancet-decode`: autoregressive decode serving with a KV cache and
//! continuous batching.
//!
//! `lancet-serve` answers one-shot forward requests; this crate serves
//! *generation*: a prompt comes in, tokens stream back one at a time,
//! and each token costs a full pass whose attention must see everything
//! generated so far. Three pieces make that efficient and correct:
//!
//! 1. a **KV arena** ([`KvArena`]) holding per-sequence, per-layer
//!    key/value rows with reservation-based admission, slot reuse, and
//!    transactional per-step commit/rollback;
//! 2. a **decode scheduler** ([`DecodeRuntime`]) that advances all
//!    in-flight sequences in lock-step steps and — in
//!    [`BatchMode::Continuous`] — lets new requests *join the running
//!    batch at step boundaries* instead of waiting for a batch window
//!    to drain, with prompts prefilled through serve's plan cache in
//!    power-of-two length buckets;
//! 3. **streamed responses** ([`StreamTicket`]) carrying
//!    sequence-numbered tokens whose emit-by-index idempotence upgrades
//!    serve's exactly-once *response* contract to exactly-once *per
//!    token* under deterministic fault injection.
//!
//! The load-bearing invariant, inherited from serve and proven by this
//! crate's property tests, is **bit-identity**: a KV-cached decode step
//! through [`DecodeModel`] produces the same logits bits as re-running
//! the full sequence through the graph executor, whether the sequence
//! runs solo or batched with others, prefilled exactly or through a
//! padded bucket. Batching and caching change *when* work happens,
//! never *what* comes out.
//!
//! # Example
//!
//! ```
//! use lancet_ir::GateKind;
//! use lancet_models::GptMoeConfig;
//! use lancet_decode::{DecodeConfig, DecodeRuntime};
//!
//! let runtime = DecodeRuntime::start(DecodeConfig::default());
//! let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
//! runtime.register_model(cfg.clone())?;
//!
//! let ticket = runtime.submit(&cfg.name, &[3, 1, 4], 5)?;
//! let tokens = ticket.collect()?;
//! assert_eq!(tokens.len(), 5);
//! runtime.shutdown();
//! # Ok::<(), lancet_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod kv;
mod model;
mod runtime;
mod stream;
mod trace;

pub use kv::{KvArena, SlotId};
pub use model::{argmax, DecodeModel, DecodeSession};
pub use runtime::{BatchMode, DecodeConfig, DecodeRuntime};
pub use stream::{FinishReason, StreamTicket, StreamToken};
pub use trace::{decode_trace, replay_decode, DecodeReplayReport, DecodeTraceRequest};

// Re-export the error types decode APIs speak (shared with serve).
pub use lancet_serve::{Result, ServeError};
