//! Streamed per-token responses.
//!
//! A decode request is answered with a [`StreamTicket`] instead of
//! serve's one-shot `Ticket`: tokens arrive one at a time, each tagged
//! with its **sequence index**. The index is the exactly-once contract:
//!
//! * the producer side ([`StreamHandle::emit`]) is *idempotent by
//!   index* — re-emitting an index the consumer already has is a silent
//!   no-op, which is what lets a fault-retried decode step replay its
//!   commit without duplicating tokens;
//! * the consumer side ([`StreamTicket::next`]) therefore observes a
//!   gapless `0, 1, 2, …` sequence followed by exactly one terminal
//!   event — normal completion or one typed error.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use lancet_serve::{Result, ServeError};

/// Why a stream completed normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The sequence produced its requested number of new tokens.
    Length,
}

/// One streamed token: its position in the generated sequence and its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamToken {
    /// 0-based index within the *generated* tokens of this request.
    pub index: usize,
    /// Token id.
    pub token: u32,
}

#[derive(Debug)]
struct StreamState {
    queue: VecDeque<StreamToken>,
    /// Next index the consumer has not yet been handed; emits below this
    /// are duplicates and are dropped.
    emitted: usize,
    done: Option<std::result::Result<FinishReason, ServeError>>,
    error_taken: bool,
}

#[derive(Debug)]
struct StreamInner {
    state: Mutex<StreamState>,
    cv: Condvar,
}

/// Producer half; held by the decode scheduler.
#[derive(Debug, Clone)]
pub(crate) struct StreamHandle {
    inner: Arc<StreamInner>,
}

/// Consumer half; returned to the caller of `DecodeRuntime::submit`.
#[derive(Debug)]
pub struct StreamTicket {
    inner: Arc<StreamInner>,
}

/// Build a connected producer/consumer pair.
pub(crate) fn stream_channel() -> (StreamHandle, StreamTicket) {
    let inner = Arc::new(StreamInner {
        state: Mutex::new(StreamState {
            queue: VecDeque::new(),
            emitted: 0,
            done: None,
            error_taken: false,
        }),
        cv: Condvar::new(),
    });
    (StreamHandle { inner: inner.clone() }, StreamTicket { inner })
}

impl StreamHandle {
    /// Deliver token `index`. Returns `true` if the token was newly
    /// delivered, `false` if it was a duplicate of an already-emitted
    /// index (a retried commit) and was dropped.
    pub(crate) fn emit(&self, index: usize, token: u32) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        if index < st.emitted || st.done.is_some() {
            return false;
        }
        assert_eq!(index, st.emitted, "stream emits must be contiguous");
        st.queue.push_back(StreamToken { index, token });
        st.emitted += 1;
        self.inner.cv.notify_all();
        true
    }

    /// Terminate the stream normally. Write-once: later terminations
    /// are ignored.
    pub(crate) fn finish(&self, reason: FinishReason) {
        let mut st = self.inner.state.lock().unwrap();
        if st.done.is_none() {
            st.done = Some(Ok(reason));
            self.inner.cv.notify_all();
        }
    }

    /// Terminate the stream with a typed error. Write-once.
    pub(crate) fn fail(&self, err: ServeError) {
        let mut st = self.inner.state.lock().unwrap();
        if st.done.is_none() {
            st.done = Some(Err(err));
            self.inner.cv.notify_all();
        }
    }
}

impl StreamTicket {
    /// Block for the next stream event.
    ///
    /// * `Some(Ok(token))` — the next token, indices strictly increasing
    ///   from 0 with no gaps;
    /// * `Some(Err(e))` — the stream failed; delivered exactly once,
    ///   after all tokens that made it out;
    /// * `None` — the stream is over (normal completion, or after the
    ///   error was delivered).
    pub fn next(&self) -> Option<Result<StreamToken>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(tok) = st.queue.pop_front() {
                return Some(Ok(tok));
            }
            match &st.done {
                Some(Ok(_)) => return None,
                Some(Err(e)) => {
                    if st.error_taken {
                        return None;
                    }
                    let err = e.clone();
                    st.error_taken = true;
                    return Some(Err(err));
                }
                None => st = self.inner.cv.wait(st).unwrap(),
            }
        }
    }

    /// Drain the stream to completion, returning every token id in
    /// order, or the terminal error.
    pub fn collect(self) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next() {
            out.push(ev?.token);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_emits_are_dropped() {
        let (tx, rx) = stream_channel();
        assert!(tx.emit(0, 7));
        assert!(tx.emit(1, 8));
        assert!(!tx.emit(0, 99), "replayed index must be a no-op");
        assert!(!tx.emit(1, 99));
        assert!(tx.emit(2, 9));
        tx.finish(FinishReason::Length);
        assert_eq!(rx.collect().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn error_is_delivered_once_after_tokens() {
        let (tx, rx) = stream_channel();
        assert!(tx.emit(0, 5));
        tx.fail(ServeError::Exec("boom".into()));
        tx.fail(ServeError::Exec("second boom ignored".into()));
        assert!(matches!(rx.next(), Some(Ok(StreamToken { index: 0, token: 5 }))));
        match rx.next() {
            Some(Err(ServeError::Exec(msg))) => assert_eq!(msg, "boom"),
            other => panic!("expected the first failure, got {other:?}"),
        }
        assert!(rx.next().is_none(), "error is terminal and delivered once");
        assert!(!tx.emit(1, 6), "emits after termination are dropped");
    }
}
