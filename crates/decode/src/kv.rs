//! Per-sequence K/V cache arena.
//!
//! Decode recomputes nothing: every step appends one key/value row per
//! layer and attends over everything cached so far. The arena owns that
//! state for all in-flight sequences, with three properties the
//! scheduler leans on:
//!
//! * **Reservation accounting** — a sequence reserves its worst-case
//!   token footprint (`prompt + max_new`) at admission. [`KvArena::alloc`]
//!   refuses when the reservation would exceed the arena's token
//!   capacity, so admission is the single backpressure point and a step
//!   can never fail on an out-of-memory append.
//! * **Slot reuse** — released slots go on a free list and keep their
//!   (cleared) buffers, so steady-state decode does not grow the arena.
//! * **Step transactionality** — a decode step appends rows layer by
//!   layer ([`KvArena::append_row`]) and only [`KvArena::commit`]s once
//!   the whole step survived. [`KvArena::rollback`] truncates every
//!   layer back to the committed length, which is what makes fault-retry
//!   a bit-identical recompute instead of a corrupted cache.

use lancet_serve::{Result, ServeError};

/// Handle to one sequence's cache lines. Cheap to copy; valid until the
/// slot is [released](KvArena::release).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(usize);

#[derive(Debug, Default)]
struct Slot {
    active: bool,
    /// Worst-case tokens reserved at admission (counted against the arena).
    reserve: usize,
    /// Tokens whose K/V rows are committed in every layer.
    len: usize,
    /// Per-layer key rows, `len * hidden` floats each (plus at most one
    /// uncommitted row mid-step).
    k: Vec<Vec<f32>>,
    /// Per-layer value rows, same layout as `k`.
    v: Vec<Vec<f32>>,
}

/// Arena of per-sequence, per-layer K/V buffers with token-capacity
/// accounting. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct KvArena {
    layers: usize,
    hidden: usize,
    capacity_tokens: usize,
    reserved_tokens: usize,
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl KvArena {
    /// New arena for a model with `layers` transformer blocks and
    /// `hidden` channels, able to hold `capacity_tokens` reserved tokens
    /// across all in-flight sequences.
    pub fn new(layers: usize, hidden: usize, capacity_tokens: usize) -> Self {
        KvArena {
            layers,
            hidden,
            capacity_tokens,
            reserved_tokens: 0,
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Total token capacity the arena was built with.
    pub fn capacity_tokens(&self) -> usize {
        self.capacity_tokens
    }

    /// Tokens currently reserved by active slots.
    pub fn reserved_tokens(&self) -> usize {
        self.reserved_tokens
    }

    /// Reserve a slot for a sequence that will hold at most `tokens`
    /// K/V rows. Returns `None` when the reservation does not fit —
    /// the caller keeps the request queued until a slot frees up.
    pub fn alloc(&mut self, tokens: usize) -> Option<SlotId> {
        if self.reserved_tokens + tokens > self.capacity_tokens {
            return None;
        }
        self.reserved_tokens += tokens;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot::default());
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[idx];
        slot.active = true;
        slot.reserve = tokens;
        slot.len = 0;
        slot.k.resize_with(self.layers, Vec::new);
        slot.v.resize_with(self.layers, Vec::new);
        for l in 0..self.layers {
            slot.k[l].clear();
            slot.v[l].clear();
        }
        Some(SlotId(idx))
    }

    /// Release a slot: drop its rows, return its reservation, and queue
    /// it for reuse.
    pub fn release(&mut self, slot: SlotId) {
        let s = &mut self.slots[slot.0];
        assert!(s.active, "release of an inactive slot");
        s.active = false;
        self.reserved_tokens -= s.reserve;
        s.reserve = 0;
        s.len = 0;
        self.free.push(slot.0);
    }

    /// Bulk-seed a freshly allocated slot from a prefill pass:
    /// `layer_kv[l]` holds `(k, v)` slices of `tokens * hidden` floats
    /// for layer `l`. Sets the committed length to `tokens`.
    pub fn seed(&mut self, slot: SlotId, layer_kv: &[(&[f32], &[f32])], tokens: usize) -> Result<()> {
        let s = &mut self.slots[slot.0];
        if layer_kv.len() != self.layers {
            return Err(ServeError::Exec(format!(
                "kv seed expects {} layers, got {}",
                self.layers,
                layer_kv.len()
            )));
        }
        if tokens > s.reserve {
            return Err(ServeError::Exec(format!(
                "kv seed of {} tokens exceeds slot reservation of {}",
                tokens, s.reserve
            )));
        }
        for (l, (k, v)) in layer_kv.iter().enumerate() {
            if k.len() != tokens * self.hidden || v.len() != tokens * self.hidden {
                return Err(ServeError::Exec(format!(
                    "kv seed layer {l}: expected {} floats per side, got k={} v={}",
                    tokens * self.hidden,
                    k.len(),
                    v.len()
                )));
            }
            s.k[l].clear();
            s.k[l].extend_from_slice(k);
            s.v[l].clear();
            s.v[l].extend_from_slice(v);
        }
        s.len = tokens;
        Ok(())
    }

    /// Append one uncommitted token row to `layer`. The row becomes
    /// visible to [`k_data`](Self::k_data)/[`v_data`](Self::v_data)
    /// immediately (the current token attends to itself); it only
    /// becomes durable on [`commit`](Self::commit).
    pub fn append_row(&mut self, slot: SlotId, layer: usize, k_row: &[f32], v_row: &[f32]) -> Result<()> {
        let s = &mut self.slots[slot.0];
        debug_assert_eq!(k_row.len(), self.hidden);
        debug_assert_eq!(v_row.len(), self.hidden);
        if s.len + 1 > s.reserve {
            return Err(ServeError::Exec(format!(
                "kv append past slot reservation ({} tokens)",
                s.reserve
            )));
        }
        if s.k[layer].len() != s.len * self.hidden {
            return Err(ServeError::Exec(format!(
                "kv append layer {layer}: uncommitted row already present"
            )));
        }
        s.k[layer].extend_from_slice(k_row);
        s.v[layer].extend_from_slice(v_row);
        Ok(())
    }

    /// Commit the step's appended rows: the slot's length grows by one.
    pub fn commit(&mut self, slot: SlotId) {
        let s = &mut self.slots[slot.0];
        for l in 0..self.layers {
            debug_assert_eq!(
                s.k[l].len(),
                (s.len + 1) * self.hidden,
                "commit without a full set of appended rows"
            );
        }
        s.len += 1;
    }

    /// Discard any uncommitted rows, truncating every layer back to the
    /// committed length. Retrying the step afterwards recomputes the
    /// exact same rows.
    pub fn rollback(&mut self, slot: SlotId) {
        let s = &mut self.slots[slot.0];
        for l in 0..self.layers {
            s.k[l].truncate(s.len * self.hidden);
            s.v[l].truncate(s.len * self.hidden);
        }
    }

    /// Committed token count for a slot.
    pub fn len(&self, slot: SlotId) -> usize {
        self.slots[slot.0].len
    }

    /// Key rows for `(slot, layer)`, including an uncommitted row if one
    /// was just appended.
    pub fn k_data(&self, slot: SlotId, layer: usize) -> &[f32] {
        &self.slots[slot.0].k[layer]
    }

    /// Value rows for `(slot, layer)`, including an uncommitted row if
    /// one was just appended.
    pub fn v_data(&self, slot: SlotId, layer: usize) -> &[f32] {
        &self.slots[slot.0].v[layer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounts_reservations_and_reuses_slots() {
        let mut arena = KvArena::new(2, 4, 10);
        let a = arena.alloc(6).expect("fits");
        assert!(arena.alloc(5).is_none(), "6 + 5 > 10 must refuse");
        let b = arena.alloc(4).expect("6 + 4 fits exactly");
        assert_eq!(arena.reserved_tokens(), 10);
        arena.release(a);
        assert_eq!(arena.reserved_tokens(), 4);
        let c = arena.alloc(3).expect("fits after release");
        // The freed slot index is reused rather than growing the arena.
        assert_eq!(c, a);
        arena.release(b);
        arena.release(c);
        assert_eq!(arena.reserved_tokens(), 0);
    }

    #[test]
    fn rollback_discards_uncommitted_rows() {
        let mut arena = KvArena::new(2, 2, 8);
        let s = arena.alloc(4).unwrap();
        arena.seed(s, &[(&[1.0, 2.0], &[3.0, 4.0]), (&[5.0, 6.0], &[7.0, 8.0])], 1).unwrap();
        assert_eq!(arena.len(s), 1);

        arena.append_row(s, 0, &[9.0, 9.0], &[9.0, 9.0]).unwrap();
        assert_eq!(arena.k_data(s, 0), &[1.0, 2.0, 9.0, 9.0]);
        arena.rollback(s);
        assert_eq!(arena.k_data(s, 0), &[1.0, 2.0]);
        assert_eq!(arena.len(s), 1);

        arena.append_row(s, 0, &[9.0, 9.0], &[9.0, 9.0]).unwrap();
        arena.append_row(s, 1, &[9.0, 9.0], &[9.0, 9.0]).unwrap();
        arena.commit(s);
        assert_eq!(arena.len(s), 2);
    }

    #[test]
    fn seed_validates_shape_and_reservation() {
        let mut arena = KvArena::new(1, 2, 8);
        let s = arena.alloc(2).unwrap();
        assert!(arena.seed(s, &[(&[1.0; 6], &[1.0; 6])], 3).is_err(), "over reservation");
        assert!(arena.seed(s, &[(&[1.0; 3], &[1.0; 4])], 2).is_err(), "bad volume");
        arena.seed(s, &[(&[1.0; 4], &[2.0; 4])], 2).unwrap();
        assert!(
            arena.append_row(s, 0, &[0.0; 2], &[0.0; 2]).is_err(),
            "append past reservation must refuse"
        );
    }
}
