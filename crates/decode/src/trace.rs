//! Deterministic open-loop decode traces and their replay harness.
//!
//! Mirrors serve's `open_loop_trace`/`replay_open_loop` for streaming
//! decode: arrivals follow a seeded Poisson process, prompts and
//! generation lengths are drawn from seeded ranges (varied `max_new` is
//! what makes continuous batching beat the windowed baseline — sequences
//! finish at different times, and continuous admission refills the freed
//! slots immediately), and the replay verifies the streaming contract
//! while it measures TTFT / inter-token latency.

use std::time::{Duration, Instant};

use lancet_serve::Lcg;

use crate::runtime::DecodeRuntime;
use crate::stream::StreamTicket;

/// One scripted decode request.
#[derive(Debug, Clone)]
pub struct DecodeTraceRequest {
    /// Arrival time relative to replay start.
    pub at: Duration,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Number of tokens to generate.
    pub max_new: usize,
}

/// A seeded open-loop decode trace: `n` requests at `rate_hz` Poisson
/// arrivals, prompt lengths uniform in `prompt_len` and generation
/// lengths uniform in `max_new` (both inclusive), token ids below
/// `vocab`.
pub fn decode_trace(
    n: usize,
    rate_hz: f64,
    prompt_len: (usize, usize),
    max_new: (usize, usize),
    vocab: usize,
    seed: u64,
) -> Vec<DecodeTraceRequest> {
    let mut rng = Lcg::new(seed);
    let mut at = Duration::ZERO;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Exponential inter-arrival gap (open loop: the schedule does
        // not react to service times).
        let gap = -rng.next_f64().ln() / rate_hz.max(1e-9);
        at += Duration::from_secs_f64(gap);
        let plen = prompt_len.0 + rng.next_below((prompt_len.1 - prompt_len.0 + 1) as u64) as usize;
        let gen = max_new.0 + rng.next_below((max_new.1 - max_new.0 + 1) as u64) as usize;
        let prompt = (0..plen).map(|_| rng.next_below(vocab as u64) as u32).collect();
        out.push(DecodeTraceRequest { at, prompt, max_new: gen });
    }
    out
}

/// What a decode replay observed.
#[derive(Debug, Clone, Default)]
pub struct DecodeReplayReport {
    /// Streams that completed normally.
    pub ok: usize,
    /// Submissions rejected at the door (overload / bad request).
    pub rejected: usize,
    /// Streams that ended in a typed error.
    pub failed: usize,
    /// Tokens delivered across all streams.
    pub tokens: usize,
    /// Streaming-contract violations: out-of-order, duplicated, or
    /// skipped token indices. Must be zero — a non-zero count means a
    /// stream lost or duplicated a token.
    pub token_gaps: usize,
    /// Mean time-to-first-token over streams that produced one, ms.
    pub mean_ttft_ms: f64,
    /// 95th-percentile TTFT, ms.
    pub p95_ttft_ms: f64,
    /// Mean inter-token gap over all consecutive token pairs, ms.
    pub mean_itl_ms: f64,
    /// Wall-clock of the whole replay.
    pub wall: Duration,
    /// Delivered tokens per wall-clock second.
    pub tokens_per_sec: f64,
}

struct StreamOutcome {
    ttft_ms: Option<f64>,
    itl_ms: Vec<f64>,
    tokens: usize,
    gaps: usize,
    finished: bool,
}

fn consume(ticket: StreamTicket, submitted: Instant) -> StreamOutcome {
    let mut outcome =
        StreamOutcome { ttft_ms: None, itl_ms: Vec::new(), tokens: 0, gaps: 0, finished: false };
    let mut expect = 0usize;
    let mut last = submitted;
    let mut errored = false;
    while let Some(ev) = ticket.next() {
        match ev {
            Ok(tok) => {
                let now = Instant::now();
                if tok.index != expect {
                    outcome.gaps += 1;
                }
                expect = tok.index + 1;
                if outcome.tokens == 0 {
                    outcome.ttft_ms = Some((now - submitted).as_secs_f64() * 1e3);
                } else {
                    outcome.itl_ms.push((now - last).as_secs_f64() * 1e3);
                }
                last = now;
                outcome.tokens += 1;
            }
            Err(_) => errored = true,
        }
    }
    outcome.finished = !errored;
    outcome
}

/// Replay a trace against a runtime, consuming every stream on its own
/// thread (tokens are pulled as they are produced, so TTFT/ITL reflect
/// the scheduler, not the harness).
pub fn replay_decode(
    runtime: &DecodeRuntime,
    model: &str,
    trace: &[DecodeTraceRequest],
) -> DecodeReplayReport {
    let start = Instant::now();
    let mut collectors = Vec::new();
    let mut report = DecodeReplayReport::default();
    for req in trace {
        if let Some(gap) = req.at.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        let submitted = Instant::now();
        match runtime.submit(model, &req.prompt, req.max_new) {
            Ok(ticket) => {
                collectors.push(std::thread::spawn(move || consume(ticket, submitted)));
            }
            Err(_) => report.rejected += 1,
        }
    }
    let mut ttfts = Vec::new();
    let mut itl_sum = 0.0;
    let mut itl_n = 0usize;
    for c in collectors {
        let o = c.join().expect("stream collector");
        if o.finished {
            report.ok += 1;
        } else {
            report.failed += 1;
        }
        report.tokens += o.tokens;
        report.token_gaps += o.gaps;
        if let Some(t) = o.ttft_ms {
            ttfts.push(t);
        }
        itl_sum += o.itl_ms.iter().sum::<f64>();
        itl_n += o.itl_ms.len();
    }
    report.wall = start.elapsed();
    if !ttfts.is_empty() {
        report.mean_ttft_ms = ttfts.iter().sum::<f64>() / ttfts.len() as f64;
        ttfts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((ttfts.len() as f64) * 0.95).ceil() as usize;
        report.p95_ttft_ms = ttfts[rank.clamp(1, ttfts.len()) - 1];
    }
    if itl_n > 0 {
        report.mean_itl_ms = itl_sum / itl_n as f64;
    }
    let secs = report.wall.as_secs_f64();
    if secs > 0.0 {
        report.tokens_per_sec = report.tokens as f64 / secs;
    }
    report
}
