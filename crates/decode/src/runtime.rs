//! The decode scheduler: continuous batching over a shared KV arena.
//!
//! One scheduler thread owns everything mutable — per-model [`KvArena`]s
//! and the in-flight sequence set — and advances all sequences in
//! lock-step *decode steps* (one new token per in-flight sequence per
//! step). The interesting part is **admission**:
//!
//! * [`BatchMode::Continuous`] — a queued request joins the running
//!   batch at the *next step boundary* whenever a slot is free. Arrivals
//!   never wait for the current batch to finish, which is what keeps
//!   time-to-first-token flat as sequence lengths diverge.
//! * [`BatchMode::Windowed`] — the static baseline: a new batch is
//!   admitted only once the previous batch has fully drained, the way a
//!   fixed micro-batch window behaves. Same kernels, same outputs, worse
//!   tail TTFT; `lancet decode-bench` measures the gap.
//!
//! Either way the **tokens are identical**: batching only changes *when*
//! a sequence is stepped, and every kernel row is independent of its
//! batch-mates (see [`crate::model`]), so a sequence's token stream
//! equals its solo [`DecodeSession`](crate::DecodeSession) run bit for
//! bit.
//!
//! Prefill goes through serve's [`PlanCache`]: prompts are right-padded
//! to power-of-two length buckets and run through a cached
//! [`Plan::build_prefill`] graph whose K/V projections seed the arena
//! (pad rows are computed then discarded; under causal masking they
//! cannot influence prompt rows). If the plan build fails — including
//! injected plan faults — the scheduler degrades to an eager un-bucketed
//! prefill rather than failing the request.
//!
//! Faults are injected through the same seeded
//! [`FaultInjector`](lancet_serve::FaultInjector) the serve runtime
//! uses, and the recovery invariant is stronger than serve's
//! exactly-once *response*: it is exactly-once *per token*. A failed
//! step rolls the arena back and recomputes — bit-identical, so a retry
//! re-derives the same tokens. A simulated worker panic commits a
//! *partial* emission first; the retry re-emits from the start of the
//! step and the stream's emit-by-index idempotence drops the duplicates.
//! Streams therefore observe a gapless token sequence followed by one
//! terminal event, no matter what the injector does.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_models::GptMoeConfig;
use lancet_serve::{
    canonical_weights, CanonicalWeights, FaultInjector, FaultSpec, Metrics, Plan, PlanCache,
    PlanKey, Result, ServeError, ServeStats,
};
use lancet_tensor::Tensor;

use crate::kv::{KvArena, SlotId};
use crate::model::{argmax, DecodeModel};
use crate::stream::{stream_channel, FinishReason, StreamHandle, StreamTicket};

/// How the scheduler admits queued requests into the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Join at any step boundary with a free slot (continuous batching).
    Continuous,
    /// Admit a new batch only when the previous one fully drained
    /// (static micro-batch baseline).
    Windowed,
}

/// Decode runtime configuration. Zero-valued fields fall back to the
/// `LANCET_DECODE_*` environment variables documented in
/// `docs/CONFIG.md`, then to built-in defaults.
#[derive(Debug, Clone)]
pub struct DecodeConfig {
    /// Cluster kind for prefill plan optimization and cache keying.
    pub cluster: ClusterKind,
    /// Admission policy.
    pub mode: BatchMode,
    /// Maximum concurrently decoding sequences per model
    /// (0 → `LANCET_DECODE_INFLIGHT` → 8).
    pub max_inflight: usize,
    /// KV arena capacity in tokens per model
    /// (0 → `LANCET_DECODE_KV_TOKENS` → 4096). A request reserves
    /// `prompt + max_new` tokens at admission.
    pub kv_capacity_tokens: usize,
    /// How long a step boundary waits for arrivals to join a non-full
    /// continuous batch (`None` → `LANCET_DECODE_STEP_DEADLINE_MS` → 0,
    /// i.e. never wait). Trades a bounded ITL bump for larger steps.
    pub step_deadline: Option<Duration>,
    /// Admission queue bound (0 → 256); excess submissions are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Prefill through cached seq-bucketed plans (`true`) or always
    /// eagerly per prompt (`false`).
    pub prefill_buckets: bool,
    /// Prefill plan-cache capacity.
    pub plan_capacity: usize,
    /// Retries per decode step / prefill execution before the affected
    /// streams fail.
    pub max_retries: u32,
    /// Sleep between retries.
    pub retry_backoff: Duration,
    /// Seed for canonical weight initialization.
    pub seed: u64,
    /// Optional deterministic fault injection.
    pub fault: Option<FaultSpec>,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig {
            cluster: ClusterKind::A100,
            mode: BatchMode::Continuous,
            max_inflight: 0,
            kv_capacity_tokens: 0,
            step_deadline: None,
            queue_depth: 0,
            prefill_buckets: true,
            plan_capacity: 8,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            seed: 0xdec0,
            fault: None,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|&v| v > 0)
}

fn resolve(v: usize, env: &str, default: usize) -> usize {
    if v > 0 {
        v
    } else {
        env_usize(env).unwrap_or(default)
    }
}

/// Resolved runtime limits (config → env → default).
#[derive(Debug, Clone)]
struct Limits {
    mode: BatchMode,
    max_inflight: usize,
    kv_capacity_tokens: usize,
    step_deadline: Duration,
    queue_depth: usize,
    prefill_buckets: bool,
    max_retries: u32,
    retry_backoff: Duration,
    cluster: ClusterKind,
}

impl Limits {
    fn from(cfg: &DecodeConfig) -> Self {
        let step_deadline = cfg.step_deadline.unwrap_or_else(|| {
            Duration::from_millis(env_usize("LANCET_DECODE_STEP_DEADLINE_MS").unwrap_or(0) as u64)
        });
        Limits {
            mode: cfg.mode,
            max_inflight: resolve(cfg.max_inflight, "LANCET_DECODE_INFLIGHT", 8),
            kv_capacity_tokens: resolve(cfg.kv_capacity_tokens, "LANCET_DECODE_KV_TOKENS", 4096),
            step_deadline,
            queue_depth: resolve(cfg.queue_depth, "LANCET_SERVE_QUEUE_DEPTH", 256),
            prefill_buckets: cfg.prefill_buckets,
            max_retries: cfg.max_retries,
            retry_backoff: cfg.retry_backoff,
            cluster: cfg.cluster,
        }
    }
}

struct ModelEntry {
    cfg: GptMoeConfig,
    model: Arc<DecodeModel>,
    lancet: Lancet,
    canonical: CanonicalWeights,
}

struct Pending {
    model: String,
    prompt: Vec<u32>,
    max_new: usize,
    handle: StreamHandle,
    submitted: Instant,
}

struct Shared {
    limits: Limits,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    shutting_down: AtomicBool,
    models: Mutex<HashMap<String, Arc<ModelEntry>>>,
    metrics: Metrics,
    cache: PlanCache,
    injector: Option<FaultInjector>,
    seed: u64,
}

/// An in-flight sequence owned by the scheduler.
struct Active {
    slot: SlotId,
    handle: StreamHandle,
    /// Tokens emitted so far (== the next emission index).
    generated: usize,
    max_new: usize,
    /// The newest token — next step's input.
    next_token: u32,
    submitted: Instant,
    last_emit: Instant,
}

/// Per-model scheduler state: the arena and the running batch.
struct ModelRun {
    entry: Arc<ModelEntry>,
    arena: KvArena,
    active: Vec<Active>,
}

/// The decode-serving runtime. See the [module docs](self).
pub struct DecodeRuntime {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
}

impl DecodeRuntime {
    /// Start the runtime: spawns the scheduler thread.
    pub fn start(cfg: DecodeConfig) -> Self {
        let limits = Limits::from(&cfg);
        let shared = Arc::new(Shared {
            limits,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            models: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            cache: PlanCache::new(cfg.plan_capacity.max(1)),
            injector: cfg.fault.clone().map(FaultInjector::new),
            seed: cfg.seed,
        });
        let sched = {
            let shared = shared.clone();
            thread::Builder::new()
                .name("lancet-decode-scheduler".into())
                .spawn(move || Scheduler::new(shared).run())
                .expect("spawn decode scheduler")
        };
        DecodeRuntime { shared, scheduler: Mutex::new(Some(sched)) }
    }

    /// Register a model: normalizes its capacity factor to the expert
    /// count (drop-free routing — the batched-equals-solo precondition),
    /// initializes canonical weights, and builds the eager decode engine
    /// plus a partition-disabled optimizer for prefill plans.
    pub fn register_model(&self, cfg: GptMoeConfig) -> Result<()> {
        let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        let canonical = canonical_weights(&normalized, self.shared.seed)?;
        self.register_entry(normalized, canonical, None)
    }

    /// [`register_model`](Self::register_model) with caller-supplied
    /// weights — the model-store load path. `packs` carries prepacked
    /// GEMM panels (decode is single-device, so only device 0's map);
    /// matching panels are adopted instead of re-packed, stale ones are
    /// repacked fresh.
    ///
    /// # Errors
    ///
    /// As [`register_model`](Self::register_model).
    pub fn register_model_with_weights(
        &self,
        cfg: GptMoeConfig,
        canonical: CanonicalWeights,
        packs: Option<&std::collections::HashMap<String, Arc<lancet_tensor::PackedTensor>>>,
    ) -> Result<()> {
        let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        self.register_entry(normalized, canonical, packs)
    }

    fn register_entry(
        &self,
        normalized: GptMoeConfig,
        canonical: CanonicalWeights,
        packs: Option<&std::collections::HashMap<String, Arc<lancet_tensor::PackedTensor>>>,
    ) -> Result<()> {
        let model = Arc::new(DecodeModel::new_with_packs(&normalized, &canonical, packs)?);
        let lancet = Lancet::new(
            ClusterSpec::of(self.shared.limits.cluster, 1),
            normalized.gpus,
            LancetOptions::decode_serving(),
        );
        let entry = Arc::new(ModelEntry { cfg: normalized.clone(), model, lancet, canonical });
        self.shared.models.lock().unwrap().insert(normalized.name.clone(), entry);
        Ok(())
    }

    /// Submit a prompt for `max_new` greedily decoded tokens. Returns a
    /// [`StreamTicket`] delivering tokens as they are produced.
    pub fn submit(&self, model: &str, prompt: &[u32], max_new: usize) -> Result<StreamTicket> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let entry = self
            .shared
            .models
            .lock()
            .unwrap()
            .get(model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(model.into()))?;
        if prompt.is_empty() {
            return Err(ServeError::BadRequest("empty prompt".into()));
        }
        if max_new == 0 {
            return Err(ServeError::BadRequest("max_new must be at least 1".into()));
        }
        let reserve = prompt.len() + max_new;
        if reserve > self.shared.limits.kv_capacity_tokens {
            return Err(ServeError::BadRequest(format!(
                "request needs {reserve} KV tokens, arena capacity is {}",
                self.shared.limits.kv_capacity_tokens
            )));
        }
        if prompt.iter().any(|&t| t as usize >= entry.cfg.vocab) {
            return Err(ServeError::BadRequest(format!(
                "prompt token out of vocabulary ({})",
                entry.cfg.vocab
            )));
        }
        self.shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let (handle, ticket) = stream_channel();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.len() >= self.shared.limits.queue_depth {
                self.shared.metrics.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { depth: self.shared.limits.queue_depth });
            }
            q.push_back(Pending {
                model: model.into(),
                prompt: prompt.to_vec(),
                max_new,
                handle,
                submitted: Instant::now(),
            });
        }
        self.shared.cv.notify_all();
        Ok(ticket)
    }

    /// Runtime statistics: serve's counters plus the decode latency
    /// distributions (`ttft_*`, `itl_*`).
    pub fn stats(&self) -> ServeStats {
        let depth = self.shared.queue.lock().unwrap().len();
        self.shared.metrics.snapshot(depth, self.shared.cache.stats())
    }

    /// Drain and stop: in-flight sequences finish, queued requests are
    /// served, new submissions are refused with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DecodeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Scheduler {
    shared: Arc<Shared>,
    runs: HashMap<String, ModelRun>,
    /// Monotone counter keying the deterministic partial-commit cut.
    panics: u64,
}

impl Scheduler {
    fn new(shared: Arc<Shared>) -> Self {
        Scheduler { shared, runs: HashMap::new(), panics: 0 }
    }

    fn run(&mut self) {
        loop {
            let admitted = self.admit();
            let stepped = self.step_all();
            if admitted || stepped {
                // In continuous mode a positive step deadline lets
                // arrivals join a non-full batch before the next step.
                let limits = &self.shared.limits;
                if limits.mode == BatchMode::Continuous
                    && limits.step_deadline > Duration::ZERO
                    && self.free_capacity()
                {
                    let q = self.shared.queue.lock().unwrap();
                    if q.is_empty() {
                        let _ = self.shared.cv.wait_timeout(q, limits.step_deadline).unwrap();
                    }
                }
                continue;
            }
            // Idle: no admissible work, nothing in flight to step.
            let q = self.shared.queue.lock().unwrap();
            let draining = self.shared.shutting_down.load(Ordering::SeqCst);
            if draining && q.is_empty() && self.runs.values().all(|r| r.active.is_empty()) {
                return;
            }
            if q.is_empty() {
                let _ = self.shared.cv.wait_timeout(q, Duration::from_millis(20)).unwrap();
            }
        }
    }

    fn free_capacity(&self) -> bool {
        self.runs.values().any(|r| r.active.len() < self.shared.limits.max_inflight)
    }

    /// Pull admissible requests off the queue (FIFO, head-of-line
    /// blocking) and prefill them into the running batch. Returns
    /// whether anything was admitted.
    fn admit(&mut self) -> bool {
        let limits = self.shared.limits.clone();
        let mut staged: Vec<(String, Pending, SlotId)> = Vec::new();
        {
            let mut q = self.shared.queue.lock().unwrap();
            while let Some(front) = q.front() {
                let Some(entry) = self.shared.models.lock().unwrap().get(&front.model).cloned()
                else {
                    let p = q.pop_front().unwrap();
                    p.handle.fail(ServeError::UnknownModel(p.model.clone()));
                    self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                let run = self.runs.entry(front.model.clone()).or_insert_with(|| ModelRun {
                    arena: KvArena::new(entry.cfg.layers, entry.cfg.hidden, limits.kv_capacity_tokens),
                    active: Vec::new(),
                    entry,
                });
                let staged_here = staged.iter().filter(|(m, ..)| *m == front.model).count();
                let occupancy = run.active.len() + staged_here;
                let admissible = match limits.mode {
                    BatchMode::Continuous => occupancy < limits.max_inflight,
                    // Windowed: only an empty engine takes a new window.
                    BatchMode::Windowed => run.active.is_empty() && occupancy < limits.max_inflight,
                };
                if !admissible {
                    break;
                }
                let reserve = front.prompt.len() + front.max_new;
                let Some(slot) = run.arena.alloc(reserve) else {
                    break; // KV backpressure: stay queued until a slot frees.
                };
                let p = q.pop_front().unwrap();
                staged.push((p.model.clone(), p, slot));
            }
        }
        let any = !staged.is_empty();
        for (model, pending, slot) in staged {
            self.prefill_admitted(&model, pending, slot);
        }
        any
    }

    /// Prefill one admitted request and install it as an active
    /// sequence, emitting its first token (TTFT).
    fn prefill_admitted(&mut self, model: &str, pending: Pending, slot: SlotId) {
        let run = self.runs.get_mut(model).expect("run created at admission");
        match prefill_with_retry(&self.shared, run, slot, &pending.prompt) {
            Ok(first) => {
                let now = Instant::now();
                self.shared
                    .metrics
                    .record_ttft(pending.submitted.elapsed().as_secs_f64() * 1e3);
                pending.handle.emit(0, first);
                let mut seq = Active {
                    slot,
                    handle: pending.handle,
                    generated: 1,
                    max_new: pending.max_new,
                    next_token: first,
                    submitted: pending.submitted,
                    last_emit: now,
                };
                if seq.generated >= seq.max_new {
                    finish_seq(&self.shared, &mut run.arena, &mut seq);
                } else {
                    run.active.push(seq);
                }
            }
            Err(e) => {
                run.arena.release(slot);
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                pending.handle.fail(e);
            }
        }
    }

    /// Advance every model's running batch by one decode step. Returns
    /// whether any step ran.
    fn step_all(&mut self) -> bool {
        let mut stepped = false;
        for run in self.runs.values_mut() {
            if run.active.is_empty() {
                continue;
            }
            stepped = true;
            self.panics = step_batch(&self.shared, run, self.panics);
        }
        stepped
    }
}

/// Execute one prefill with fault injection and bounded retry; seed the
/// slot; return the first generated token.
fn prefill_with_retry(
    shared: &Shared,
    run: &mut ModelRun,
    slot: SlotId,
    prompt: &[u32],
) -> Result<u32> {
    let limits = &shared.limits;
    let mut attempt = 0u32;
    loop {
        let injected = shared.injector.as_ref().is_some_and(|i| i.exec_fault());
        if injected {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
        }
        let result = if injected {
            Err(ServeError::Exec("injected transient prefill failure".into()))
        } else {
            prefill_once(shared, run, slot, prompt)
        };
        match result {
            Ok(first) => return Ok(first),
            Err(e) => {
                attempt += 1;
                if attempt > limits.max_retries {
                    return Err(e);
                }
                shared.metrics.retried.fetch_add(1, Ordering::Relaxed);
                thread::sleep(limits.retry_backoff);
            }
        }
    }
}

/// One prefill attempt: bucketed plan path with eager fallback.
fn prefill_once(shared: &Shared, run: &mut ModelRun, slot: SlotId, prompt: &[u32]) -> Result<u32> {
    let entry = run.entry.clone();
    if shared.limits.prefill_buckets {
        match bucketed_prefill(shared, &entry, &mut run.arena, slot, prompt) {
            Ok(first) => return Ok(first),
            Err(_) => {
                // Plan build or padded execution failed — degrade to the
                // eager un-bucketed path instead of failing the request.
                shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let (logits, kvs) = entry.model.prefill_full(prompt)?;
    entry.model.seed_slot(&mut run.arena, slot, &kvs, prompt.len())?;
    let vocab = *logits.shape().last().unwrap();
    Ok(argmax(&logits.data()[(prompt.len() - 1) * vocab..prompt.len() * vocab]))
}

/// Prefill through a cached seq-bucketed plan: pad the prompt to the
/// next power of two, run the harvested-K/V graph, keep only the real
/// rows. Causal masking makes right-padding invisible to prompt rows,
/// so the seeded cache is bit-identical to an exact-length prefill.
fn bucketed_prefill(
    shared: &Shared,
    entry: &ModelEntry,
    arena: &mut KvArena,
    slot: SlotId,
    prompt: &[u32],
) -> Result<u32> {
    let bucket = prompt.len().next_power_of_two();
    let key = PlanKey {
        model: entry.cfg.name.clone(),
        bucket: 1,
        seq: bucket,
        cluster: shared.limits.cluster,
        gpus: entry.cfg.gpus,
    };
    let plan = shared.cache.get_or_insert_with(&key, || {
        if shared.injector.as_ref().is_some_and(|i| i.plan_fault()) {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Plan("injected plan-build failure".into()));
        }
        Plan::build_prefill(&entry.lancet, &entry.cfg, 1, bucket, &entry.canonical)
    })?;
    let mut ids = vec![0.0f32; bucket];
    for (i, &t) in prompt.iter().enumerate() {
        ids[i] = t as f32;
    }
    let ids = Tensor::from_vec(vec![1, bucket], ids).map_err(|e| ServeError::Exec(e.to_string()))?;
    let (logits, kvs) = plan.execute_prefill(&ids)?;
    entry.model.seed_slot(arena, slot, &kvs, prompt.len())?;
    let vocab = *logits.shape().last().unwrap();
    Ok(argmax(&logits.data()[(prompt.len() - 1) * vocab..prompt.len() * vocab]))
}

/// Run one decode step for a model's batch: compute, survive injected
/// faults, emit exactly-once, commit or roll back the arena.
/// Returns the updated partial-commit counter.
fn step_batch(shared: &Shared, run: &mut ModelRun, mut panics: u64) -> u64 {
    let limits = &shared.limits;
    let tokens: Vec<u32> = run.active.iter().map(|s| s.next_token).collect();
    let slots: Vec<SlotId> = run.active.iter().map(|s| s.slot).collect();
    let n = tokens.len();

    let mut attempt = 0u32;
    loop {
        if let Some(d) = shared.injector.as_ref().and_then(|i| i.worker_delay()) {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            thread::sleep(d);
        }
        let injected = shared.injector.as_ref().is_some_and(|i| i.exec_fault());
        if injected {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
        }
        let result = if injected {
            Err(ServeError::Exec("injected transient step failure".into()))
        } else {
            run.entry.model.step(&tokens, &mut run.arena, &slots)
        };
        let logits = match result {
            Ok(logits) => logits,
            Err(e) => {
                for &slot in &slots {
                    run.arena.rollback(slot);
                }
                attempt += 1;
                if attempt > limits.max_retries {
                    fail_batch(shared, run, e);
                    return panics;
                }
                shared.metrics.retried.fetch_add(1, Ordering::Relaxed);
                thread::sleep(limits.retry_backoff);
                continue;
            }
        };

        let vocab = *logits.shape().last().unwrap();
        let next: Vec<u32> =
            (0..n).map(|i| argmax(&logits.data()[i * vocab..(i + 1) * vocab])).collect();

        // Simulated worker panic: commit a deterministic *partial*
        // prefix of the step's emissions, then crash the attempt. The
        // retry recomputes the same tokens (rollback + deterministic
        // kernels) and re-emits from index 0 of the step; the streams'
        // emit-by-index idempotence swallows the duplicates — the
        // exactly-once-per-token proof obligation of the chaos tests.
        if shared.injector.as_ref().is_some_and(|i| i.worker_panic()) && attempt < limits.max_retries
        {
            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            panics += 1;
            let cut = (panics as usize) % n.max(1);
            for (seq, &tok) in run.active.iter().zip(&next).take(cut) {
                seq.handle.emit(seq.generated, tok);
            }
            for &slot in &slots {
                run.arena.rollback(slot);
            }
            attempt += 1;
            shared.metrics.retried.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        // Durable commit: tokens out (idempotent), rows committed.
        let now = Instant::now();
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared.metrics.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
        for (seq, &tok) in run.active.iter_mut().zip(&next) {
            if seq.handle.emit(seq.generated, tok) {
                shared.metrics.record_itl((now - seq.last_emit).as_secs_f64() * 1e3);
            }
            seq.last_emit = now;
            seq.generated += 1;
            seq.next_token = tok;
            run.arena.commit(seq.slot);
        }
        let mut i = 0;
        while i < run.active.len() {
            if run.active[i].generated >= run.active[i].max_new {
                let mut seq = run.active.swap_remove(i);
                finish_seq(shared, &mut run.arena, &mut seq);
            } else {
                i += 1;
            }
        }
        return panics;
    }
}

/// Complete a sequence: terminal event, slot release, latency account.
fn finish_seq(shared: &Shared, arena: &mut KvArena, seq: &mut Active) {
    // Counters first: a consumer unblocked by `finish` must already see
    // itself counted in `stats()`.
    arena.release(seq.slot);
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_latency(seq.submitted.elapsed().as_secs_f64() * 1e3);
    seq.handle.finish(FinishReason::Length);
}

/// A step exhausted its retries: every stream in the batch gets the
/// typed error (after whatever tokens already made it out) and its slot
/// is reclaimed.
fn fail_batch(shared: &Shared, run: &mut ModelRun, err: ServeError) {
    for seq in run.active.drain(..) {
        run.arena.release(seq.slot);
        shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
        seq.handle.fail(err.clone());
    }
}
