//! Eager KV-cached forward passes through the *exact* executor kernels.
//!
//! [`DecodeModel`] holds a model's canonical weights by name and replays
//! the same operator sequence `lancet_models::build_forward` emits — via
//! [`lancet_exec::eval_op`], i.e. the very kernels the graph executor
//! runs — but one decode step at a time against a [`KvArena`] instead of
//! re-running the whole sequence. Bit-identity with the full-sequence
//! forward is not approximate, it is structural:
//!
//! * the attention kernels take rectangular `q(B,Sq,H) × k(B,Sk,H)` with
//!   an explicit position offset, so a cached single-query step computes
//!   the same masked scores/softmax/context row as the last row of the
//!   square pass (covered by `exec`'s offset-attention regression tests);
//! * every other forward kernel is row-independent over tokens (GEMM
//!   accumulates only over the contraction dim; norms, activations, and
//!   biases are per-row), so batching `n` single-token rows from
//!   different sequences cannot change any row's bits;
//! * MoE routing is per-token for every gate kind except expert-choice
//!   (rejected at construction) once capacity is **drop-free** — the
//!   step path sizes capacity at `tokens · k`, the same value a
//!   serving-normalized config (`capacity_factor = experts`) yields;
//! * collectives vanish at one device: `AllToAll` is an exact copy for
//!   `gpus == 1`, and `Dropout` is identity at execution time, so both
//!   are skipped (or value-identity, for the expert layout pair, which
//!   is still executed for fidelity);
//! * the model has no positional embeddings — position enters only
//!   through the causal mask — so cached rows never go stale.

use lancet_exec::{eval_op, eval_op_packed};
use lancet_ir::{GateKind, Op};
use lancet_models::GptMoeConfig;
use lancet_serve::{CanonicalWeights, Result, ServeError};
use lancet_tensor::{PackedTensor, Tensor};

use crate::kv::{KvArena, SlotId};

const NORM_EPS: f32 = 1e-5;

#[derive(Debug)]
struct Norm {
    g: Tensor,
    /// `None` for RMS norm (no beta).
    b: Option<Tensor>,
}

/// A matmul weight held alongside its prepacked panel form. Decode runs
/// the same weights every step, so packing once at model build and
/// handing the panels to [`eval_op_packed`] removes the per-step `pack_b`
/// that otherwise dominates small-`m` (one token per sequence) GEMMs.
/// Packing never changes bits — the packed kernel accumulates in the
/// same order — and a failed pack degrades to the repack-per-call path.
#[derive(Debug)]
struct Packed {
    w: Tensor,
    p: Option<PackedTensor>,
}

impl Packed {
    /// A rank-2 weight consumed as `MatMul { transpose_b: false }` B.
    fn mat(w: Tensor) -> Self {
        let p = PackedTensor::pack(&w, false).ok();
        Packed { w, p }
    }

    /// A rank-3 expert stack consumed as `BatchedMatMul` B.
    fn batched(w: Tensor) -> Self {
        let p = PackedTensor::pack_batched(&w).ok();
        Packed { w, p }
    }

    /// Like [`mat`](Self::mat)/[`batched`](Self::batched), but adopting a
    /// store-carried panel when it matches the weight (decode consumes
    /// every B un-transposed). A missing or stale pack falls back to
    /// packing fresh, so adoption never changes results — only skips
    /// work.
    fn adopt(
        w: Tensor,
        pack: Option<&std::sync::Arc<PackedTensor>>,
        batched: bool,
    ) -> Self {
        if let Some(p) = pack {
            let rank_ok = if batched { w.shape().len() == 3 } else { w.shape().len() == 2 };
            if rank_ok && !p.transposed() && p.matches(&w, false) {
                return Packed { w, p: Some((**p).clone()) };
            }
        }
        if batched {
            Packed::batched(w)
        } else {
            Packed::mat(w)
        }
    }
}

#[derive(Debug)]
struct Attn {
    wq: Packed,
    bq: Tensor,
    wk: Packed,
    bk: Tensor,
    wv: Packed,
    bv: Tensor,
    wo: Packed,
    bo: Tensor,
}

#[derive(Debug)]
enum Ffn {
    Dense { w1: Packed, b1: Tensor, w2: Packed, b2: Tensor },
    Swiglu { w1: Packed, w3: Packed, w2: Packed },
    Moe { gate: Packed, w1: Packed, w2: Packed, w3: Option<Packed>, shared: Option<Box<(Packed, Packed)>> },
}

#[derive(Debug)]
struct Block {
    ln1: Norm,
    attn: Attn,
    ln2: Norm,
    ffn: Ffn,
}

/// A single-device decode engine over a model's canonical weights.
/// See the [module docs](self) for the bit-identity argument.
#[derive(Debug)]
pub struct DecodeModel {
    cfg: GptMoeConfig,
    wte: Tensor,
    blocks: Vec<Block>,
    ln_f: Norm,
    lm_head: Packed,
}

/// Run one op through the executor kernels, returning its sole output.
fn ev(op: Op, ins: &[&Tensor]) -> Result<Tensor> {
    let mut out = eval_op(&op, ins).map_err(|e| ServeError::Exec(e.to_string()))?;
    Ok(out.remove(0))
}

/// [`ev`] for matmul-family ops whose `B` operand is a [`Packed`] weight:
/// the kernel reuses the resident panels instead of packing per call.
fn evp(op: Op, a: &Tensor, b: &Packed) -> Result<Tensor> {
    let mut out = eval_op_packed(&op, &[a, &b.w], b.p.as_ref())
        .map_err(|e| ServeError::Exec(e.to_string()))?;
    Ok(out.remove(0))
}

/// Index of the largest value in `row`; ties break to the lowest index
/// (the same rule the routing kernels use), making sampling-free decode
/// deterministic.
pub fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in row.iter().enumerate() {
        if x > row[best] {
            best = i;
        }
    }
    best as u32
}

impl DecodeModel {
    /// Build a decode engine from a registered model's config and
    /// canonical weights.
    ///
    /// Rejections are typed [`ServeError::BadRequest`]s:
    /// * `gpus != 1` — decode runs single-device; multi-device expert
    ///   parallelism has no KV-cached path here;
    /// * `fsdp` — sharded weights would need all-gathers per step;
    /// * expert-choice gating — experts pick tokens over the *whole
    ///   batch*, so a token's output depends on its batch-mates even
    ///   drop-free, which breaks the batched-equals-solo contract.
    pub fn new(cfg: &GptMoeConfig, canonical: &CanonicalWeights) -> Result<Self> {
        Self::new_with_packs(cfg, canonical, None)
    }

    /// [`new`](Self::new), additionally adopting prepacked GEMM panels
    /// (typically mapped zero-copy from a model store) for the weights
    /// they name — a store-loaded decode engine then packs nothing at
    /// build time. Stale packs are rejected per weight and repacked, so
    /// a wrong pack set degrades to [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn new_with_packs(
        cfg: &GptMoeConfig,
        canonical: &CanonicalWeights,
        packs: Option<&std::collections::HashMap<String, std::sync::Arc<PackedTensor>>>,
    ) -> Result<Self> {
        if cfg.gpus != 1 {
            return Err(ServeError::BadRequest(format!(
                "decode serving is single-device; `{}` wants {} gpus",
                cfg.name, cfg.gpus
            )));
        }
        if cfg.fsdp {
            return Err(ServeError::BadRequest(format!(
                "decode serving does not support FSDP-sharded weights (`{}`)",
                cfg.name
            )));
        }
        if matches!(cfg.gate, GateKind::ExpertChoice) {
            return Err(ServeError::BadRequest(
                "expert-choice gating routes over the whole batch; batched decode \
                 would not be bit-identical to solo decode"
                    .into(),
            ));
        }
        let w = canonical.first().ok_or_else(|| {
            ServeError::Plan("canonical weights hold no devices".into())
        })?;
        let take = |name: String| -> Result<Tensor> {
            w.get(&name)
                .cloned()
                .ok_or_else(|| ServeError::Plan(format!("canonical weights missing `{name}`")))
        };
        let norm = |name: &str| -> Result<Norm> {
            Ok(Norm {
                g: take(format!("{name}.g"))?,
                b: if cfg.rms_norm { None } else { Some(take(format!("{name}.b"))?) },
            })
        };
        let mat = |name: String| -> Result<Packed> {
            let w = take(name.clone())?;
            Ok(Packed::adopt(w, packs.and_then(|m| m.get(&name)), false))
        };
        let batched = |name: String| -> Result<Packed> {
            let w = take(name.clone())?;
            Ok(Packed::adopt(w, packs.and_then(|m| m.get(&name)), true))
        };
        let mut blocks = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let pre = |n: &str| format!("h{l}.{n}");
            let attn = Attn {
                wq: mat(pre("attn.wq"))?,
                bq: take(pre("attn.bq"))?,
                wk: mat(pre("attn.wk"))?,
                bk: take(pre("attn.bk"))?,
                wv: mat(pre("attn.wv"))?,
                bv: take(pre("attn.bv"))?,
                wo: mat(pre("attn.wo"))?,
                bo: take(pre("attn.bo"))?,
            };
            let ffn = if cfg.moe_layers().contains(&l) {
                Ffn::Moe {
                    gate: mat(pre("moe.gate.w"))?,
                    w1: batched(pre("moe.expert.w1"))?,
                    w2: batched(pre("moe.expert.w2"))?,
                    w3: cfg.swiglu.then(|| batched(pre("moe.expert.w3"))).transpose()?,
                    shared: cfg
                        .shared_expert
                        .then(|| {
                            Ok::<_, ServeError>(Box::new((
                                mat(pre("moe.shared.w1"))?,
                                mat(pre("moe.shared.w2"))?,
                            )))
                        })
                        .transpose()?,
                }
            } else if cfg.swiglu {
                Ffn::Swiglu {
                    w1: mat(pre("ffn.w1"))?,
                    w3: mat(pre("ffn.w3"))?,
                    w2: mat(pre("ffn.w2"))?,
                }
            } else {
                Ffn::Dense {
                    w1: mat(pre("ffn.w1"))?,
                    b1: take(pre("ffn.b1"))?,
                    w2: mat(pre("ffn.w2"))?,
                    b2: take(pre("ffn.b2"))?,
                }
            };
            blocks.push(Block { ln1: norm(&pre("ln1"))?, attn, ln2: norm(&pre("ln2"))?, ffn });
        }
        Ok(DecodeModel {
            cfg: cfg.clone(),
            wte: take("wte".into())?,
            blocks,
            ln_f: norm("ln_f")?,
            lm_head: mat("lm_head".into())?,
        })
    }

    /// The model configuration this engine decodes.
    pub fn cfg(&self) -> &GptMoeConfig {
        &self.cfg
    }

    fn norm_fwd(&self, n: &Norm, x: &Tensor) -> Result<Tensor> {
        match &n.b {
            Some(b) => ev(Op::LayerNorm { eps: NORM_EPS }, &[x, &n.g, b]),
            None => ev(Op::RmsNorm { eps: NORM_EPS }, &[x, &n.g]),
        }
    }

    fn linear(&self, x: &Tensor, w: &Packed, b: Option<&Tensor>) -> Result<Tensor> {
        let y = evp(Op::MatMul { transpose_b: false }, x, w)?;
        match b {
            Some(b) => ev(Op::BiasAdd, &[&y, b]),
            None => Ok(y),
        }
    }

    /// Feed-forward sub-block on `xn` of shape `[b, s, h]`. Dropout ops
    /// are identity at execution time and are skipped; `AllToAll` is an
    /// exact copy at one device and is skipped.
    fn ffn_fwd(&self, ffn: &Ffn, xn: &Tensor) -> Result<Tensor> {
        match ffn {
            Ffn::Dense { w1, b1, w2, b2 } => {
                let h = self.linear(xn, w1, Some(b1))?;
                let h = ev(Op::Gelu, &[&h])?;
                self.linear(&h, w2, Some(b2))
            }
            Ffn::Swiglu { w1, w3, w2 } => {
                let a = self.linear(xn, w1, None)?;
                let a = ev(Op::Silu, &[&a])?;
                let b = self.linear(xn, w3, None)?;
                let gated = ev(Op::Mul, &[&a, &b])?;
                self.linear(&gated, w2, None)
            }
            Ffn::Moe { gate, w1, w2, w3, shared } => {
                let experts = self.cfg.experts();
                let (batch, seq) = (xn.shape()[0], xn.shape()[1]);
                // Drop-free capacity: every token reaches all k of its
                // experts, making routing per-token and therefore
                // batch-composition-independent.
                let capacity = batch * seq * self.cfg.gate.k();
                let gate_out = eval_op_packed(
                    &Op::Gate { kind: self.cfg.gate, experts, capacity },
                    &[xn, &gate.w],
                    gate.p.as_ref(),
                )
                .map_err(|e| ServeError::Exec(e.to_string()))?;
                let (assign, scale) = (&gate_out[0], &gate_out[1]);
                let buf = ev(Op::MoeDispatch { experts, capacity }, &[xn, assign, scale])?;
                let shared_out = match shared {
                    Some(sw) => {
                        let s = self.linear(xn, &sw.0, None)?;
                        let s = ev(Op::Gelu, &[&s])?;
                        Some(self.linear(&s, &sw.1, None)?)
                    }
                    None => None,
                };
                let loc = ev(Op::ExpertsLayout { gpus: 1 }, &[&buf])?;
                let hx = match w3 {
                    Some(w3) => {
                        let a = evp(Op::BatchedMatMul { transpose_b: false }, &loc, w1)?;
                        let a = ev(Op::Silu, &[&a])?;
                        let b = evp(Op::BatchedMatMul { transpose_b: false }, &loc, w3)?;
                        let gated = ev(Op::Mul, &[&a, &b])?;
                        evp(Op::BatchedMatMul { transpose_b: false }, &gated, w2)?
                    }
                    None => {
                        let hx = evp(Op::BatchedMatMul { transpose_b: false }, &loc, w1)?;
                        let hx = ev(Op::Gelu, &[&hx])?;
                        evp(Op::BatchedMatMul { transpose_b: false }, &hx, w2)?
                    }
                };
                let back = ev(Op::ExpertsLayoutInv { gpus: 1 }, &[&hx])?;
                let routed = ev(
                    Op::MoeGather { experts, capacity, batch, seq },
                    &[&back, assign, scale],
                )?;
                match shared_out {
                    Some(s) => ev(Op::Add, &[&routed, &s]),
                    None => Ok(routed),
                }
            }
        }
    }

    /// Full-sequence (square-attention) forward over one prompt.
    /// Returns the logits `[1, s, vocab]` and per-layer `(k, v)` tensors
    /// `[1, s, hidden]` for seeding a [`KvArena`] slot.
    pub fn prefill_full(&self, prompt: &[u32]) -> Result<(Tensor, Vec<(Tensor, Tensor)>)> {
        if prompt.is_empty() {
            return Err(ServeError::BadRequest("empty prompt".into()));
        }
        let s = prompt.len();
        let ids = Tensor::from_vec(vec![1, s], prompt.iter().map(|&t| t as f32).collect())
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let mut x = ev(Op::Embedding, &[&self.wte, &ids])?;
        let mut kvs = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let xn = self.norm_fwd(&block.ln1, &x)?;
            let q = self.linear(&xn, &block.attn.wq, Some(&block.attn.bq))?;
            let k = self.linear(&xn, &block.attn.wk, Some(&block.attn.bk))?;
            let v = self.linear(&xn, &block.attn.wv, Some(&block.attn.bv))?;
            let scores = ev(Op::AttnScores { heads: self.cfg.heads, causal: true }, &[&q, &k])?;
            let probs = ev(Op::Softmax, &[&scores])?;
            let ctx = ev(Op::AttnContext { heads: self.cfg.heads }, &[&probs, &v])?;
            let proj = self.linear(&ctx, &block.attn.wo, Some(&block.attn.bo))?;
            x = ev(Op::Add, &[&x, &proj])?;
            let xn = self.norm_fwd(&block.ln2, &x)?;
            let f = self.ffn_fwd(&block.ffn, &xn)?;
            x = ev(Op::Add, &[&x, &f])?;
            kvs.push((k, v));
        }
        let xf = self.norm_fwd(&self.ln_f, &x)?;
        let logits = self.linear(&xf, &self.lm_head, None)?;
        Ok((logits, kvs))
    }

    /// One decode step for `n` sequences: feed each sequence's newest
    /// token, append its K/V rows to the arena (uncommitted — the caller
    /// [commits](KvArena::commit) after the step's tokens are safely
    /// emitted, or [rolls back](KvArena::rollback) to retry), and return
    /// logits `[n, 1, vocab]`.
    ///
    /// Attention is ragged — per sequence, a `[1, 1, h]` query against
    /// that sequence's cached `[1, len+1, h]` keys/values — while every
    /// other op runs batched over `[n, 1, h]`.
    pub fn step(&self, tokens: &[u32], arena: &mut KvArena, slots: &[SlotId]) -> Result<Tensor> {
        let n = tokens.len();
        if n == 0 || n != slots.len() {
            return Err(ServeError::BadRequest(format!(
                "step wants matching non-empty tokens/slots, got {n}/{}",
                slots.len()
            )));
        }
        let h = self.cfg.hidden;
        let ids = Tensor::from_vec(vec![n, 1], tokens.iter().map(|&t| t as f32).collect())
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let mut x = ev(Op::Embedding, &[&self.wte, &ids])?;
        for (l, block) in self.blocks.iter().enumerate() {
            let xn = self.norm_fwd(&block.ln1, &x)?;
            let q = self.linear(&xn, &block.attn.wq, Some(&block.attn.bq))?;
            let k = self.linear(&xn, &block.attn.wk, Some(&block.attn.bk))?;
            let v = self.linear(&xn, &block.attn.wv, Some(&block.attn.bv))?;
            let mut ctx = vec![0.0f32; n * h];
            for i in 0..n {
                arena.append_row(slots[i], l, &k.data()[i * h..(i + 1) * h], &v.data()[i * h..(i + 1) * h])?;
                let len = arena.len(slots[i]) + 1; // committed rows + the one just appended
                let qi = Tensor::from_vec(vec![1, 1, h], q.data()[i * h..(i + 1) * h].to_vec())
                    .map_err(|e| ServeError::Exec(e.to_string()))?;
                let ki = Tensor::from_vec(vec![1, len, h], arena.k_data(slots[i], l).to_vec())
                    .map_err(|e| ServeError::Exec(e.to_string()))?;
                let vi = Tensor::from_vec(vec![1, len, h], arena.v_data(slots[i], l).to_vec())
                    .map_err(|e| ServeError::Exec(e.to_string()))?;
                let scores = ev(Op::AttnScores { heads: self.cfg.heads, causal: true }, &[&qi, &ki])?;
                let probs = ev(Op::Softmax, &[&scores])?;
                let ci = ev(Op::AttnContext { heads: self.cfg.heads }, &[&probs, &vi])?;
                ctx[i * h..(i + 1) * h].copy_from_slice(ci.data());
            }
            let ctx = Tensor::from_vec(vec![n, 1, h], ctx).map_err(|e| ServeError::Exec(e.to_string()))?;
            let proj = self.linear(&ctx, &block.attn.wo, Some(&block.attn.bo))?;
            x = ev(Op::Add, &[&x, &proj])?;
            let xn = self.norm_fwd(&block.ln2, &x)?;
            let f = self.ffn_fwd(&block.ffn, &xn)?;
            x = ev(Op::Add, &[&x, &f])?;
        }
        let xf = self.norm_fwd(&self.ln_f, &x)?;
        self.linear(&xf, &self.lm_head, None)
    }

    /// Seed an arena slot from a prefill's per-layer `(k, v)` tensors
    /// (shape `[1, tokens, hidden]`, or a longer padded prefill of which
    /// only the first `tokens` rows are real).
    pub fn seed_slot(
        &self,
        arena: &mut KvArena,
        slot: SlotId,
        kvs: &[(Tensor, Tensor)],
        tokens: usize,
    ) -> Result<()> {
        let h = self.cfg.hidden;
        let rows: Vec<(&[f32], &[f32])> = kvs
            .iter()
            .map(|(k, v)| (&k.data()[..tokens * h], &v.data()[..tokens * h]))
            .collect();
        arena.seed(slot, &rows, tokens)
    }
}

/// A synchronous single-sequence decode session: prefill once, then one
/// greedy (argmax) token per [`step`](DecodeSession::step). This is both
/// the simplest client of [`DecodeModel`] and the *reference* the
/// batched runtime is tested against — batching must reproduce these
/// exact tokens.
#[derive(Debug)]
pub struct DecodeSession {
    model: std::sync::Arc<DecodeModel>,
    arena: KvArena,
    slot: SlotId,
    last_logits: Vec<f32>,
}

impl DecodeSession {
    /// A session able to hold `max_tokens` K/V rows.
    pub fn new(model: std::sync::Arc<DecodeModel>, max_tokens: usize) -> Self {
        let cfg = model.cfg().clone();
        let mut arena = KvArena::new(cfg.layers, cfg.hidden, max_tokens);
        let slot = arena.alloc(max_tokens).expect("fresh arena fits its own capacity");
        DecodeSession { model, arena, slot, last_logits: Vec::new() }
    }

    /// Run the prompt through the full-sequence forward, seed the cache,
    /// and return the greedy next token.
    pub fn prefill(&mut self, prompt: &[u32]) -> Result<u32> {
        let (logits, kvs) = self.model.prefill_full(prompt)?;
        self.model.seed_slot(&mut self.arena, self.slot, &kvs, prompt.len())?;
        let vocab = *logits.shape().last().unwrap();
        self.last_logits = logits.data()[(prompt.len() - 1) * vocab..prompt.len() * vocab].to_vec();
        Ok(argmax(&self.last_logits))
    }

    /// Feed one token, returning the greedy next token.
    pub fn step(&mut self, token: u32) -> Result<u32> {
        let logits = self.model.step(&[token], &mut self.arena, &[self.slot])?;
        self.arena.commit(self.slot);
        self.last_logits = logits.data().to_vec();
        Ok(argmax(&self.last_logits))
    }

    /// Logits of the most recent position, `[vocab]`. Empty before the
    /// first [`prefill`](Self::prefill).
    pub fn last_logits(&self) -> &[f32] {
        &self.last_logits
    }

    /// Committed tokens in the cache.
    pub fn cached_tokens(&self) -> usize {
        self.arena.len(self.slot)
    }
}
