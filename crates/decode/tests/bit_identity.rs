//! The decode engine's load-bearing invariant: a KV-cached decode step
//! produces **bit-identical** logits to re-running the whole sequence
//! through the graph executor.
//!
//! The reference path is maximally independent of the path under test:
//! `Plan::build_prefill` + `Plan::execute` runs the *optimized graph*
//! through the multi-device `Executor` (full square attention, no
//! cache), while `DecodeSession` runs the eager `eval_op` chain one
//! token at a time against the arena. Equality is asserted on raw f32
//! bits, not a tolerance.

use std::sync::Arc;

use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_decode::{DecodeModel, DecodeSession};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{canonical_weights, CanonicalWeights, Plan};
use lancet_tensor::Tensor;
use proptest::prelude::*;

/// Model zoo: every architectural axis the decode engine claims to
/// support (layer norm vs RMS, GELU MLP vs SwiGLU, switch vs top-k vs
/// batch-prioritized routing, shared expert, every layer MoE).
fn variant(which: usize) -> GptMoeConfig {
    match which % 4 {
        0 => GptMoeConfig::tiny(1, GateKind::Switch),
        1 => GptMoeConfig::tiny(1, GateKind::TopK { k: 2 }).with_shared_expert(true),
        2 => GptMoeConfig::tiny(1, GateKind::BatchPrioritized),
        _ => GptMoeConfig::mixtral_tiny(1),
    }
}

fn serving_normalized(cfg: GptMoeConfig) -> GptMoeConfig {
    let experts = cfg.experts() as f64;
    cfg.with_capacity_factor(experts)
}

/// Last-position logits of a full-sequence pass over `tokens`, via the
/// optimized-graph executor.
fn reference_last_row(
    lancet: &Lancet,
    cfg: &GptMoeConfig,
    canonical: &CanonicalWeights,
    tokens: &[u32],
) -> Vec<u32> {
    let plan = Plan::build_prefill(lancet, cfg, 1, tokens.len(), canonical)
        .expect("reference plan builds");
    let ids = Tensor::from_vec(
        vec![1, tokens.len()],
        tokens.iter().map(|&t| t as f32).collect::<Vec<_>>(),
    )
    .unwrap();
    let logits = plan.execute(&ids).expect("reference plan executes");
    let vocab = *logits.shape().last().unwrap();
    logits.data()[(tokens.len() - 1) * vocab..tokens.len() * vocab]
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn assert_decode_matches(cfg: GptMoeConfig, prompt: &[u32], steps: usize) {
    let cfg = serving_normalized(cfg);
    let canonical = canonical_weights(&cfg, 11).unwrap();
    let model = Arc::new(DecodeModel::new(&cfg, &canonical).unwrap());
    let lancet = Lancet::new(
        ClusterSpec::of(ClusterKind::A100, 1),
        1,
        LancetOptions::decode_serving(),
    );

    let mut session = DecodeSession::new(model, prompt.len() + steps + 1);
    let mut tokens = prompt.to_vec();
    let mut next = session.prefill(prompt).unwrap();
    for step in 0..=steps {
        let got: Vec<u32> = session.last_logits().iter().map(|x| x.to_bits()).collect();
        let want = reference_last_row(&lancet, &cfg, &canonical, &tokens);
        assert_eq!(
            got, want,
            "`{}`: cached logits diverge from the full-sequence forward at step {step} \
             (seq len {})",
            cfg.name,
            tokens.len()
        );
        if step == steps {
            break;
        }
        tokens.push(next);
        next = session.step(next).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::env_cases(6))]

    /// For random prompts, models, and generation lengths, every decode
    /// step's logits equal the full-sequence forward's last row, bit for
    /// bit.
    #[test]
    fn cached_decode_is_bit_identical_to_full_forward(
        which in 0usize..4,
        seed in any::<u64>(),
        plen in 1usize..6,
        steps in 1usize..5,
    ) {
        let cfg = variant(which);
        let vocab = cfg.vocab as u64;
        let mut s = seed;
        let prompt: Vec<u32> = (0..plen)
            .map(|_| {
                // SplitMix64 over the proptest seed keeps prompts varied
                // but replayable from the failure seed alone.
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) % vocab) as u32
            })
            .collect();
        assert_decode_matches(cfg, &prompt, steps);
    }
}

/// Deterministic anchors for each variant (fast signal on regressions,
/// independent of the proptest sampler).
#[test]
fn every_variant_decodes_bit_identically() {
    for which in 0..4 {
        assert_decode_matches(variant(which), &[3, 1, 4, 1], 3);
    }
}
