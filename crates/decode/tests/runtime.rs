//! Runtime conformance: batched, bucketed, windowed — same bits.
//!
//! The batched-equals-solo contract: whatever the admission policy,
//! prefill path, or batch composition, every stream's tokens equal the
//! sequence's solo [`DecodeSession`] run.

use std::sync::Arc;
use std::time::Duration;

use lancet_decode::{
    BatchMode, DecodeConfig, DecodeModel, DecodeRuntime, DecodeSession, ServeError,
};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::canonical_weights;

const SEED: u64 = 0xdec0; // DecodeConfig::default().seed

fn tiny() -> GptMoeConfig {
    GptMoeConfig::tiny(1, GateKind::Switch)
}

/// The prompts the batched runs must reproduce token-for-token; varied
/// lengths and `max_new` so sequences join and leave the batch at
/// different steps.
fn workload() -> Vec<(Vec<u32>, usize)> {
    vec![
        (vec![3, 1, 4], 6),
        (vec![1, 5], 3),
        (vec![9, 2, 6, 5], 8),
        (vec![5], 5),
        (vec![8, 9, 7, 9, 3], 2),
        (vec![2, 3], 7),
    ]
}

fn solo_tokens(model: &Arc<DecodeModel>, prompt: &[u32], max_new: usize) -> Vec<u32> {
    let mut session = DecodeSession::new(model.clone(), prompt.len() + max_new);
    let mut out = vec![session.prefill(prompt).unwrap()];
    while out.len() < max_new {
        let last = *out.last().unwrap();
        out.push(session.step(last).unwrap());
    }
    out
}

fn reference_model(cfg: &GptMoeConfig) -> Arc<DecodeModel> {
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, SEED).unwrap();
    Arc::new(DecodeModel::new(&normalized, &canonical).unwrap())
}

fn run_workload(config: DecodeConfig) -> Vec<Vec<u32>> {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(config);
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> = workload()
        .into_iter()
        .map(|(prompt, max_new)| runtime.submit(&cfg.name, &prompt, max_new).unwrap())
        .collect();
    let streams: Vec<Vec<u32>> = tickets.into_iter().map(|t| t.collect().unwrap()).collect();
    runtime.shutdown();
    streams
}

#[test]
fn continuous_batching_reproduces_solo_tokens() {
    let model = reference_model(&tiny());
    let streams = run_workload(DecodeConfig {
        mode: BatchMode::Continuous,
        max_inflight: 3, // force joins mid-flight: 6 requests, 3 slots
        ..DecodeConfig::default()
    });
    for ((prompt, max_new), got) in workload().iter().zip(&streams) {
        assert_eq!(got, &solo_tokens(&model, prompt, *max_new), "prompt {prompt:?}");
    }
}

#[test]
fn windowed_batching_reproduces_the_same_tokens() {
    let streams = run_workload(DecodeConfig {
        mode: BatchMode::Windowed,
        max_inflight: 3,
        ..DecodeConfig::default()
    });
    let continuous = run_workload(DecodeConfig {
        mode: BatchMode::Continuous,
        max_inflight: 3,
        ..DecodeConfig::default()
    });
    assert_eq!(streams, continuous, "admission policy must never change output bits");
}

#[test]
fn bucketed_prefill_equals_eager_prefill() {
    let bucketed = run_workload(DecodeConfig { prefill_buckets: true, ..DecodeConfig::default() });
    let eager = run_workload(DecodeConfig { prefill_buckets: false, ..DecodeConfig::default() });
    assert_eq!(
        bucketed, eager,
        "padded power-of-two prefill must be bit-identical to exact-length prefill"
    );
}

#[test]
fn bucketed_prefill_hits_the_plan_cache() {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(DecodeConfig::default());
    runtime.register_model(cfg.clone()).unwrap();
    // Same power-of-two bucket (4): lengths 3 and 4 share one plan.
    runtime.submit(&cfg.name, &[1, 2, 3], 2).unwrap().collect().unwrap();
    runtime.submit(&cfg.name, &[4, 5, 6, 7], 2).unwrap().collect().unwrap();
    runtime.submit(&cfg.name, &[8, 9], 2).unwrap().collect().unwrap(); // bucket 2
    let stats = runtime.stats();
    assert_eq!(stats.cache.misses, 2, "two distinct seq buckets");
    assert!(stats.cache.hits >= 1, "the shared bucket must hit");
    runtime.shutdown();
}

#[test]
fn stats_cover_streaming_latencies() {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(DecodeConfig::default());
    runtime.register_model(cfg.clone()).unwrap();
    for _ in 0..3 {
        runtime.submit(&cfg.name, &[1, 2], 5).unwrap().collect().unwrap();
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.outstanding(), 0);
    assert!(stats.ttft_p50_ms > 0.0, "TTFT percentiles populated");
    assert!(stats.itl_p50_ms > 0.0, "ITL percentiles populated");
    assert!(stats.batches >= 12, "4 post-prefill steps per request");
    runtime.shutdown();
}

#[test]
fn submission_rejections_are_typed() {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(DecodeConfig {
        kv_capacity_tokens: 16,
        ..DecodeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();

    assert!(matches!(
        runtime.submit("nope", &[1], 1),
        Err(ServeError::UnknownModel(_))
    ));
    assert!(matches!(
        runtime.submit(&cfg.name, &[], 1),
        Err(ServeError::BadRequest(_))
    ));
    assert!(matches!(
        runtime.submit(&cfg.name, &[1], 0),
        Err(ServeError::BadRequest(_))
    ));
    assert!(
        matches!(runtime.submit(&cfg.name, &[1, 2], 40), Err(ServeError::BadRequest(_))),
        "a request that can never fit the KV arena is refused at the door"
    );
    assert!(matches!(
        runtime.submit(&cfg.name, &[99], 1),
        Err(ServeError::BadRequest(_))
    ));
    runtime.shutdown();
    assert!(matches!(runtime.submit(&cfg.name, &[1], 1), Err(ServeError::ShuttingDown)));
}

#[test]
fn kv_backpressure_queues_rather_than_fails() {
    let cfg = tiny();
    // Arena fits ~2 concurrent requests; 6 submitted. Excess requests
    // wait for slots and still finish with the right tokens.
    let model = reference_model(&cfg);
    let runtime = DecodeRuntime::start(DecodeConfig {
        kv_capacity_tokens: 20,
        max_inflight: 8,
        ..DecodeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> = workload()
        .into_iter()
        .map(|(p, m)| runtime.submit(&cfg.name, &p, m).unwrap())
        .collect();
    for ((prompt, max_new), ticket) in workload().iter().zip(tickets) {
        assert_eq!(ticket.collect().unwrap(), solo_tokens(&model, prompt, *max_new));
    }
    runtime.shutdown();
}

#[test]
fn unsupported_models_are_rejected_at_registration() {
    let runtime = DecodeRuntime::start(DecodeConfig::default());
    assert!(
        matches!(
            runtime.register_model(GptMoeConfig::tiny(2, GateKind::Switch)),
            Err(ServeError::BadRequest(_))
        ),
        "multi-gpu"
    );
    assert!(
        matches!(
            runtime.register_model(tiny().with_fsdp(true)),
            Err(ServeError::BadRequest(_))
        ),
        "fsdp"
    );
    assert!(
        matches!(
            runtime.register_model(GptMoeConfig::tiny(1, GateKind::ExpertChoice)),
            Err(ServeError::BadRequest(_))
        ),
        "expert-choice gating is batch-dependent"
    );
    runtime.shutdown();
}

#[test]
fn step_deadline_trades_itl_for_joins() {
    // Smoke the deadline path: a positive step deadline must not change
    // tokens, only timing.
    let model = reference_model(&tiny());
    let streams = run_workload(DecodeConfig {
        step_deadline: Some(Duration::from_millis(1)),
        max_inflight: 4,
        ..DecodeConfig::default()
    });
    for ((prompt, max_new), got) in workload().iter().zip(&streams) {
        assert_eq!(got, &solo_tokens(&model, prompt, *max_new));
    }
}
