//! Chaos conformance for *streaming*: under the full fault mix
//! (slow workers, transient exec failures, plan-build failures, and
//! partial-commit worker panics injected mid-decode), every admitted
//! ticket observes
//!
//! * a **gapless, duplicate-free** token sequence `0, 1, 2, …` — the
//!   exactly-once-per-token contract;
//! * tokens that are a **bit-exact prefix of the fault-free solo run**
//!   (retries recompute from the rolled-back KV cache, so recovery can
//!   never alter content);
//! * exactly one terminal event — completion with all `max_new` tokens,
//!   or one typed error after a conformant prefix.
//!
//! A second harness pins the whole outcome sequence: with a fixed
//! `LANCET_CHAOS_SEED` and serialized admission, two fresh runtimes
//! replay the identical faults and deliver identical outcomes.

use std::sync::Arc;

use lancet_decode::{BatchMode, DecodeConfig, DecodeModel, DecodeRuntime, DecodeSession};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{canonical_weights, FaultSpec};

fn chaos_seed() -> u64 {
    std::env::var("LANCET_CHAOS_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(0xC4A05)
}

fn tiny() -> GptMoeConfig {
    GptMoeConfig::tiny(1, GateKind::Switch)
}

fn workload() -> Vec<(Vec<u32>, usize)> {
    (0..12)
        .map(|i| {
            let plen = 1 + (i * 7 + 3) % 5;
            let prompt = (0..plen).map(|j| ((i * 13 + j * 5 + 1) % 11) as u32).collect();
            (prompt, 2 + (i * 11 + 5) % 7)
        })
        .collect()
}

fn solo_reference(prompt: &[u32], max_new: usize) -> Vec<u32> {
    let cfg = tiny();
    let experts = cfg.experts() as f64;
    let normalized = cfg.with_capacity_factor(experts);
    let canonical = canonical_weights(&normalized, 0xdec0).unwrap();
    let model = Arc::new(DecodeModel::new(&normalized, &canonical).unwrap());
    let mut session = DecodeSession::new(model, prompt.len() + max_new);
    let mut out = vec![session.prefill(prompt).unwrap()];
    while out.len() < max_new {
        let last = *out.last().unwrap();
        out.push(session.step(last).unwrap());
    }
    out
}

/// Consume a ticket event-by-event, asserting the streaming contract.
/// Returns `(tokens, finished_ok)`.
fn consume_conformant(ticket: lancet_decode::StreamTicket) -> (Vec<u32>, bool) {
    let mut tokens = Vec::new();
    let mut errors = 0usize;
    while let Some(ev) = ticket.next() {
        match ev {
            Ok(tok) => {
                assert_eq!(
                    tok.index,
                    tokens.len(),
                    "stream must be gapless and duplicate-free"
                );
                assert_eq!(errors, 0, "no tokens after a terminal error");
                tokens.push(tok.token);
            }
            Err(_) => errors += 1,
        }
    }
    assert!(errors <= 1, "at most one terminal error");
    (tokens, errors == 0)
}

#[test]
fn chaos_mid_stream_loses_and_duplicates_nothing() {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(DecodeConfig {
        mode: BatchMode::Continuous,
        max_inflight: 4,
        fault: Some(FaultSpec::chaos(chaos_seed())),
        ..DecodeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();

    let tickets: Vec<_> = workload()
        .into_iter()
        .map(|(prompt, max_new)| {
            let t = runtime.submit(&cfg.name, &prompt, max_new).unwrap();
            (prompt, max_new, t)
        })
        .collect();

    let mut completed = 0usize;
    for (prompt, max_new, ticket) in tickets {
        let (tokens, finished) = consume_conformant(ticket);
        let reference = solo_reference(&prompt, max_new);
        assert_eq!(
            tokens,
            reference[..tokens.len()],
            "delivered tokens must be a bit-exact prefix of the fault-free run ({prompt:?})"
        );
        if finished {
            assert_eq!(tokens.len(), max_new, "a completed stream delivers every token");
            completed += 1;
        }
        // A failed stream's prefix length is otherwise unconstrained —
        // conformance is about the tokens that *did* flow.
    }
    let stats = runtime.stats();
    assert!(stats.injected_faults > 0, "the chaos mix must actually fire");
    assert_eq!(stats.outstanding(), 0, "every admitted stream terminated");
    assert!(completed > 0, "the runtime survives chaos, not just fails fast");
    runtime.shutdown();
}

/// With serialized admission (one sequence in flight, consumed to
/// completion before the next submit) the scheduler's fault draws are a
/// pure function of the seed — so the entire outcome sequence replays
/// bit-identically.
fn serialized_outcomes(seed: u64) -> Vec<(Vec<u32>, bool)> {
    let cfg = tiny();
    let runtime = DecodeRuntime::start(DecodeConfig {
        max_inflight: 1,
        fault: Some(FaultSpec::chaos(seed)),
        ..DecodeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let outcomes = workload()
        .into_iter()
        .map(|(prompt, max_new)| {
            let ticket = runtime.submit(&cfg.name, &prompt, max_new).unwrap();
            consume_conformant(ticket)
        })
        .collect();
    runtime.shutdown();
    outcomes
}

#[test]
fn fixed_seed_replays_bit_identically() {
    let seed = chaos_seed();
    let first = serialized_outcomes(seed);
    let second = serialized_outcomes(seed);
    assert_eq!(first, second, "same LANCET_CHAOS_SEED must replay the same outcomes");
    assert!(
        first.iter().any(|(_, ok)| !ok) || first.iter().all(|(_, ok)| *ok),
        "outcome vector is well-formed"
    );
}
