//! Benchmark harness regenerating every figure of the Lancet paper.
//!
//! Each `figs::figNN` module reproduces one evaluation figure: it runs the
//! relevant (system, model, cluster) grid through the unified runner,
//! prints a paper-style markdown table, and returns machine-readable
//! [`Record`]s (also dumped as JSON by the `all_figures` binary for
//! EXPERIMENTS.md bookkeeping).
//!
//! Run an individual figure with e.g.
//! `cargo run --release -p lancet-bench --bin fig11_throughput_switch`,
//! or everything with `… --bin all_figures`. Every binary accepts
//! `--quick` to shrink the sweep for smoke testing.

pub mod figs;
mod record;

pub use record::{save_json, Record};

use lancet_cost::ClusterKind;
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;

/// The two benchmark models, paper §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// GPT2-S-MoE: 12 layers, hidden 768.
    S,
    /// GPT2-L-MoE: 24 layers, hidden 1024.
    L,
}

impl Model {
    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Model::S => "GPT2-S-MoE",
            Model::L => "GPT2-L-MoE",
        }
    }

    /// Both models.
    pub fn all() -> [Model; 2] {
        [Model::S, Model::L]
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-GPU batch sizes of paper §7: "on A100, we use batch size 24 per
/// GPU for GPT2-S-MoE and 48 for GPT2-L-MoE. On V100, we use batch size 16
/// for GPT2-S-MoE and 8 for GPT2-L-MoE."
pub fn paper_batch(model: Model, cluster: ClusterKind) -> usize {
    match (model, cluster) {
        (Model::S, ClusterKind::A100) => 24,
        (Model::L, ClusterKind::A100) => 48,
        (Model::S, ClusterKind::V100) => 16,
        (Model::L, ClusterKind::V100) => 8,
    }
}

/// Builds the paper-configured model for a cluster.
pub fn paper_config(model: Model, cluster: ClusterKind, gpus: usize, gate: GateKind) -> GptMoeConfig {
    let cfg = match model {
        Model::S => GptMoeConfig::gpt2_s_moe(gpus, gate),
        Model::L => GptMoeConfig::gpt2_l_moe(gpus, gate),
    };
    cfg.with_batch(paper_batch(model, cluster))
}

/// GPU counts for the weak-scaling sweeps (paper: 1–8 nodes of 8 GPUs).
pub fn gpu_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![16]
    } else {
        vec![8, 16, 32, 64]
    }
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats seconds as milliseconds with 1 decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batches_match_section7() {
        assert_eq!(paper_batch(Model::S, ClusterKind::A100), 24);
        assert_eq!(paper_batch(Model::L, ClusterKind::A100), 48);
        assert_eq!(paper_batch(Model::S, ClusterKind::V100), 16);
        assert_eq!(paper_batch(Model::L, ClusterKind::V100), 8);
    }

    #[test]
    fn paper_config_builds() {
        let cfg = paper_config(Model::L, ClusterKind::A100, 32, GateKind::Switch);
        assert_eq!(cfg.layers, 24);
        assert_eq!(cfg.batch, 48);
        assert_eq!(cfg.experts(), 64);
    }

    #[test]
    fn sweeps() {
        assert_eq!(gpu_sweep(true), vec![16]);
        assert_eq!(gpu_sweep(false), vec![8, 16, 32, 64]);
    }
}
