//! Paper Fig. 15 — Lancet's optimization (compile) time, dominated by the
//! operator-partition pass; mostly a function of model depth, not of
//! cluster size.

use crate::{gpu_sweep, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_core::{partition_pass_with, PartitionMemo, PartitionOptions, TimeEstimator};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;
use std::time::Instant;

/// Measures optimization wall-clock time across models and GPU counts.
pub fn run(quick: bool) -> Vec<Record> {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for model in Model::all() {
        for gpus in gpu_sweep(quick) {
            let cfg = paper_config(model, ClusterKind::A100, gpus, GateKind::Switch);
            let out = run_system(System::Lancet, &cfg, ClusterKind::A100).expect("run");
            let opt = out.opt_time.expect("lancet reports opt time").as_secs_f64();
            rows.push(vec![
                model.name().into(),
                gpus.to_string(),
                format!("{opt:.2}"),
            ]);
            let mut r = Record::new("fig15");
            r.model = model.name().into();
            r.cluster = "A100".into();
            r.gpus = gpus;
            r.system = "Lancet".into();
            r.gate = "switch".into();
            r.opt_time_s = Some(opt);
            records.push(r);
        }
    }
    print_table(
        "Fig. 15 — optimization time, Switch gate (seconds)",
        &["Model", "GPUs", "Optimization time (s)"],
        &rows,
    );
    println!(
        "\nReading: optimization time grows with layer count (GPT2-L ≈ 2× GPT2-S) \
         and is largely independent of GPU count, matching the paper. Absolute \
         values are far below the paper's ~minutes because our op profiler is \
         analytical rather than running real kernels."
    );
    records
}

/// One timed configuration of the partition-search engine.
struct EngineRun {
    /// Display / record name.
    system: &'static str,
    /// Search-engine knobs under test.
    opts: PartitionOptions,
    /// Whether to reuse the memo warmed by the previous configurations
    /// (models repeated `Lancet::optimize` calls on one instance).
    reuse_memo: bool,
}

/// Times one partition-pass run and returns `(wall seconds, report)`.
fn time_partition(
    forward: &lancet_ir::Graph,
    estimator: &TimeEstimator,
    opts: &PartitionOptions,
    memo: &PartitionMemo,
) -> (f64, lancet_core::PartitionReport) {
    let started = Instant::now();
    let (_, report) = partition_pass_with(forward, estimator, opts, memo).expect("partition pass");
    (started.elapsed().as_secs_f64(), report)
}

/// The optimization-time *story*: the same DP search run by the
/// pre-engine sequential evaluator, then with worker threads, then with
/// the structural memo (cold and warm). Complements [`run`], which
/// reports end-to-end optimization time; this isolates the partition
/// pass — where that time goes — on GPT2-S-MoE with default options.
pub fn run_engine(quick: bool) -> Vec<Record> {
    let gpus = 16;
    let cfg = paper_config(Model::S, ClusterKind::A100, gpus, GateKind::Switch);
    let cfg = if quick { cfg.with_layers(4) } else { cfg };
    let forward = lancet_models::build_forward(&cfg).expect("build").graph;
    let lancet = lancet_core::Lancet::new(
        lancet_cost::ClusterSpec::a100(gpus / 8),
        gpus,
        lancet_core::LancetOptions::default(),
    );
    let estimator = lancet.estimator();

    let configs = [
        EngineRun {
            system: "sequential (baseline)",
            opts: PartitionOptions { workers: 1, memoize: false, ..Default::default() },
            reuse_memo: false,
        },
        EngineRun {
            system: "parallel",
            opts: PartitionOptions { workers: 4, memoize: false, ..Default::default() },
            reuse_memo: false,
        },
        EngineRun {
            system: "parallel+memo (cold)",
            opts: PartitionOptions::default(),
            reuse_memo: false,
        },
        EngineRun {
            system: "parallel+memo (warm)",
            opts: PartitionOptions::default(),
            reuse_memo: true,
        },
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut baseline_time = None;
    let mut baseline_report = None;
    let shared_memo = PartitionMemo::new();
    for run in &configs {
        let fresh_memo = PartitionMemo::new();
        let memo = if run.reuse_memo { &shared_memo } else { &fresh_memo };
        // Warm the shared memo for the "(warm)" row with the cold run's
        // evaluations, like repeated `Lancet::optimize` calls would.
        let memo = if run.opts.memoize && !run.reuse_memo { &shared_memo } else { memo };
        let (secs, report) = time_partition(&forward, estimator, &run.opts, memo);
        let base = *baseline_time.get_or_insert(secs);
        match &baseline_report {
            None => baseline_report = Some(report.clone()),
            Some(b) => {
                assert_eq!(report.ranges, b.ranges, "{}: ranges diverged from sequential", run.system);
                assert_eq!(
                    report.estimated_forward_time, b.estimated_forward_time,
                    "{}: estimate diverged from sequential",
                    run.system
                );
            }
        }
        rows.push(vec![
            run.system.into(),
            format!("{}", report.workers),
            format!("{:.3}", secs),
            format!("{:.1}x", base / secs.max(1e-12)),
            report.evaluations.to_string(),
            report.memo_hits.to_string(),
            format!("{:.0}%", report.memo_hit_ratio() * 100.0),
        ]);
        let mut r = Record::new("fig15_engine");
        r.model = cfg.name.clone();
        r.cluster = "A100".into();
        r.gpus = gpus;
        r.system = run.system.into();
        r.gate = "switch".into();
        r.opt_time_s = Some(secs);
        r.extra = Some(report.memo_hit_ratio());
        records.push(r);
    }
    print_table(
        "Fig. 15 supplement — partition-search engine, GPT2-S-MoE (A100, 16 GPUs)",
        &["Engine", "Workers", "partition_pass (s)", "Speedup", "Pricings", "Memo hits", "Hit rate"],
        &rows,
    );
    println!(
        "\nReading: every engine returns bit-identical ranges and estimates \
         (asserted above). The memo delivers the bulk of the speedup — GPT2's \
         repeated layers mean most DP candidates are structurally identical — \
         and a warm memo (repeated optimize calls on one Lancet instance) \
         reduces the search to pure cache lookups. Thread workers help only \
         when the host actually has spare cores."
    );
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance gate: the default engine with a warm memo —
    /// the steady state of repeated `Lancet::optimize` calls — is at
    /// least 2x faster than the sequential, unmemoized search on
    /// GPT2-S-MoE; the cold engine is no slower and already reports memo
    /// hits; every engine returns bit-identical results (asserted inside
    /// `run_engine`). Thread workers add speedup only on multi-core
    /// hosts, so this gate does not depend on them.
    #[test]
    fn engine_speedup_at_least_2x() {
        let records = run_engine(true);
        assert_eq!(records.len(), 4);
        let secs = |system: &str| {
            records
                .iter()
                .find(|r| r.system == system)
                .and_then(|r| r.opt_time_s)
                .expect("missing engine record")
        };
        let sequential = secs("sequential (baseline)");
        let cold = secs("parallel+memo (cold)");
        let warm = secs("parallel+memo (warm)");
        assert!(
            sequential >= 2.0 * warm,
            "warm memoized search not 2x faster: sequential {sequential}s vs warm {warm}s"
        );
        assert!(
            cold <= sequential * 1.2,
            "cold memoized search regressed: sequential {sequential}s vs cold {cold}s"
        );
        let hit_rate =
            records.iter().find(|r| r.system == "parallel+memo (cold)").unwrap().extra.unwrap();
        assert!(hit_rate > 0.0, "cold run must report memo hits");
    }
}
