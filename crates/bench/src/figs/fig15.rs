//! Paper Fig. 15 — Lancet's optimization (compile) time, dominated by the
//! operator-partition pass; mostly a function of model depth, not of
//! cluster size.

use crate::{gpu_sweep, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;

/// Measures optimization wall-clock time across models and GPU counts.
pub fn run(quick: bool) -> Vec<Record> {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for model in Model::all() {
        for gpus in gpu_sweep(quick) {
            let cfg = paper_config(model, ClusterKind::A100, gpus, GateKind::Switch);
            let out = run_system(System::Lancet, &cfg, ClusterKind::A100).expect("run");
            let opt = out.opt_time.expect("lancet reports opt time").as_secs_f64();
            rows.push(vec![
                model.name().into(),
                gpus.to_string(),
                format!("{opt:.2}"),
            ]);
            let mut r = Record::new("fig15");
            r.model = model.name().into();
            r.cluster = "A100".into();
            r.gpus = gpus;
            r.system = "Lancet".into();
            r.gate = "switch".into();
            r.opt_time_s = Some(opt);
            records.push(r);
        }
    }
    print_table(
        "Fig. 15 — optimization time, Switch gate (seconds)",
        &["Model", "GPUs", "Optimization time (s)"],
        &rows,
    );
    println!(
        "\nReading: optimization time grows with layer count (GPT2-L ≈ 2× GPT2-S) \
         and is largely independent of GPU count, matching the paper. Absolute \
         values are far below the paper's ~minutes because our op profiler is \
         analytical rather than running real kernels."
    );
    records
}
