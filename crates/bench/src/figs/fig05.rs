//! Paper Fig. 5 — operator partitioning schemes in an MoE layer,
//! demonstrated numerically: direct micro-batching (Fig. 5b) drops extra
//! tokens, while Lancet's capacity-passing partitioned gating (Fig. 5c)
//! reproduces the unpartitioned drop set exactly.

use crate::{print_table, Record};
use lancet_ir::GateKind;
use lancet_moe::{expert_capacity, route, route_direct_microbatch, CapacityState, Routing};
use lancet_tensor::TensorRng;

/// Runs the token-dropping comparison over several workloads.
pub fn run(quick: bool) -> Vec<Record> {
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { (1..=10).collect() };
    let (tokens, experts) = (512usize, 8usize);
    let cap = expert_capacity(tokens, experts, 1.25);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for parts in [2usize, 4, 8] {
        let mut unpart_drops = 0usize;
        let mut direct_drops = 0usize;
        let mut lancet_drops = 0usize;
        let mut exact = true;
        for &seed in &seeds {
            // Temporally clustered preferences: consecutive tokens favour
            // the same expert (e.g. repeated phrases in a document). The
            // full batch fits within capacity, but a micro-batch with
            // proportionally reduced capacity (paper Fig. 5b) overflows.
            let mut rng = TensorRng::seed(seed);
            let mut logits = rng.uniform(vec![tokens, experts], -1.0, 1.0);
            for t in 0..tokens {
                let preferred = t * experts / tokens;
                logits.data_mut()[t * experts + preferred] += 2.0;
            }
            let full = route(GateKind::Switch, &logits, cap, None).expect("route");
            let direct =
                route_direct_microbatch(GateKind::Switch, &logits, cap, parts).expect("route");
            let mut state = CapacityState::new(experts);
            let chunks: Vec<Routing> = logits
                .split_axis(0, parts)
                .expect("split")
                .iter()
                .map(|c| route(GateKind::Switch, c, cap, Some(&mut state)).expect("route"))
                .collect();
            let lancet = Routing::concat(&chunks);
            unpart_drops += full.num_dropped();
            direct_drops += direct.num_dropped();
            lancet_drops += lancet.num_dropped();
            exact &= lancet == full;
        }
        let n = seeds.len();
        rows.push(vec![
            parts.to_string(),
            format!("{:.1}", unpart_drops as f64 / n as f64),
            format!("{:.1}", direct_drops as f64 / n as f64),
            format!("{:.1}", lancet_drops as f64 / n as f64),
            if exact { "yes".into() } else { "NO".into() },
        ]);
        let mut r = Record::new("fig05");
        r.system = "capacity-passing".into();
        r.gate = "switch".into();
        r.extra = Some(parts as f64);
        r.iteration_ms = Some(lancet_drops as f64 / n as f64);
        records.push(r);
        let mut r = Record::new("fig05");
        r.system = "direct-microbatch".into();
        r.gate = "switch".into();
        r.extra = Some(parts as f64);
        r.iteration_ms = Some(direct_drops as f64 / n as f64);
        records.push(r);
    }
    print_table(
        &format!(
            "Fig. 5 — average dropped tokens ({tokens} tokens, {experts} experts, C={cap}, skewed routing)"
        ),
        &["Micro-batches", "Unpartitioned", "Direct micro-batching (5b)", "Capacity-passing (5c)", "5c ≡ unpartitioned?"],
        &rows,
    );
    records
}
