//! Paper Fig. 16 — ablation study on 4 nodes: dW scheduling only,
//! partitioning only, and both, as relative speedup over RAF.

use crate::{paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;

/// Runs the ablation on 4 nodes of both clusters.
pub fn run(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let systems = [System::LancetDwOnly, System::LancetPartitionOnly, System::Lancet];
    let mut records = Vec::new();
    for cluster in [ClusterKind::A100, ClusterKind::V100] {
        let mut rows = Vec::new();
        for model in Model::all() {
            let cfg = paper_config(model, cluster, gpus, GateKind::Switch);
            let raf = run_system(System::Raf, &cfg, cluster).expect("run");
            let raf_time = raf.report.iteration_time;
            let mut row = vec![model.name().to_string()];
            for system in systems {
                let out = run_system(system, &cfg, cluster).expect("run");
                let speedup = raf_time / out.report.iteration_time;
                row.push(format!("{speedup:.3}x"));
                let mut r = Record::new("fig16").with_report(&out.report);
                r.model = model.name().into();
                r.cluster = cluster.name().into();
                r.gpus = gpus;
                r.system = system.name().into();
                r.gate = "switch".into();
                r.extra = Some(speedup);
                records.push(r);
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig. 16 — ablation on {} nodes of {} (speedup vs RAF)", gpus / 8, cluster.name()),
            &["Model", "dW schedule only", "Partition only", "Both (Lancet)"],
            &rows,
        );
    }
    println!(
        "\nReading: each optimization alone yields a lower speedup than both \
         combined; GPT2-L (more parameters, smaller batch → higher partition \
         overheads) leans more on dW scheduling, matching the paper."
    );
    records
}
