//! Paper Fig. 14 — accuracy of Lancet's cost model: predicted vs measured
//! iteration time across every benchmarked configuration (paper reports a
//! 3.83% mean error).

use crate::{gpu_sweep, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;

/// Runs every Lancet variant across the benchmark grid and compares the
/// compiler's prediction with the simulator's measurement.
pub fn run(quick: bool) -> Vec<Record> {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut errors = Vec::new();
    let systems = [System::Lancet, System::LancetDwOnly, System::LancetPartitionOnly];
    for cluster in [ClusterKind::A100, ClusterKind::V100] {
        for model in Model::all() {
            for gpus in gpu_sweep(quick) {
                for system in systems {
                    let cfg = paper_config(model, cluster, gpus, GateKind::Switch);
                    let out = run_system(system, &cfg, cluster).expect("run");
                    let measured = out.report.iteration_time;
                    let predicted = out.predicted.expect("lancet variants predict");
                    let err = (predicted - measured).abs() / measured;
                    errors.push(err);
                    rows.push(vec![
                        model.name().into(),
                        cluster.name().into(),
                        gpus.to_string(),
                        system.name().into(),
                        format!("{:.1}", predicted * 1e3),
                        format!("{:.1}", measured * 1e3),
                        format!("{:.2}%", err * 100.0),
                    ]);
                    let mut r = Record::new("fig14").with_report(&out.report);
                    r.model = model.name().into();
                    r.cluster = cluster.name().into();
                    r.gpus = gpus;
                    r.system = system.name().into();
                    r.gate = "switch".into();
                    r.predicted_ms = Some(predicted * 1e3);
                    records.push(r);
                }
            }
        }
    }
    print_table(
        "Fig. 14 — cost-model prediction accuracy",
        &["Model", "Cluster", "GPUs", "Variant", "Predicted (ms)", "Measured (ms)", "Error"],
        &rows,
    );
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nMean prediction error {:.2}% (max {:.2}%) over {} configurations — paper reports 3.83%.",
        mean * 100.0,
        max * 100.0,
        errors.len()
    );
    records
}
