//! Extension studies beyond the paper's figures, following its §8
//! discussion: shared-expert architectures, capacity-factor sensitivity,
//! optimizer hyper-parameters (ρ, γ, ι), and gradient all-reduce
//! interference.

use crate::{ms, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_core::{Lancet, LancetOptions, PartitionOptions};
use lancet_cost::{ClusterKind, ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{BackwardOptions, GateKind};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_sim::{SimConfig, SimReport, Simulator};

fn simulate(spec: &ClusterSpec, cfg: &GptMoeConfig, graph: &lancet_ir::Graph) -> SimReport {
    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec.clone()),
        SimConfig {
            capacity_factor: cfg.capacity_factor,
            memory_overhead: 1.1,
            ..SimConfig::new(cfg.gpus)
        },
    );
    sim.simulate(graph)
}

/// Shared-expert architectures (DeepSeek-MoE / PR-MoE, paper §8): the
/// shared branch's compute overlaps the all-to-all even without Lancet,
/// and Lancet stacks on top.
pub fn shared_expert(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let spec = ClusterSpec::v100(gpus / 8);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for shared in [false, true] {
        let cfg = paper_config(Model::S, ClusterKind::V100, gpus, GateKind::Switch)
            .with_shared_expert(shared);
        for optimized in [false, true] {
            let fwd = build_forward(&cfg).expect("build").graph;
            let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
            let graph = if optimized {
                lancet.optimize(fwd).expect("optimize").graph
            } else {
                lancet.baseline(fwd).expect("baseline").graph
            };
            let report = simulate(&spec, &cfg, &graph);
            rows.push(vec![
                if shared { "shared expert" } else { "standard" }.into(),
                if optimized { "Lancet" } else { "RAF" }.into(),
                ms(report.iteration_time),
                ms(report.exposed_comm()),
                format!("{:.0}%", report.overlap_ratio() * 100.0),
            ]);
            let mut r = Record::new("ext_shared_expert").with_report(&report);
            r.model = cfg.name.clone();
            r.cluster = "V100".into();
            r.gpus = gpus;
            r.system = format!(
                "{}{}",
                if optimized { "Lancet" } else { "RAF" },
                if shared { "+shared" } else { "" }
            );
            records.push(r);
        }
    }
    print_table(
        &format!("Extension — shared-expert overlap (GPT2-S, {gpus} V100 GPUs)"),
        &["Architecture", "System", "Iteration (ms)", "Exposed comm (ms)", "Comm hidden"],
        &rows,
    );
    println!(
        "\nReading: the shared branch alone already hides part of the all-to-all \
         (paper §8: PR-MoE/DeepSeek-MoE architectures facilitate overlapping); \
         Lancet's whole-graph overlap stacks on top."
    );
    records
}

/// Capacity-factor sensitivity: higher factors pad the uniform all-to-all
/// more, widening the advantage of Lancet's no-padding irregular variant.
pub fn capacity_factor(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let factors = if quick { vec![1.25, 2.0] } else { vec![1.0, 1.25, 1.5, 2.0] };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for cf in factors {
        let mut cfg = paper_config(Model::S, ClusterKind::V100, gpus, GateKind::Switch);
        cfg.capacity_factor = cf;
        let lancet = run_system(System::Lancet, &cfg, ClusterKind::V100).expect("run");
        let raf = run_system(System::Raf, &cfg, ClusterKind::V100).expect("run");
        let speedup = raf.report.iteration_time / lancet.report.iteration_time;
        rows.push(vec![
            format!("{cf:.2}"),
            ms(raf.report.iteration_time),
            ms(lancet.report.iteration_time),
            format!("{speedup:.3}x"),
        ]);
        let mut r = Record::new("ext_capacity_factor").with_report(&lancet.report);
        r.model = cfg.name.clone();
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = "Lancet".into();
        r.extra = Some(cf);
        records.push(r);
    }
    print_table(
        &format!("Extension — capacity-factor sensitivity (GPT2-S, {gpus} V100 GPUs)"),
        &["Capacity factor", "RAF (ms)", "Lancet (ms)", "Speedup"],
        &rows,
    );
    records
}

/// Optimization hyper-parameters ρ / γ / ι (paper §6): quality vs
/// optimization-time tradeoff.
pub fn hyperparams(quick: bool) -> Vec<Record> {
    let gpus = 16;
    let spec = ClusterSpec::v100(2);
    let cfg = paper_config(Model::S, ClusterKind::V100, gpus, GateKind::Switch);
    let grid: Vec<(usize, usize, usize)> = if quick {
        vec![(8, 5, 24), (2, 5, 24)]
    } else {
        vec![
            (8, 5, 24), // defaults
            (2, 5, 24),
            (4, 5, 24),
            (8, 2, 24),
            (8, 10, 24),
            (8, 5, 8),
            (8, 5, 48),
        ]
    };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (rho, gamma, iota) in grid {
        let options = LancetOptions {
            disable_dw_schedule: false,
            disable_partition: false,
            partition: PartitionOptions {
                max_partitions: rho,
                groups_per_gap: gamma,
                max_range_groups: iota,
                ..Default::default()
            },
            backward: BackwardOptions::default(),
            prefetch_lookahead: 1,
            placement: None,
            tile: None,
        };
        let lancet = Lancet::new(spec.clone(), gpus, options);
        let fwd = build_forward(&cfg).expect("build").graph;
        let outcome = lancet.optimize(fwd).expect("optimize");
        let report = simulate(&spec, &cfg, &outcome.graph);
        rows.push(vec![
            format!("ρ={rho} γ={gamma} ι={iota}"),
            format!("{:.2}", outcome.optimization_time.as_secs_f64()),
            format!("{}", outcome.partition.as_ref().map(|p| p.evaluations).unwrap_or(0)),
            ms(report.iteration_time),
        ]);
        let mut r = Record::new("ext_hyperparams").with_report(&report);
        r.model = cfg.name.clone();
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = format!("rho{rho}_gamma{gamma}_iota{iota}");
        r.opt_time_s = Some(outcome.optimization_time.as_secs_f64());
        records.push(r);
    }
    print_table(
        "Extension — optimizer hyper-parameters (GPT2-S, 16 V100 GPUs)",
        &["Hyper-parameters", "Opt time (s)", "P(i,n,k) evals", "Iteration (ms)"],
        &rows,
    );
    println!(
        "\nReading: larger ρ/ι explore more pipelines (higher optimization time) \
         with diminishing iteration-time returns — why the paper caps them."
    );
    records
}

/// Gradient all-reduce interference (paper §8): data-parallel gradient
/// synchronization shares the communication stream with all-to-alls —
/// unless it is arranged onto a separate channel, as the paper suggests
/// for tensor/sequence-parallel traffic.
pub fn allreduce_interference(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let spec = ClusterSpec::v100(gpus / 8);
    let cfg = paper_config(Model::S, ClusterKind::V100, gpus, GateKind::Switch);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (allreduce, dual) in [(false, false), (true, false), (true, true)] {
        let backward = BackwardOptions { sgd_lr: None, optimizer: Default::default(), allreduce_grads: allreduce };
        for optimized in [false, true] {
            let options = LancetOptions {
                disable_dw_schedule: false,
                disable_partition: false,
                partition: PartitionOptions::default(),
                backward: backward.clone(),
                prefetch_lookahead: 1,
                placement: None,
                tile: None,
            };
            let lancet = Lancet::new(spec.clone(), gpus, options);
            let fwd = build_forward(&cfg).expect("build").graph;
            let graph = if optimized {
                lancet.optimize(fwd).expect("optimize").graph
            } else {
                lancet.baseline(fwd).expect("baseline").graph
            };
            let sim = lancet_sim::Simulator::new(
                ComputeModel::new(spec.device.clone()),
                CommModel::new(spec.clone()),
                lancet_sim::SimConfig {
                    separate_collective_channel: dual,
                    capacity_factor: cfg.capacity_factor,
                    ..lancet_sim::SimConfig::new(gpus)
                },
            );
            let report = sim.simulate(&graph);
            let sync_label = match (allreduce, dual) {
                (false, _) => "expert-only",
                (true, false) => "all-reduce, shared channel",
                (true, true) => "all-reduce, separate channel",
            };
            rows.push(vec![
                sync_label.into(),
                if optimized { "Lancet" } else { "RAF" }.into(),
                ms(report.iteration_time),
                ms(report.comm_busy),
                ms(report.exposed_comm()),
            ]);
            let mut r = Record::new("ext_allreduce").with_report(&report);
            r.model = cfg.name.clone();
            r.cluster = "V100".into();
            r.gpus = gpus;
            r.system = format!(
                "{}{}{}",
                if optimized { "Lancet" } else { "RAF" },
                if allreduce { "+allreduce" } else { "" },
                if dual { "+dualchannel" } else { "" }
            );
            records.push(r);
        }
    }
    print_table(
        &format!("Extension — gradient all-reduce interference (GPT2-S, {gpus} V100 GPUs)"),
        &["Gradient sync", "System", "Iteration (ms)", "Comm busy (ms)", "Exposed comm (ms)"],
        &rows,
    );
    println!(
        "\nReading: data-parallel all-reduce contends with all-to-alls on a shared \
         stream (paper §8); moving it to a separate channel lets it run \
         concurrently with the MoE traffic, and Lancet's passes deliver their \
         gains in every arrangement."
    );
    records
}

/// FSDP/ZeRO-3 study (paper §8): weight sharding inserts forward
/// all-gathers; bounded-lookahead prefetch scheduling hides them behind
/// the previous block's compute, and Lancet's MoE overlap still applies.
pub fn fsdp(quick: bool) -> Vec<Record> {
    use lancet_core::prefetch_allgathers;
    use lancet_ir::build_backward;
    // The A100 cluster: its 4×100 Gb/s NICs leave scheduling headroom —
    // on the V100 cluster FSDP gather traffic saturates the single NIC
    // and no schedule can recover it (bandwidth-, not scheduling-bound).
    let gpus = if quick { 16 } else { 32 };
    let spec = ClusterSpec::a100(gpus / 8);
    let cfg = paper_config(Model::S, ClusterKind::A100, gpus, GateKind::Switch).with_fsdp(true);
    let mut rows = Vec::new();
    let mut records = Vec::new();

    // Replicated reference.
    let plain_cfg = paper_config(Model::S, ClusterKind::A100, gpus, GateKind::Switch);
    let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
    let replicated = lancet.baseline(build_forward(&plain_cfg).expect("build").graph).expect("baseline");
    let rep = simulate(&spec, &plain_cfg, &replicated.graph);
    rows.push(vec![
        "replicated".into(),
        "RAF".into(),
        ms(rep.iteration_time),
        ms(rep.exposed_comm()),
        format!("{:.1} GB", rep.peak_memory as f64 / 1e9),
    ]);

    // A transformer block gathers ~6 sharded weights, so a lookahead of
    // one *block* is L≈6 gathers.
    for (label, lookahead, optimize) in [
        ("FSDP, no prefetch", 0usize, false),
        ("FSDP, prefetch L=1", 1, false),
        ("FSDP, prefetch L=6 (1 block)", 6, false),
        ("FSDP, prefetch L=12 (2 blocks)", 12, false),
        ("FSDP, prefetch L=6 + Lancet", 6, true),
    ] {
        let graph = if optimize {
            let options = LancetOptions { prefetch_lookahead: lookahead, ..Default::default() };
            let lancet = Lancet::new(spec.clone(), gpus, options);
            lancet.optimize(build_forward(&cfg).expect("build").graph).expect("optimize").graph
        } else {
            let mut g = build_forward(&cfg).expect("build").graph;
            build_backward(&mut g, &BackwardOptions::default()).expect("autodiff");
            prefetch_allgathers(&mut g, lookahead).expect("prefetch");
            g
        };
        let report = simulate(&spec, &cfg, &graph);
        rows.push(vec![
            label.into(),
            if optimize { "Lancet".into() } else { "RAF".into() },
            ms(report.iteration_time),
            ms(report.exposed_comm()),
            format!("{:.1} GB", report.peak_memory as f64 / 1e9),
        ]);
        let mut r = Record::new("ext_fsdp").with_report(&report);
        r.model = cfg.name.clone();
        r.cluster = "A100".into();
        r.gpus = gpus;
        r.system = label.into();
        records.push(r);
    }
    print_table(
        &format!("Extension — FSDP weight sharding + prefetch scheduling (GPT2-S, {gpus} A100 GPUs)"),
        &["Configuration", "Passes", "Iteration (ms)", "Exposed comm (ms)", "Peak memory"],
        &rows,
    );
    println!(
        "\nReading: FSDP adds all-gather traffic on the all-to-all's stream \
         (paper §8); bounded-lookahead prefetching hides most of it, and \
         Lancet's passes stack on top. Sharding also cuts parameter memory."
    );
    records
}

/// Hierarchical all-to-all study (paper §8: better communication
/// implementations): node-aggregated two-stage exchange vs naive per-peer
/// exchange, across message sizes and end-to-end.
pub fn hierarchical_a2a(quick: bool) -> Vec<Record> {
    use lancet_cost::CommModel;
    let gpus = if quick { 32 } else { 64 };
    let spec = ClusterSpec::v100(gpus / 8);
    let comm = CommModel::new(spec.clone());
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for bytes_pow in [16u32, 18, 20, 22, 24, 26] {
        let bytes = 1u64 << bytes_pow;
        let naive = comm.all_to_all_time(bytes, gpus);
        let hier = comm.hierarchical_all_to_all_time(bytes, gpus);
        rows.push(vec![
            format!("{} KiB", bytes >> 10),
            format!("{:.3}", naive * 1e3),
            format!("{:.3}", hier * 1e3),
            format!("{:.2}x", naive / hier),
        ]);
        let mut r = Record::new("ext_hier_a2a");
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = "hierarchical".into();
        r.extra = Some(bytes as f64);
        r.iteration_ms = Some(hier * 1e3);
        records.push(r);
    }
    print_table(
        &format!("Extension — hierarchical vs naive all-to-all latency ({gpus} V100 GPUs)"),
        &["Buffer / device", "Naive (ms)", "Hierarchical (ms)", "Speedup"],
        &rows,
    );

    // End-to-end: a small-batch configuration where per-peer messages are
    // tiny and aggregation pays off.
    let cfg = paper_config(Model::L, ClusterKind::V100, gpus, GateKind::Switch).with_batch(2);
    let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
    let graph = lancet.baseline(build_forward(&cfg).expect("build").graph).expect("baseline").graph;
    let mut rows = Vec::new();
    for hier in [false, true] {
        let sim = lancet_sim::Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            lancet_sim::SimConfig { hierarchical_a2a: hier, ..lancet_sim::SimConfig::new(gpus) },
        );
        let report = sim.simulate(&graph);
        rows.push(vec![
            if hier { "hierarchical" } else { "naive" }.into(),
            ms(report.iteration_time),
            ms(report.comm_busy),
        ]);
        let mut r = Record::new("ext_hier_a2a").with_report(&report);
        r.model = cfg.name.clone();
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = if hier { "e2e-hierarchical" } else { "e2e-naive" }.into();
        records.push(r);
    }
    print_table(
        &format!("Extension — end-to-end with hierarchical all-to-all (GPT2-L, batch 2, {gpus} V100 GPUs)"),
        &["All-to-all implementation", "Iteration (ms)", "Comm busy (ms)"],
        &rows,
    );
    println!(
        "\nReading: aggregating inter-node messages by node pays off exactly when \
         per-peer transfers are small (many GPUs, small buffers) — the regime the \
         paper's §8 flags for future communication work."
    );
    records
}

/// Activation recomputation (gradient checkpointing): memory/time
/// tradeoff, and its interaction with Lancet's overlap (recomputed MoE
/// layers re-run their all-to-alls).
pub fn recompute(quick: bool) -> Vec<Record> {
    use lancet_core::recompute_segments;
    use lancet_ir::build_backward;
    use lancet_models::block_boundaries;
    let gpus = if quick { 16 } else { 32 };
    let spec = ClusterSpec::a100(gpus / 8);
    let cfg = paper_config(Model::L, ClusterKind::A100, gpus, GateKind::Switch);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, ckpt, optimize) in [
        ("no checkpointing", false, false),
        ("checkpoint every block", true, false),
        ("checkpoint + Lancet", true, true),
    ] {
        let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
        let fwd = build_forward(&cfg).expect("build").graph;
        let mut graph = if optimize {
            lancet.optimize(fwd).expect("optimize").graph
        } else {
            let mut g = fwd;
            build_backward(&mut g, &BackwardOptions::default()).expect("autodiff");
            g
        };
        if ckpt {
            let segments = block_boundaries(&graph);
            recompute_segments(&mut graph, &segments).expect("recompute");
        }
        let report = simulate(&spec, &cfg, &graph);
        rows.push(vec![
            label.into(),
            ms(report.iteration_time),
            ms(report.compute_busy),
            format!("{:.1} GB", report.peak_memory as f64 / 1e9),
        ]);
        let mut r = Record::new("ext_recompute").with_report(&report);
        r.model = cfg.name.clone();
        r.cluster = "A100".into();
        r.gpus = gpus;
        r.system = label.into();
        records.push(r);
    }
    print_table(
        &format!("Extension — activation recomputation (GPT2-L, {gpus} A100 GPUs)"),
        &["Configuration", "Iteration (ms)", "Compute busy (ms)", "Peak memory"],
        &rows,
    );
    println!(
        "\nReading: checkpointing trades ~forward-sized extra compute for a large \
         activation-memory cut; the re-run MoE all-to-alls give Lancet extra \
         communication to hide, so the overlap passes compose with it."
    );
    records
}

/// Mixtral-style architecture (paper §8 cites Mixtral): every-layer MoE,
/// top-2 routing, RMSNorm, SwiGLU experts — twice the all-to-all traffic
/// per layer of the GPT-2 variants.
pub fn mixtral(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let cfg = GptMoeConfig::mixtral_moe(gpus).with_batch(8);
    for system in System::headline() {
        let out = run_system(system, &cfg, ClusterKind::V100).expect("run");
        rows.push(vec![
            system.name().into(),
            ms(out.report.iteration_time),
            ms(out.report.compute_busy),
            ms(out.report.exposed_comm()),
            format!("{:.0}%", out.report.overlap_ratio() * 100.0),
        ]);
        let mut r = Record::new("ext_mixtral").with_report(&out.report);
        r.model = cfg.name.clone();
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = system.name().into();
        records.push(r);
    }
    print_table(
        &format!("Extension — Mixtral-style model ({} layers, every-layer top-2 MoE, {gpus} V100 GPUs)", cfg.layers),
        &["System", "Iteration (ms)", "Compute busy (ms)", "Exposed comm (ms)", "Comm hidden"],
        &rows,
    );
    println!(
        "\nReading: with an MoE layer in *every* block and top-2 routing, the \
         all-to-all volume doubles twice over — exactly the regime where \
         whole-graph overlap matters most (paper §8 names Mixtral as a target). \
         (The Mixtral DP favours Tutel-style capacity slicing: the paper's \
         static-shape cost approximation prices irregular and capacity \
         pipelines identically, and with an MoE in every block there is \
         little non-MoE compute to justify batch pipelines.)"
    );

    // MegaBlocks-style block-sparse expert kernels (paper §8), measured
    // on GPT2-S where Lancet's chosen plans contain irregular pipelines.
    let cfg = paper_config(Model::S, ClusterKind::V100, gpus, GateKind::Switch);
    let spec = ClusterSpec::v100(gpus / 8);
    let lancet = Lancet::new(spec.clone(), gpus, LancetOptions::default());
    let graph = lancet.optimize(build_forward(&cfg).expect("build").graph).expect("optimize").graph;
    let mut rows = Vec::new();
    for sparse in [false, true] {
        let sim = lancet_sim::Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            lancet_sim::SimConfig {
                block_sparse_experts: sparse,
                capacity_factor: cfg.capacity_factor,
                ..lancet_sim::SimConfig::new(gpus)
            },
        );
        let report = sim.simulate(&graph);
        rows.push(vec![
            if sparse { "Lancet + block-sparse experts" } else { "Lancet (padded experts)" }.into(),
            ms(report.iteration_time),
            ms(report.compute_busy),
            ms(report.exposed_comm()),
        ]);
        let mut r = Record::new("ext_megablocks").with_report(&report);
        r.model = cfg.name.clone();
        r.cluster = "V100".into();
        r.gpus = gpus;
        r.system = if sparse { "Lancet+megablocks" } else { "Lancet" }.into();
        records.push(r);
    }
    print_table(
        &format!("Extension — MegaBlocks-style expert kernels (GPT2-S, {gpus} V100 GPUs)"),
        &["Kernels", "Iteration (ms)", "Compute busy (ms)", "Exposed comm (ms)"],
        &rows,
    );
    records
}
