//! Paper Fig. 2 — motivation: execution-time breakdown of GPT-2 MoE
//! models under Tutel and DeepSpeed.
//!
//! * **Orig.** — unoptimized execution time;
//! * **Curr.** — upper bound of *current* overlapping methods: expert
//!   computation completely hidden by all-to-all;
//! * **Opt.** — ideal: all-to-all fully overlapped by computation.

use crate::{ms, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;
use lancet_sim::Stream;

/// Expert-computation time: total duration of expert-FFN instructions
/// (batched matmuls and buffer-layout ops) on the compute stream.
fn expert_time(report: &lancet_sim::SimReport) -> f64 {
    report
        .timeline
        .iter()
        .filter(|e| {
            e.stream == Stream::Compute
                && matches!(e.op, "batched_matmul" | "batched_matmul_dw" | "experts_layout" | "experts_layout_inv")
        })
        .map(|e| e.duration())
        .sum()
}

/// Runs the motivation study on the V100 cluster (the paper used p3dn).
pub fn run(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for model in Model::all() {
        for system in [System::DeepSpeed, System::Tutel] {
            let cfg = paper_config(model, ClusterKind::V100, gpus, GateKind::Switch);
            let out = run_system(system, &cfg, ClusterKind::V100).expect("run");
            let orig = out.report.iteration_time;
            let experts = expert_time(&out.report);
            // Curr.: expert compute fully hidden behind all-to-all.
            let curr = orig - experts.min(out.report.comm_busy);
            // Opt.: communication fully overlapped by computation.
            let opt = out.report.compute_busy.max(out.report.comm_busy);
            let a2a_expert_ratio = out.report.comm_busy / experts.max(1e-12);
            rows.push(vec![
                model.name().to_string(),
                system.name().to_string(),
                ms(orig),
                ms(curr),
                ms(opt),
                format!("{a2a_expert_ratio:.2}x"),
            ]);
            let mut r = Record::new("fig02").with_report(&out.report);
            r.model = model.name().into();
            r.cluster = "V100".into();
            r.gpus = gpus;
            r.system = system.name().into();
            r.gate = "switch".into();
            r.extra = Some(a2a_expert_ratio);
            records.push(r);
        }
    }
    print_table(
        &format!("Fig. 2 — execution-time breakdown on {gpus} V100 GPUs (ms)"),
        &["Model", "System", "Orig.", "Curr. (experts hidden)", "Opt. (a2a hidden)", "a2a/expert ratio"],
        &rows,
    );
    println!(
        "\nReading: `Curr.` barely improves on `Orig.` because the all-to-all \
         dominates expert compute (paper observes up to 3.36x); `Opt.` shows \
         the headroom Lancet targets."
    );
    records
}
