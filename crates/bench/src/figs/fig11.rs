//! Paper Figs. 11 & 12 — weak-scaling training iteration time across
//! systems, models, clusters, and GPU counts; Fig. 11 uses the Switch
//! gate, Fig. 12 batch-prioritized routing.

use crate::{gpu_sweep, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;

/// Runs the throughput comparison for one gate.
pub fn run(gate: GateKind, quick: bool) -> Vec<Record> {
    let figure = match gate {
        GateKind::Switch => "fig11",
        _ => "fig12",
    };
    let mut records = Vec::new();
    for cluster in [ClusterKind::A100, ClusterKind::V100] {
        let mut rows = Vec::new();
        for model in Model::all() {
            for gpus in gpu_sweep(quick) {
                let cfg = paper_config(model, cluster, gpus, gate);
                let mut row = vec![model.name().to_string(), gpus.to_string()];
                let mut lancet_ms = None;
                let mut best_baseline_ms: Option<f64> = None;
                for system in System::headline() {
                    let out = run_system(system, &cfg, cluster).expect("run");
                    let cell = if out.report.oom {
                        "OOM".to_string()
                    } else {
                        format!("{:.1}", out.report.iteration_time * 1e3)
                    };
                    row.push(match out.tutel_degree {
                        Some(d) => format!("{cell} (d={d})"),
                        None => cell,
                    });
                    if !out.report.oom {
                        let t = out.report.iteration_time * 1e3;
                        if system == System::Lancet {
                            lancet_ms = Some(t);
                        } else {
                            best_baseline_ms =
                                Some(best_baseline_ms.map_or(t, |b: f64| b.min(t)));
                        }
                    }
                    let mut r = Record::new(figure).with_report(&out.report);
                    r.model = model.name().into();
                    r.cluster = cluster.name().into();
                    r.gpus = gpus;
                    r.system = system.name().into();
                    r.gate = gate.name().into();
                    r.predicted_ms = out.predicted.map(|p| p * 1e3);
                    r.opt_time_s = out.opt_time.map(|d| d.as_secs_f64());
                    r.tutel_degree = out.tutel_degree;
                    records.push(r);
                }
                let speedup = match (lancet_ms, best_baseline_ms) {
                    (Some(l), Some(b)) => format!("{:.2}x", b / l),
                    _ => "-".to_string(),
                };
                row.push(speedup);
                rows.push(row);
            }
        }
        print_table(
            &format!(
                "{} — iteration time (ms) on {} cluster, {} gate (weak scaling)",
                if figure == "fig11" { "Fig. 11" } else { "Fig. 12" },
                cluster.name(),
                gate.name(),
            ),
            &["Model", "GPUs", "DeepSpeed", "Tutel", "RAF", "Lancet", "Speedup vs best baseline"],
            &rows,
        );
    }
    records
}
