//! Paper Fig. 13 — iteration-time decomposition (non-overlapped
//! computation / non-overlapped communication / overlapped) on 4 nodes.

use crate::{ms, paper_config, print_table, Model, Record};
use lancet_baselines::{run_system, System};
use lancet_cost::ClusterKind;
use lancet_ir::GateKind;

/// Runs the decomposition on 4 nodes (32 GPUs) of both clusters.
pub fn run(quick: bool) -> Vec<Record> {
    let gpus = if quick { 16 } else { 32 };
    let mut records = Vec::new();
    for cluster in [ClusterKind::V100, ClusterKind::A100] {
        let mut rows = Vec::new();
        let mut raf_exposed: Option<f64> = None;
        let mut tutel_exposed: Option<f64> = None;
        for model in Model::all() {
            for system in System::headline() {
                let cfg = paper_config(model, cluster, gpus, GateKind::Switch);
                let out = run_system(system, &cfg, cluster).expect("run");
                let rpt = &out.report;
                if model == Model::S {
                    match system {
                        System::Raf => raf_exposed = Some(rpt.exposed_comm()),
                        System::Tutel => tutel_exposed = Some(rpt.exposed_comm()),
                        _ => {}
                    }
                }
                rows.push(vec![
                    model.name().to_string(),
                    system.name().to_string(),
                    if rpt.oom { "OOM".into() } else { ms(rpt.iteration_time) },
                    ms(rpt.exposed_compute()),
                    ms(rpt.exposed_comm()),
                    ms(rpt.overlapped),
                    format!("{:.0}%", rpt.overlap_ratio() * 100.0),
                ]);
                let mut r = Record::new("fig13").with_report(rpt);
                r.model = model.name().into();
                r.cluster = cluster.name().into();
                r.gpus = gpus;
                r.system = system.name().into();
                r.gate = "switch".into();
                records.push(r);
            }
        }
        print_table(
            &format!("Fig. 13 — iteration decomposition on {} nodes of {} (ms)", gpus / 8, cluster.name()),
            &["Model", "System", "Iteration", "Non-ovl. compute", "Non-ovl. comm", "Overlapped", "Comm hidden"],
            &rows,
        );
        // Headline metric: non-overlapped communication reduction.
        let lancet = rows
            .iter()
            .find(|r| r[0] == Model::S.name() && r[1] == "Lancet")
            .and_then(|r| r[4].parse::<f64>().ok());
        if let (Some(l), Some(raf), Some(tutel)) = (lancet, raf_exposed, tutel_exposed) {
            println!(
                "\nGPT2-S on {}: Lancet reduces non-overlapped communication by {:.0}% vs RAF, {:.0}% vs Tutel \
                 (paper reports up to 83% / 77% on V100).",
                cluster.name(),
                (1.0 - l / (raf * 1e3)) * 100.0,
                (1.0 - l / (tutel * 1e3)) * 100.0,
            );
        }
    }
    records
}
