//! One module per paper figure.

pub mod extensions;
pub mod fig02;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;

/// Parses the common `--quick` flag.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
