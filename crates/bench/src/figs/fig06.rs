//! Paper Fig. 6 — effect of the partition range on forward time.
//!
//! Sweeps how much non-MoE computation around one MoE layer is included
//! in the partition-pipeline range, reproducing the U-shape: too little
//! range leaves all-to-all exposed, too much loses to partition overhead
//! (kernel launches, under-utilized kernels). Two regimes as in the
//! paper: (a) fewer layers / large batch, (b) more layers / small batch.

use crate::{ms, print_table, Record};
use lancet_core::{apply_partitions, infer_axes, Lancet, LancetOptions, PartitionSpec};
use lancet_cost::ClusterSpec;
use lancet_ir::{GateKind, Graph, Op};
use lancet_models::{build_forward, GptMoeConfig};

/// Positions of the middle MoE pipeline: (gate position, gather position).
fn middle_pipeline(graph: &Graph) -> (usize, usize) {
    let gates: Vec<usize> = graph
        .instrs()
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i.op, Op::Gate { .. }))
        .map(|(p, _)| p)
        .collect();
    let gate = gates[gates.len() / 2];
    let gather = graph.instrs()[gate..]
        .iter()
        .position(|i| matches!(i.op, Op::MoeGather { .. }))
        .expect("gather after gate")
        + gate;
    (gate, gather)
}

fn sweep(graph: &Graph, lancet: &Lancet, max_ext: usize, records: &mut Vec<Record>, label: &str) -> Vec<Vec<String>> {
    let (gate, gather) = middle_pipeline(graph);
    let estimator = lancet.estimator();
    let orig = estimator.estimate(graph).expect("estimate").total;
    let mut rows = vec![vec![label.to_string(), "orig".into(), "-".into(), ms(orig), "1.000".into()]];
    // "0" point: Tutel-style, only all-to-all + experts (capacity axis).
    let mut points: Vec<(String, usize, usize)> = vec![("0".into(), gate + 2, gather - 1)];
    for ext in (2..=max_ext).step_by(2) {
        points.push((format!("±{ext}"), gate.saturating_sub(ext), (gather + 1 + ext).min(graph.instrs().len())));
    }
    for (name, start, end) in points {
        let Some(axes) = infer_axes(graph, start..end) else {
            rows.push(vec![label.to_string(), name, "-".into(), "invalid".into(), "-".into()]);
            continue;
        };
        let mut best: Option<(usize, f64)> = None;
        for k in [2usize, 4, 8] {
            let spec = PartitionSpec { range: start..end, parts: k, axes: axes.clone() };
            let Ok(part) = apply_partitions(graph, &[spec]) else { continue };
            let t = estimator.estimate(&part).expect("estimate").total;
            if best.map(|(_, b)| t < b).unwrap_or(true) {
                best = Some((k, t));
            }
        }
        let Some((k, t)) = best else { continue };
        // X axis: execution time of the non-MoE ops included in the range.
        let ext_time: f64 = (start..gate)
            .chain(gather + 1..end)
            .map(|p| estimator.instr_time(graph, p).expect("time"))
            .sum();
        rows.push(vec![
            label.to_string(),
            name.clone(),
            format!("{:.2}", ext_time * 1e3),
            ms(t),
            format!("{:.3}", orig / t),
        ]);
        let mut r = Record::new("fig06");
        r.model = label.into();
        r.system = format!("k={k}");
        r.extra = Some(ext_time * 1e3);
        r.iteration_ms = Some(t * 1e3);
        records.push(r);
    }
    rows
}

/// Runs the partition-range sweep on 16 A100 GPUs / 32 experts (paper
/// setup for Fig. 6).
pub fn run(quick: bool) -> Vec<Record> {
    let gpus = 16;
    let spec = ClusterSpec::a100(2);
    let lancet = Lancet::new(spec, gpus, LancetOptions::default());
    let max_ext = if quick { 4 } else { 12 };
    let mut records = Vec::new();
    let mut rows = Vec::new();

    // (a) fewer layers, large batch.
    let cfg_a = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch).with_layers(4).with_batch(32);
    let fwd_a = build_forward(&cfg_a).expect("build").graph;
    rows.extend(sweep(&fwd_a, &lancet, max_ext, &mut records, "(a) 4 layers, batch 32"));

    // (b) more layers, small batch.
    let cfg_b = GptMoeConfig::gpt2_s_moe(gpus, GateKind::Switch).with_layers(12).with_batch(8);
    let fwd_b = build_forward(&cfg_b).expect("build").graph;
    rows.extend(sweep(&fwd_b, &lancet, max_ext, &mut records, "(b) 12 layers, batch 8"));

    print_table(
        "Fig. 6 — forward time vs partition range (middle MoE layer, 16 A100 GPUs, 32 experts)",
        &["Model", "Range", "Extra ops included (ms)", "Forward time (ms)", "Speedup vs orig"],
        &rows,
    );
    println!(
        "\nReading: speedup should rise from `0` (all-to-all+experts only, Tutel's \
         range) as non-MoE ops join the pipeline, then fall once partition \
         overhead dominates — the U-shape of paper Fig. 6."
    );
    records
}
