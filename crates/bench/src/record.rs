//! Machine-readable experiment records.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One measured data point, serialized for EXPERIMENTS.md bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Which paper figure this point belongs to ("fig11", …).
    pub figure: String,
    /// Model name ("GPT2-S-MoE").
    pub model: String,
    /// Cluster ("A100"/"V100").
    pub cluster: String,
    /// GPU count.
    pub gpus: usize,
    /// System ("Lancet", "Tutel", …).
    pub system: String,
    /// Gate ("switch"/"bpr").
    pub gate: String,
    /// Measured iteration time, ms. `None` when the run OOMs.
    pub iteration_ms: Option<f64>,
    /// Non-overlapped communication, ms.
    pub exposed_comm_ms: Option<f64>,
    /// Non-overlapped computation, ms.
    pub exposed_compute_ms: Option<f64>,
    /// Overlapped time, ms.
    pub overlapped_ms: Option<f64>,
    /// Compiler-predicted iteration time, ms (Lancet only).
    pub predicted_ms: Option<f64>,
    /// Optimization wall-clock, seconds (Lancet only).
    pub opt_time_s: Option<f64>,
    /// Tutel's selected overlap degree.
    pub tutel_degree: Option<usize>,
    /// Free-form extra dimension (e.g. partition-range sweep position).
    pub extra: Option<f64>,
}

impl Record {
    /// A mostly-empty record for `figure`; fill in what the experiment
    /// measures.
    pub fn new(figure: &str) -> Self {
        Record {
            figure: figure.to_string(),
            model: String::new(),
            cluster: String::new(),
            gpus: 0,
            system: String::new(),
            gate: String::new(),
            iteration_ms: None,
            exposed_comm_ms: None,
            exposed_compute_ms: None,
            overlapped_ms: None,
            predicted_ms: None,
            opt_time_s: None,
            tutel_degree: None,
            extra: None,
        }
    }

    /// Populates the measurement fields from a simulator report.
    pub fn with_report(mut self, report: &lancet_sim::SimReport) -> Self {
        if report.oom {
            self.iteration_ms = None;
        } else {
            self.iteration_ms = Some(report.iteration_time * 1e3);
            self.exposed_comm_ms = Some(report.exposed_comm() * 1e3);
            self.exposed_compute_ms = Some(report.exposed_compute() * 1e3);
            self.overlapped_ms = Some(report.overlapped * 1e3);
        }
        self
    }
}

/// Writes records as pretty JSON, creating parent directories.
///
/// # Errors
///
/// Returns I/O or serialization errors.
pub fn save_json(path: impl AsRef<Path>, records: &[Record]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(records)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = Record::new("fig11");
        r.model = "GPT2-S-MoE".into();
        r.iteration_ms = Some(123.4);
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("lancet-bench-test");
        let path = dir.join("records.json");
        save_json(&path, &[Record::new("fig02")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("fig02"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn oom_report_clears_iteration() {
        let report = lancet_sim::SimReport {
            iteration_time: 1.0,
            compute_busy: 0.5,
            comm_busy: 0.5,
            overlapped: 0.1,
            peak_memory: u64::MAX,
            oom: true,
            timeline: Vec::new(),
        };
        let r = Record::new("fig11").with_report(&report);
        assert_eq!(r.iteration_ms, None);
    }
}
