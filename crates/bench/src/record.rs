//! Machine-readable experiment records.
//!
//! Records serialize to JSON with a small hand-rolled writer/parser (the
//! build sandbox cannot fetch serde); the flat, scalar-only shape of
//! [`Record`] keeps that trivial and the on-disk format identical to the
//! previous serde output.

use std::path::Path;

/// One measured data point, serialized for EXPERIMENTS.md bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Which paper figure this point belongs to ("fig11", …).
    pub figure: String,
    /// Model name ("GPT2-S-MoE").
    pub model: String,
    /// Cluster ("A100"/"V100").
    pub cluster: String,
    /// GPU count.
    pub gpus: usize,
    /// System ("Lancet", "Tutel", …).
    pub system: String,
    /// Gate ("switch"/"bpr").
    pub gate: String,
    /// Measured iteration time, ms. `None` when the run OOMs.
    pub iteration_ms: Option<f64>,
    /// Non-overlapped communication, ms.
    pub exposed_comm_ms: Option<f64>,
    /// Non-overlapped computation, ms.
    pub exposed_compute_ms: Option<f64>,
    /// Overlapped time, ms.
    pub overlapped_ms: Option<f64>,
    /// Compiler-predicted iteration time, ms (Lancet only).
    pub predicted_ms: Option<f64>,
    /// Optimization wall-clock, seconds (Lancet only).
    pub opt_time_s: Option<f64>,
    /// Tutel's selected overlap degree.
    pub tutel_degree: Option<usize>,
    /// Free-form extra dimension (e.g. partition-range sweep position).
    pub extra: Option<f64>,
}

impl Record {
    /// A mostly-empty record for `figure`; fill in what the experiment
    /// measures.
    pub fn new(figure: &str) -> Self {
        Record {
            figure: figure.to_string(),
            model: String::new(),
            cluster: String::new(),
            gpus: 0,
            system: String::new(),
            gate: String::new(),
            iteration_ms: None,
            exposed_comm_ms: None,
            exposed_compute_ms: None,
            overlapped_ms: None,
            predicted_ms: None,
            opt_time_s: None,
            tutel_degree: None,
            extra: None,
        }
    }

    /// Populates the measurement fields from a simulator report.
    pub fn with_report(mut self, report: &lancet_sim::SimReport) -> Self {
        if report.oom {
            self.iteration_ms = None;
        } else {
            self.iteration_ms = Some(report.iteration_time * 1e3);
            self.exposed_comm_ms = Some(report.exposed_comm() * 1e3);
            self.exposed_compute_ms = Some(report.exposed_compute() * 1e3);
            self.overlapped_ms = Some(report.overlapped * 1e3);
        }
        self
    }

    /// Serializes the record as a pretty-printed JSON object, indented by
    /// `indent` spaces.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut fields: Vec<String> = Vec::new();
        let push_str = |name: &str, v: &str, fields: &mut Vec<String>| {
            fields.push(format!("{inner}\"{name}\": \"{}\"", escape_json(v)));
        };
        push_str("figure", &self.figure, &mut fields);
        push_str("model", &self.model, &mut fields);
        push_str("cluster", &self.cluster, &mut fields);
        fields.push(format!("{inner}\"gpus\": {}", self.gpus));
        push_str("system", &self.system, &mut fields);
        push_str("gate", &self.gate, &mut fields);
        let opt_f64 = |v: Option<f64>| v.map_or("null".to_string(), fmt_f64);
        fields.push(format!("{inner}\"iteration_ms\": {}", opt_f64(self.iteration_ms)));
        fields.push(format!("{inner}\"exposed_comm_ms\": {}", opt_f64(self.exposed_comm_ms)));
        fields.push(format!("{inner}\"exposed_compute_ms\": {}", opt_f64(self.exposed_compute_ms)));
        fields.push(format!("{inner}\"overlapped_ms\": {}", opt_f64(self.overlapped_ms)));
        fields.push(format!("{inner}\"predicted_ms\": {}", opt_f64(self.predicted_ms)));
        fields.push(format!("{inner}\"opt_time_s\": {}", opt_f64(self.opt_time_s)));
        fields.push(format!(
            "{inner}\"tutel_degree\": {}",
            self.tutel_degree.map_or("null".to_string(), |d| d.to_string())
        ));
        fields.push(format!("{inner}\"extra\": {}", opt_f64(self.extra)));
        format!("{pad}{{\n{}\n{pad}}}", fields.join(",\n"))
    }

    /// Parses a record from the JSON produced by [`Record::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &str) -> Result<Record, String> {
        let obj = parse_flat_object(json)?;
        let get_str = |name: &str| -> Result<String, String> {
            match obj.get(name) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                other => Err(format!("field {name}: expected string, got {other:?}")),
            }
        };
        let get_opt_f64 = |name: &str| -> Result<Option<f64>, String> {
            match obj.get(name) {
                Some(JsonValue::Null) | None => Ok(None),
                Some(JsonValue::Num(n)) => Ok(Some(*n)),
                other => Err(format!("field {name}: expected number or null, got {other:?}")),
            }
        };
        Ok(Record {
            figure: get_str("figure")?,
            model: get_str("model")?,
            cluster: get_str("cluster")?,
            gpus: match obj.get("gpus") {
                Some(JsonValue::Num(n)) => *n as usize,
                other => return Err(format!("field gpus: expected number, got {other:?}")),
            },
            system: get_str("system")?,
            gate: get_str("gate")?,
            iteration_ms: get_opt_f64("iteration_ms")?,
            exposed_comm_ms: get_opt_f64("exposed_comm_ms")?,
            exposed_compute_ms: get_opt_f64("exposed_compute_ms")?,
            overlapped_ms: get_opt_f64("overlapped_ms")?,
            predicted_ms: get_opt_f64("predicted_ms")?,
            opt_time_s: get_opt_f64("opt_time_s")?,
            tutel_degree: get_opt_f64("tutel_degree")?.map(|n| n as usize),
            extra: get_opt_f64("extra")?,
        })
    }
}

/// Formats an `f64` so it parses back to the same value (shortest via
/// Rust's float formatter, which is round-trip exact).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure a decimal point or exponent so the value reads as float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Null,
}

/// Parses a flat JSON object of string / number / null fields (the only
/// shape [`Record::to_json`] emits).
fn parse_flat_object(json: &str) -> Result<std::collections::HashMap<String, JsonValue>, String> {
    let mut map = std::collections::HashMap::new();
    let body_start = json.find('{').ok_or("no object start")?;
    let body_end = json.rfind('}').ok_or("no object end")?;
    if body_end < body_start {
        return Err("mismatched braces".into());
    }
    let body = &json[body_start + 1..body_end];
    for field in split_top_level(body) {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let colon = field.find(':').ok_or_else(|| format!("no colon in {field:?}"))?;
        let name = field[..colon].trim().trim_matches('"').to_string();
        let raw = field[colon + 1..].trim();
        let value = if raw == "null" {
            JsonValue::Null
        } else if let Some(stripped) = raw.strip_prefix('"') {
            let inner = stripped.strip_suffix('"').ok_or_else(|| format!("unterminated string {raw:?}"))?;
            JsonValue::Str(unescape_json(inner))
        } else {
            JsonValue::Num(raw.parse::<f64>().map_err(|e| format!("bad number {raw:?}: {e}"))?)
        };
        map.insert(name, value);
    }
    Ok(map)
}

/// Splits an object body at commas that are not inside strings.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Writes records as pretty JSON, creating parent directories.
///
/// # Errors
///
/// Returns I/O errors.
pub fn save_json(path: impl AsRef<Path>, records: &[Record]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let body: Vec<String> = records.iter().map(|r| r.to_json(2)).collect();
    let json = format!("[\n{}\n]", body.join(",\n"));
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = Record::new("fig11");
        r.model = "GPT2-S-MoE".into();
        r.iteration_ms = Some(123.4);
        r.gpus = 32;
        r.tutel_degree = Some(2);
        let json = r.to_json(0);
        let back = Record::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn awkward_floats_roundtrip() {
        let mut r = Record::new("fig15");
        r.opt_time_s = Some(0.123456789012345);
        r.extra = Some(1e-9);
        r.predicted_ms = Some(3.0);
        let back = Record::from_json(&r.to_json(0)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let mut r = Record::new("fig\"quoted\"");
        r.model = "line\nbreak\\slash".into();
        let back = Record::from_json(&r.to_json(0)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("lancet-bench-test");
        let path = dir.join("records.json");
        save_json(&path, &[Record::new("fig02")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("fig02"));
        assert!(content.trim_start().starts_with('['));
        assert!(content.trim_end().ends_with(']'));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn oom_report_clears_iteration() {
        let report = lancet_sim::SimReport {
            iteration_time: 1.0,
            compute_busy: 0.5,
            comm_busy: 0.5,
            overlapped: 0.1,
            peak_memory: u64::MAX,
            oom: true,
            faults: Default::default(),
            timeline: Vec::new(),
        };
        let r = Record::new("fig11").with_report(&report);
        assert_eq!(r.iteration_ms, None);
    }
}
