//! Regenerates paper Fig. 2 (motivation breakdown).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig02::run(quick);
    lancet_bench::save_json("results/fig02.json", &records).expect("write results");
}
