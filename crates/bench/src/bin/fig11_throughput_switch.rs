//! Regenerates paper Fig. 11 (weak-scaling throughput, Switch gate).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig11::run(lancet_ir::GateKind::Switch, quick);
    lancet_bench::save_json("results/fig11.json", &records).expect("write results");
}
