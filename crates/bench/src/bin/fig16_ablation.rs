//! Regenerates paper Fig. 16 (ablation study).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig16::run(quick);
    lancet_bench::save_json("results/fig16.json", &records).expect("write results");
}
