//! Regenerates paper Fig. 12 (weak-scaling throughput, batch-prioritized gate).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig11::run(lancet_ir::GateKind::BatchPrioritized, quick);
    lancet_bench::save_json("results/fig12.json", &records).expect("write results");
}
