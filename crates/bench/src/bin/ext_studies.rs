//! Extension studies beyond the paper's figures (shared experts, capacity
//! factor, hyper-parameters, all-reduce interference — paper §8 themes).
use lancet_bench::figs;

fn main() {
    let quick = figs::quick_flag();
    let mut all = Vec::new();
    all.extend(figs::extensions::shared_expert(quick));
    all.extend(figs::extensions::capacity_factor(quick));
    all.extend(figs::extensions::hyperparams(quick));
    all.extend(figs::extensions::allreduce_interference(quick));
    all.extend(figs::extensions::fsdp(quick));
    all.extend(figs::extensions::hierarchical_a2a(quick));
    all.extend(figs::extensions::recompute(quick));
    all.extend(figs::extensions::mixtral(quick));
    lancet_bench::save_json("results/extensions.json", &all).expect("write results");
}
