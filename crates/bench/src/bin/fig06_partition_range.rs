//! Regenerates paper Fig. 6 (partition-range sweep).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig06::run(quick);
    lancet_bench::save_json("results/fig06.json", &records).expect("write results");
}
