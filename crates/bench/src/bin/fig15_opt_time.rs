//! Regenerates paper Fig. 15 (optimization time), plus the
//! partition-search-engine before/after supplement (sequential vs
//! parallel vs memoized — the EXPERIMENTS.md optimization-time table).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let mut records = lancet_bench::figs::fig15::run(quick);
    records.extend(lancet_bench::figs::fig15::run_engine(quick));
    lancet_bench::save_json("results/fig15.json", &records).expect("write results");
}
