//! Regenerates paper Fig. 15 (optimization time).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig15::run(quick);
    lancet_bench::save_json("results/fig15.json", &records).expect("write results");
}
