//! Regenerates every figure of the paper's evaluation in one run and
//! writes machine-readable results under `results/`.
use lancet_bench::figs;

fn main() {
    let quick = figs::quick_flag();
    let started = std::time::Instant::now();
    let mut all = Vec::new();
    println!("# Lancet reproduction — full evaluation ({} mode)", if quick { "quick" } else { "paper" });
    all.extend(figs::fig02::run(quick));
    all.extend(figs::fig05::run(quick));
    all.extend(figs::fig06::run(quick));
    all.extend(figs::fig11::run(lancet_ir::GateKind::Switch, quick));
    all.extend(figs::fig11::run(lancet_ir::GateKind::BatchPrioritized, quick));
    all.extend(figs::fig13::run(quick));
    all.extend(figs::fig14::run(quick));
    all.extend(figs::fig15::run(quick));
    all.extend(figs::fig15::run_engine(quick));
    all.extend(figs::fig16::run(quick));
    lancet_bench::save_json("results/all_figures.json", &all).expect("write results");
    println!("\n{} records written to results/all_figures.json in {:.1?}", all.len(), started.elapsed());
}
