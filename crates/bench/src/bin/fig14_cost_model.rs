//! Regenerates paper Fig. 14 (cost-model prediction accuracy).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig14::run(quick);
    lancet_bench::save_json("results/fig14.json", &records).expect("write results");
}
