//! Regenerates paper Fig. 13 (iteration-time decomposition).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig13::run(quick);
    lancet_bench::save_json("results/fig13.json", &records).expect("write results");
}
