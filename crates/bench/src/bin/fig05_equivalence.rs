//! Regenerates paper Fig. 5 (token-dropping equivalence demonstration).
fn main() {
    let quick = lancet_bench::figs::quick_flag();
    let records = lancet_bench::figs::fig05::run(quick);
    lancet_bench::save_json("results/fig05.json", &records).expect("write results");
}
