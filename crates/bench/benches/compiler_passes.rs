//! Criterion benchmarks of the compiler machinery: dependency analysis,
//! axis inference, the dW pass, and the partition DP.

use criterion::{criterion_group, criterion_main, Criterion};
use lancet_core::{
    infer_axes, partition_pass, schedule_weight_gradients, Lancet, LancetOptions,
    PartitionOptions,
};
use lancet_cost::ClusterSpec;
use lancet_ir::{build_backward, BackwardOptions, DepGraph, GateKind, Graph, Op};
use lancet_models::{build_forward, build_training, GptMoeConfig};

fn forward_graph() -> Graph {
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_layers(6).with_batch(8);
    build_forward(&cfg).unwrap().graph
}

fn training_graph() -> Graph {
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_layers(6).with_batch(8);
    build_training(&cfg, &BackwardOptions::default()).unwrap().graph
}

fn lancet() -> Lancet {
    Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default())
}

fn bench_autodiff(c: &mut Criterion) {
    let fwd = forward_graph();
    c.bench_function("autodiff_gpt2s_6l", |b| {
        b.iter(|| {
            let mut g = fwd.clone();
            build_backward(&mut g, &BackwardOptions::default()).unwrap()
        })
    });
}

fn bench_depgraph(c: &mut Criterion) {
    let g = training_graph();
    c.bench_function("depgraph_closure", |b| b.iter(|| DepGraph::build(&g)));
}

fn bench_axis_inference(c: &mut Criterion) {
    let g = forward_graph();
    let gate = g.instrs().iter().position(|i| matches!(i.op, Op::Gate { .. })).unwrap();
    let gather = g.instrs().iter().position(|i| matches!(i.op, Op::MoeGather { .. })).unwrap() + 1;
    c.bench_function("infer_axes_moe_pipeline", |b| {
        b.iter(|| infer_axes(&g, gate..gather).unwrap())
    });
}

fn bench_dw_pass(c: &mut Criterion) {
    let g = training_graph();
    let l = lancet();
    c.bench_function("dw_schedule_pass", |b| {
        b.iter(|| {
            let mut graph = g.clone();
            schedule_weight_gradients(&mut graph, l.estimator()).unwrap()
        })
    });
}

fn bench_partition_dp(c: &mut Criterion) {
    let g = forward_graph();
    let l = lancet();
    let opts = PartitionOptions::default();
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    group.bench_function("partition_dp_gpt2s_6l", |b| {
        b.iter(|| partition_pass(&g, l.estimator(), &opts).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_autodiff,
    bench_depgraph,
    bench_axis_inference,
    bench_dw_pass,
    bench_partition_dp
);
criterion_main!(benches);
