//! Criterion benchmarks of the discrete-event simulator and the
//! compiler-side time estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{BackwardOptions, GateKind};
use lancet_models::{build_training, GptMoeConfig};
use lancet_sim::{SimConfig, Simulator};

fn bench_simulate(c: &mut Criterion) {
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(16);
    let graph = build_training(&cfg, &BackwardOptions::default()).unwrap().graph;
    let spec = ClusterSpec::v100(2);
    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig::new(16),
    );
    c.bench_function("simulate_gpt2s_training_iter", |b| b.iter(|| sim.simulate(&graph)));
}

fn bench_estimator(c: &mut Criterion) {
    let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(16);
    let graph = build_training(&cfg, &BackwardOptions::default()).unwrap().graph;
    let lancet = Lancet::new(ClusterSpec::v100(2), 16, LancetOptions::default());
    c.bench_function("estimate_gpt2s_training_iter", |b| {
        b.iter(|| lancet.estimator().estimate(&graph).unwrap())
    });
}

criterion_group!(benches, bench_simulate, bench_estimator);
criterion_main!(benches);
