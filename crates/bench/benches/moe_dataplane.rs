//! Criterion benchmarks of the MoE data plane: routing, dispatch, and the
//! two-phase irregular all-to-all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lancet_ir::GateKind;
use lancet_moe::{
    all_to_all_irregular, all_to_all_uniform, dispatch_irregular, expert_capacity, route,
    CapacityState,
};
use lancet_tensor::TensorRng;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    for tokens in [512usize, 2048, 8192] {
        let experts = 32;
        let cap = expert_capacity(tokens, experts, 1.25);
        let logits = TensorRng::seed(1).uniform(vec![tokens, experts], -2.0, 2.0);
        group.bench_with_input(BenchmarkId::new("switch", tokens), &tokens, |b, _| {
            b.iter(|| route(GateKind::Switch, &logits, cap, None).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bpr", tokens), &tokens, |b, _| {
            b.iter(|| route(GateKind::BatchPrioritized, &logits, cap, None).unwrap());
        });
    }
    group.finish();
}

fn bench_capacity_passing(c: &mut Criterion) {
    let (tokens, experts, parts) = (4096usize, 32usize, 4usize);
    let cap = expert_capacity(tokens, experts, 1.25);
    let logits = TensorRng::seed(2).uniform(vec![tokens, experts], -2.0, 2.0);
    c.bench_function("route_chunked_4x1024", |b| {
        b.iter(|| {
            let mut state = CapacityState::new(experts);
            for chunk in logits.split_axis(0, parts).unwrap() {
                route(GateKind::Switch, &chunk, cap, Some(&mut state)).unwrap();
            }
        })
    });
}

fn bench_irregular_alltoall(c: &mut Criterion) {
    let (devs, el, capacity, width) = (8usize, 2usize, 64usize, 64usize);
    let experts = devs * el;
    let mut rng = TensorRng::seed(3);
    let cap = expert_capacity(1024, experts, 1.25).min(capacity);
    let chunks: Vec<_> = (0..devs)
        .map(|_| {
            let tokens = rng.uniform(vec![1024, width], -1.0, 1.0);
            let logits = rng.uniform(vec![1024, experts], -2.0, 2.0);
            let routing = route(GateKind::Switch, &logits, cap, None).unwrap();
            dispatch_irregular(&tokens, &routing, experts, capacity).unwrap()
        })
        .collect();
    c.bench_function("irregular_alltoall_8dev", |b| {
        b.iter(|| all_to_all_irregular(&chunks).unwrap())
    });
    let bufs: Vec<_> = chunks.iter().map(|ch| ch.buf.clone()).collect();
    c.bench_function("uniform_alltoall_8dev", |b| {
        b.iter(|| all_to_all_uniform(&bufs).unwrap())
    });
}

criterion_group!(benches, bench_routing, bench_capacity_passing, bench_irregular_alltoall);
criterion_main!(benches);
