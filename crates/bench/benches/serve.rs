//! Steady-state serving vs cold optimize-per-request.
//!
//! Benchmarks the `lancet-serve` runtime on a serving-scaled GPT2-S-MoE
//! (the paper model's hidden/FFN/head geometry with serving-sized depth,
//! sequence, and vocabulary so the CPU executor answers in
//! milliseconds): the *cold* path rebuilds the plan for every request —
//! a fresh optimizer, partition search, weight binding, then one
//! batch-of-one execution — while the *steady-state* path serves bursts
//! through a warm plan cache with micro-batching. The measured per-
//! request speedup is asserted against a floor and recorded to
//! `results/BENCH_serve.json` alongside an open-loop replay's serving
//! stats (latency percentiles, throughput, cache effectiveness).
//!
//! Run modes:
//!
//! * `cargo bench -p lancet-bench --bench serve` — full run, writes the
//!   JSON artifact.
//! * `cargo bench -p lancet-bench --bench serve -- --quick` — smoke run:
//!   fewer samples, smaller model, no artifact; the transparent-batching
//!   bit-identity check and the speedup floor still apply.

use std::time::Duration;

use criterion::Criterion;
use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_core::{Lancet, LancetOptions};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{
    canonical_weights, open_loop_trace, replay_open_loop, Plan, ServeConfig, ServeRuntime,
};
use lancet_tensor::Tensor;

/// Steady-state serving must beat cold optimize-per-request by at least
/// this factor per request (the plan cache's reason to exist).
const MIN_SPEEDUP: f64 = 5.0;
/// Requests per steady-state burst (one criterion iteration).
const BURST: usize = 12;

/// Serving-scaled GPT2-S-MoE (matches the `lancet serve-bench` CLI).
fn serving_scaled_gpt2s(quick: bool) -> GptMoeConfig {
    let cfg = GptMoeConfig::gpt2_s_moe(1, GateKind::Switch);
    if quick {
        cfg.with_layers(4).with_seq(8).with_vocab(128)
    } else {
        cfg.with_layers(4).with_seq(8).with_vocab(256)
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default();
    c.sample_size(if quick { 2 } else { 4 });

    let cluster = ClusterKind::A100;
    let cfg = serving_scaled_gpt2s(quick);
    let config = ServeConfig {
        cluster,
        max_batch: 4,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let trace_len = if quick { 16 } else { 48 };
    let rate_hz = 40.0;
    let trace = open_loop_trace(trace_len.max(BURST), rate_hz, cfg.seq, cfg.vocab, 0xbead);

    // The transparent-batching contract, checked on the exact benched
    // model: micro-batched responses must equal solo serving bit for bit.
    {
        let solo = ServeRuntime::start(ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            ..config.clone()
        });
        solo.register_model(cfg.clone()).unwrap();
        let want: Vec<_> = (0..4)
            .map(|i| solo.submit_blocking(&cfg.name, trace[i].ids.clone()).unwrap())
            .collect();
        solo.shutdown();

        let batched = ServeRuntime::start(ServeConfig {
            batch_window: Duration::from_millis(250),
            ..config.clone()
        });
        batched.register_model(cfg.clone()).unwrap();
        let tickets: Vec<_> =
            (0..4).map(|i| batched.submit(&cfg.name, trace[i].ids.clone()).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let got = t.wait().unwrap();
            assert_eq!(got.data(), want[i].data(), "request {i} not bit-identical to solo");
        }
        batched.shutdown();
        println!("bit-identity: micro-batched == solo serving (4 requests)\n");
    }

    // Cold baseline: fresh optimizer (empty partition memo) + plan build
    // + batch-of-one execution, per request.
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, config.seed).unwrap();
    let solo_ids = Tensor::from_vec(vec![1, cfg.seq], trace[0].ids.clone()).unwrap();
    c.bench_function("serve/cold_optimize_per_request", |b| {
        b.iter(|| {
            let lancet =
                Lancet::new(ClusterSpec::of(cluster, 1), cfg.gpus, LancetOptions::default());
            let plan = Plan::build(&lancet, &normalized, 1, &canonical).unwrap();
            plan.execute(&solo_ids).unwrap()
        })
    });

    // Steady state: closed bursts through a warm plan cache. Warm every
    // power-of-two bucket first so the measurement sees only hits.
    let runtime = ServeRuntime::start(config.clone());
    runtime.register_model(cfg.clone()).unwrap();
    let mut bucket = 1;
    while bucket <= config.max_batch.next_power_of_two() {
        let tickets: Vec<_> =
            (0..bucket).map(|i| runtime.submit(&cfg.name, trace[i].ids.clone()).unwrap()).collect();
        tickets.into_iter().for_each(|t| {
            t.wait().unwrap();
        });
        bucket *= 2;
    }
    c.bench_function("serve/steady_state_burst", |b| {
        b.iter(|| {
            let tickets: Vec<_> = (0..BURST)
                .map(|i| runtime.submit(&cfg.name, trace[i].ids.clone()).unwrap())
                .collect();
            tickets.into_iter().for_each(|t| {
                t.wait().unwrap();
            });
        })
    });

    let cold_ns = c.summary("serve/cold_optimize_per_request").expect("ran").min_ns;
    let steady_ns = c.summary("serve/steady_state_burst").expect("ran").min_ns / BURST as f64;
    let speedup = cold_ns / steady_ns.max(1.0);
    println!("\nper-request: cold {:.1} ms, steady {:.1} ms — {speedup:.1}x", cold_ns / 1e6, steady_ns / 1e6);
    assert!(
        speedup >= MIN_SPEEDUP,
        "serving regression: steady-state {speedup:.2}x vs cold is below the {MIN_SPEEDUP}x floor"
    );

    // Open-loop replay for the serving-quality numbers.
    let replay = replay_open_loop(&runtime, &cfg.name, &trace[..trace_len]);
    let stats = runtime.stats();
    runtime.shutdown();
    assert!(stats.cache_hit_rate() > 0.0, "plan cache never hit");
    assert_eq!(replay.lost(trace_len), 0, "lost responses");
    assert_eq!(runtime.stats().outstanding(), 0, "unanswered requests after drain");
    println!(
        "replay: {} ok / {} shed / {} rejected, p50 {:.1} ms, p99 {:.1} ms, mean batch {:.2}, hit rate {:.0}%",
        replay.ok,
        replay.shed,
        replay.rejected,
        stats.p50_ms,
        stats.p99_ms,
        stats.mean_batch,
        stats.cache_hit_rate() * 100.0
    );

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_serve.json");
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"serve\",\n");
        out.push_str(&format!(
            "  \"model\": {{\"name\": \"{}\", \"layers\": {}, \"hidden\": {}, \"seq\": {}, \"vocab\": {}, \"experts\": {}}},\n",
            cfg.name, cfg.layers, cfg.hidden, cfg.seq, cfg.vocab, cfg.experts()
        ));
        out.push_str(&format!(
            "  \"serve_config\": {{\"max_batch\": {}, \"batch_window_ms\": {}, \"burst\": {BURST}}},\n",
            config.max_batch,
            config.batch_window.as_secs_f64() * 1e3
        ));
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = c
            .summaries()
            .iter()
            .map(|s| {
                format!(
                    "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}",
                    s.name, s.mean_ns, s.min_ns, s.samples
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"per_request_ms\": {{\"cold\": {:.2}, \"steady\": {:.2}, \"speedup\": {speedup:.2}}},\n",
            cold_ns / 1e6,
            steady_ns / 1e6
        ));
        out.push_str(&format!(
            "  \"replay\": {{\"requests\": {trace_len}, \"rate_hz\": {rate_hz}, \"ok\": {}, \"shed\": {}, \"rejected\": {}, \"lost\": {}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}, \"p99_ms\": {:.1}, \"mean_batch\": {:.2}}},\n",
            replay.ok,
            replay.shed,
            replay.rejected,
            replay.lost(trace_len),
            stats.p50_ms,
            stats.p95_ms,
            stats.p99_ms,
            stats.mean_batch
        ));
        out.push_str(&format!(
            "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.2}}}\n",
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.evictions,
            stats.cache_hit_rate()
        ));
        out.push_str("}\n");
        std::fs::write(path, out).expect("write BENCH_serve.json");
        println!("\nwrote {path}");
    }
}
