//! Naive-vs-tiled-vs-threaded comparison of the tensor compute backend.
//!
//! Benchmarks the packed GEMM engine (`lancet_tensor::gemm`) against the
//! retained naive reference kernel on GPT2-S-MoE-sized operands (hidden
//! 768, FFN 3072), asserts the engines are bit-identical on the benched
//! operands, and records the measured speedups to
//! `results/BENCH_kernels.json` so the comparison is a tracked artifact
//! (like the fig15 engine table). The table is reproduced and discussed
//! in EXPERIMENTS.md.
//!
//! Run modes:
//!
//! * `cargo bench -p lancet-bench --bench kernels` — full run, writes the
//!   JSON artifact.
//! * `cargo bench -p lancet-bench --bench kernels -- --quick` — smoke run
//!   for `scripts/verify.sh`: fewer samples, no artifact, but the
//!   bit-identity checks and a conservative speedup floor still apply.

use criterion::Criterion;
use lancet_tensor::gemm;
use lancet_tensor::pool::default_workers;
use lancet_tensor::{PackedTensor, TensorRng};

/// GPT2-S-MoE FFN shapes: token rows × hidden, hidden × FFN.
const TOKENS: usize = 512;
const HIDDEN: usize = 768;
const FFN: usize = 3072;
/// Decode-step token rows: a handful of single-token sequences, the
/// steady-state serving shape where per-call weight packing dominates.
const STEP_TOKENS: usize = 8;
/// Expert-parallel batched shapes: experts × capacity × hidden.
const EXPERTS: usize = 8;
const CAPACITY: usize = 64;

/// Speedup floor enforced in both modes; the recorded full-run number is
/// expected to be well above this (see EXPERIMENTS.md).
const MIN_SPEEDUP: f64 = 3.0;
/// Floor for prepacked weight panels at the decode-step shape: reusing a
/// resident pack must beat repacking `B` on every call. At `m = 8` the
/// pack traverses `k·n` elements while the multiply does only `8·k·n`
/// MACs, so skipping it is a large, core-count-independent win; the floor
/// is set conservatively for noisy CI machines.
const MIN_PREPACK_SPEEDUP: f64 = 1.15;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Ignore criterion-style filter args the harness does not implement.
    let mut c = Criterion::default();
    c.sample_size(if quick { 3 } else { 10 });

    let mut rng = TensorRng::seed(42);
    let a = rng.uniform(vec![TOKENS, HIDDEN], -1.0, 1.0);
    let b = rng.uniform(vec![HIDDEN, FFN], -1.0, 1.0);
    let xe = rng.uniform(vec![EXPERTS, CAPACITY, HIDDEN], -1.0, 1.0);
    let we = rng.uniform(vec![EXPERTS, HIDDEN, FFN], -1.0, 1.0);

    // The determinism contract, checked on the exact benched operands:
    // tiled and threaded results must equal the naive reference bit for
    // bit, for any worker count.
    let naive = gemm::matmul_reference(&a, &b, false, false).unwrap();
    for workers in [1, 2, 0] {
        let tiled = gemm::matmul_tiled(&a, &b, false, false, workers).unwrap();
        assert_eq!(naive.data(), tiled.data(), "matmul not bit-identical (workers={workers})");
    }
    let naive_batched = gemm::batched_matmul_reference(&xe, &we).unwrap();
    for workers in [1, 2, 0] {
        let tiled = gemm::batched_matmul_tiled(&xe, &we, workers).unwrap();
        assert_eq!(
            naive_batched.data(),
            tiled.data(),
            "batched_matmul not bit-identical (workers={workers})"
        );
    }
    // Prepacked weight panels must also be bit-identical — packing moves
    // elements, never reassociates the accumulation.
    let a_step = rng.uniform(vec![STEP_TOKENS, HIDDEN], -1.0, 1.0);
    let packed_b = PackedTensor::pack(&b, false).unwrap();
    let packed_we = PackedTensor::pack_batched(&we).unwrap();
    let step_ref = gemm::matmul_reference(&a_step, &b, false, false).unwrap();
    assert_eq!(
        step_ref.data(),
        gemm::matmul_packed(&a_step, &packed_b, false, 1).unwrap().data(),
        "prepacked step matmul not bit-identical"
    );
    assert_eq!(
        naive.data(),
        gemm::matmul_packed(&a, &packed_b, false, 1).unwrap().data(),
        "prepacked batch matmul not bit-identical"
    );
    assert_eq!(
        naive_batched.data(),
        gemm::batched_matmul_packed(&xe, &packed_we, 1).unwrap().data(),
        "prepacked batched matmul not bit-identical"
    );
    println!("bit-identity: naive == tiled == threaded == prepacked (workers 1, 2, auto)\n");

    let mut group = c.benchmark_group("matmul_gpt2s_moe");
    group.bench_function("naive", |bench| {
        bench.iter(|| gemm::matmul_reference(&a, &b, false, false).unwrap())
    });
    group.bench_function("tiled", |bench| {
        bench.iter(|| gemm::matmul_tiled(&a, &b, false, false, 1).unwrap())
    });
    group.bench_function("threaded", |bench| {
        bench.iter(|| gemm::matmul_tiled(&a, &b, false, false, 0).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("batched_matmul_experts");
    group.bench_function("naive", |bench| {
        bench.iter(|| gemm::batched_matmul_reference(&xe, &we).unwrap())
    });
    group.bench_function("tiled", |bench| {
        bench.iter(|| gemm::batched_matmul_tiled(&xe, &we, 1).unwrap())
    });
    group.bench_function("threaded", |bench| {
        bench.iter(|| gemm::batched_matmul_tiled(&xe, &we, 0).unwrap())
    });
    group.finish();

    // Prepacked panels vs repack-per-call, at the decode-step shape (the
    // steady-state serving hot path, where packing dominates), the full
    // batch shape, and the batched expert stack.
    let mut group = c.benchmark_group("matmul_step_prepack");
    group.bench_function("repack", |bench| {
        bench.iter(|| gemm::matmul_tiled(&a_step, &b, false, false, 1).unwrap())
    });
    group.bench_function("prepacked", |bench| {
        bench.iter(|| gemm::matmul_packed(&a_step, &packed_b, false, 1).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("matmul_batch_prepack");
    group.bench_function("repack", |bench| {
        bench.iter(|| gemm::matmul_tiled(&a, &b, false, false, 1).unwrap())
    });
    group.bench_function("prepacked", |bench| {
        bench.iter(|| gemm::matmul_packed(&a, &packed_b, false, 1).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("batched_experts_prepack");
    group.bench_function("repack", |bench| {
        bench.iter(|| gemm::batched_matmul_tiled(&xe, &we, 1).unwrap())
    });
    group.bench_function("prepacked", |bench| {
        bench.iter(|| gemm::batched_matmul_packed(&xe, &packed_we, 1).unwrap())
    });
    group.finish();

    // Chunk-parallel reduction op, for the where-does-the-time-go story.
    let scores = rng.uniform(vec![TOKENS * 12, TOKENS], -4.0, 4.0);
    c.bench_function("softmax_attention_sized", |bench| bench.iter(|| scores.softmax_last()));

    let speedup = |num: &str, den: &str| -> f64 {
        let n = c.summary(num).expect("ran").min_ns;
        let d = c.summary(den).expect("ran").min_ns;
        n / d.max(1.0)
    };
    let tiled_vs_naive = speedup("matmul_gpt2s_moe/naive", "matmul_gpt2s_moe/tiled");
    let threaded_vs_naive = speedup("matmul_gpt2s_moe/naive", "matmul_gpt2s_moe/threaded");
    let batched_tiled = speedup("batched_matmul_experts/naive", "batched_matmul_experts/tiled");
    let batched_threaded =
        speedup("batched_matmul_experts/naive", "batched_matmul_experts/threaded");
    let prepack_step = speedup("matmul_step_prepack/repack", "matmul_step_prepack/prepacked");
    let prepack_batch = speedup("matmul_batch_prepack/repack", "matmul_batch_prepack/prepacked");
    let prepack_experts =
        speedup("batched_experts_prepack/repack", "batched_experts_prepack/prepacked");

    println!();
    println!("speedup over naive (min-of-samples):");
    println!("  matmul  tiled    {tiled_vs_naive:>7.2}x");
    println!("  matmul  threaded {threaded_vs_naive:>7.2}x");
    println!("  batched tiled    {batched_tiled:>7.2}x");
    println!("  batched threaded {batched_threaded:>7.2}x");
    println!("speedup of prepacked panels over repack-per-call:");
    println!("  step  (m={STEP_TOKENS:<3})   {prepack_step:>7.2}x");
    println!("  batch (m={TOKENS:<3})   {prepack_batch:>7.2}x");
    println!("  experts (bt={EXPERTS})  {prepack_experts:>7.2}x");
    println!("  workers (auto)   {:>7}", default_workers());

    let best = tiled_vs_naive.max(threaded_vs_naive);
    assert!(
        best >= MIN_SPEEDUP,
        "kernel regression: best matmul speedup {best:.2}x < {MIN_SPEEDUP}x floor"
    );
    assert!(
        prepack_step >= MIN_PREPACK_SPEEDUP,
        "prepack regression: step-shape prepacked speedup {prepack_step:.2}x < \
         {MIN_PREPACK_SPEEDUP}x floor"
    );

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_kernels.json");
        write_artifact(
            path,
            &c,
            &[
                ("matmul_tiled_vs_naive", tiled_vs_naive),
                ("matmul_threaded_vs_naive", threaded_vs_naive),
                ("batched_tiled_vs_naive", batched_tiled),
                ("batched_threaded_vs_naive", batched_threaded),
                ("prepacked_vs_repack_step", prepack_step),
                ("prepacked_vs_repack_batch", prepack_batch),
                ("prepacked_vs_repack_experts", prepack_experts),
            ],
        );
        println!("\nwrote {path}");
    }
}

/// Hand-rolled JSON (no serde in the sandbox), matching the repo's other
/// machine-readable artifacts.
fn write_artifact(path: &str, c: &Criterion, speedups: &[(&str, f64)]) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"kernels\",\n");
    out.push_str(&format!(
        "  \"shapes\": {{\"matmul\": [{TOKENS}, {HIDDEN}, {FFN}], \"step\": [{STEP_TOKENS}, {HIDDEN}, {FFN}], \"batched\": [{EXPERTS}, {CAPACITY}, {HIDDEN}, {FFN}]}},\n"
    ));
    out.push_str(&format!("  \"workers_auto\": {},\n", default_workers()));
    out.push_str(&format!(
        "  \"avx2\": {},\n",
        std::arch::is_x86_feature_detected!("avx2")
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = c
        .summaries()
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}",
                s.name, s.mean_ns, s.min_ns, s.samples
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"speedups_min_over_min\": {\n");
    let sp: Vec<String> =
        speedups.iter().map(|(k, v)| format!("    \"{k}\": {v:.2}")).collect();
    out.push_str(&sp.join(",\n"));
    out.push_str("\n  }\n}\n");
    std::fs::write(path, out).expect("write BENCH_kernels.json");
}
