//! Criterion micro-benchmarks of the tensor substrate kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lancet_tensor::{Tensor, TensorRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = TensorRng::seed(1);
        let a = rng.uniform(vec![n, n], -1.0, 1.0);
        let b = rng.uniform(vec![n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap());
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = TensorRng::seed(2);
    let x = rng.uniform(vec![256, 256], -4.0, 4.0);
    c.bench_function("softmax_256x256", |b| b.iter(|| x.softmax_last()));
}

fn bench_layer_norm(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    let x = rng.uniform(vec![512, 256], -1.0, 1.0);
    let gamma = Tensor::full(vec![256], 1.0);
    let beta = Tensor::zeros(vec![256]);
    c.bench_function("layer_norm_512x256", |b| {
        b.iter(|| x.layer_norm(&gamma, &beta, 1e-5).unwrap())
    });
}

fn bench_permute(c: &mut Criterion) {
    let mut rng = TensorRng::seed(4);
    let x = rng.uniform(vec![8, 32, 64], -1.0, 1.0);
    c.bench_function("permute_8x32x64", |b| b.iter(|| x.permute(&[1, 0, 2]).unwrap()));
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_layer_norm, bench_permute);
criterion_main!(benches);
