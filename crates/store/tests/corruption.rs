//! Adversarial-input coverage: every way a store file can be wrong must
//! surface as a typed [`StoreError`] — no UB, no panic — and a clean file
//! must round-trip bit-identically through both load paths.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use lancet_store::{
    open_store, open_store_with, write_store, OpenOptions, StoreError, StoredPacks,
};
use lancet_tensor::{PackedTensor, Tensor, TensorRng};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lancet-store-test-{}-{name}.lancet", std::process::id()))
}

fn sample_model(devices: usize) -> (Vec<HashMap<String, Tensor>>, StoredPacks) {
    let mut rng = TensorRng::seed(7);
    let shared = rng.uniform(vec![8, 12], -1.0, 1.0);
    let expert_stack = rng.uniform(vec![2, 12, 8], -1.0, 1.0);
    let mut weights = Vec::new();
    let mut packs: StoredPacks = Vec::new();
    let shared_pack = Arc::new(PackedTensor::pack(&shared, false).unwrap());
    for d in 0..devices {
        let local = rng.uniform(vec![4, 4], -1.0, 1.0);
        weights.push(HashMap::from([
            ("shared.w".to_string(), shared.clone()),
            ("expert.stack".to_string(), expert_stack.clone()),
            (format!("local.{d}"), local.clone()),
        ]));
        packs.push(HashMap::from([
            ("shared.w".to_string(), Arc::clone(&shared_pack)),
            (
                "expert.stack".to_string(),
                Arc::new(PackedTensor::pack_batched(&expert_stack).unwrap()),
            ),
        ]));
    }
    (weights, packs)
}

#[test]
fn round_trip_is_bit_identical_mapped_and_heap() {
    let (weights, packs) = sample_model(2);
    let path = tmp("roundtrip");
    let summary = write_store(&path, "sample", &weights, &packs).unwrap();
    assert!(summary.deduped > 0, "replicated weights must dedupe");

    for mmap in [true, false] {
        let model = open_store_with(
            &path,
            OpenOptions { mmap: Some(mmap), verify_data: Some(true) },
        )
        .unwrap();
        assert_eq!(model.name, "sample");
        assert_eq!(model.devices, 2);
        for d in 0..2 {
            for (name, want) in &weights[d] {
                let got = &model.weights[d][name];
                assert_eq!(got.shape(), want.shape());
                let same_bits = got
                    .data()
                    .iter()
                    .zip(want.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same_bits, "weight `{name}` device {d} differs ({})", if mmap { "mmap" } else { "heap" });
            }
            for (name, want) in &packs[d] {
                let got = &model.packs[d][name];
                assert_eq!(got.as_ref(), want.as_ref(), "pack `{name}` device {d} differs");
            }
        }
        // Replicated entries share storage across devices after load.
        assert_eq!(
            model.weights[0]["shared.w"].data().as_ptr(),
            model.weights[1]["shared.w"].data().as_ptr()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_model_round_trips() {
    let path = tmp("empty");
    write_store(&path, "nothing", &[], &Vec::new()).unwrap();
    let model = open_store(&path).unwrap();
    assert_eq!(model.devices, 0);
    assert!(model.weights.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_header_fields_are_typed_errors() {
    let (weights, packs) = sample_model(1);
    let path = tmp("header");
    write_store(&path, "sample", &weights, &packs).unwrap();
    let clean = std::fs::read(&path).unwrap();

    let mutate = |at: usize, to: u8| {
        let mut bytes = clean.clone();
        bytes[at] = to;
        std::fs::write(&path, &bytes).unwrap();
        open_store(&path)
    };

    assert!(matches!(mutate(0, b'Z'), Err(StoreError::BadMagic)));
    assert!(matches!(mutate(8, 42), Err(StoreError::WrongVersion { found: 42, .. })));
    assert!(matches!(mutate(13, 0xFF), Err(StoreError::BadEndianTag)));
    // Flipping a byte inside the TOC region breaks its checksum.
    assert!(matches!(mutate(140, 0xA5), Err(StoreError::ChecksumMismatch { section: "toc" })));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_files_are_typed_errors() {
    let (weights, packs) = sample_model(1);
    let path = tmp("truncated");
    write_store(&path, "sample", &weights, &packs).unwrap();
    let clean = std::fs::read(&path).unwrap();

    for keep in [0, 8, 64, 127, 200, clean.len() - 64] {
        std::fs::write(&path, &clean[..keep]).unwrap();
        let err = open_store(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }),
            "{keep}-byte prefix gave {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_data_is_caught_when_verification_is_on() {
    let (weights, packs) = sample_model(1);
    let path = tmp("data");
    write_store(&path, "sample", &weights, &packs).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 16;
    bytes[at] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    // Cheap open (header + TOC only) accepts it: the O(open) contract.
    assert!(open_store_with(&path, OpenOptions { mmap: None, verify_data: Some(false) }).is_ok());
    // Deep verification rejects it.
    let err = open_store_with(&path, OpenOptions { mmap: None, verify_data: Some(true) })
        .unwrap_err();
    assert!(matches!(err, StoreError::ChecksumMismatch { section: "data" }), "{err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_and_short_files_never_panic() {
    let path = tmp("garbage");
    for bytes in [
        Vec::new(),
        vec![0u8; 3],
        vec![0xFFu8; 4096],
        b"LNCSTOR\x01 but then nonsense follows here".to_vec(),
    ] {
        std::fs::write(&path, &bytes).unwrap();
        assert!(open_store(&path).is_err());
    }
    assert!(matches!(open_store(std::path::Path::new("/nonexistent/nowhere.lancet")), Err(StoreError::Io(_))));
    std::fs::remove_file(&path).ok();
}
