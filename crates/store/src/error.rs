//! Typed failures for the on-disk model store.

use lancet_tensor::TensorError;

/// Everything that can go wrong opening, validating, or writing a store
/// file. Corrupt input is always a typed error — never UB, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the store magic.
    BadMagic,
    /// The file's format version is not one this reader understands.
    WrongVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        expected: u32,
    },
    /// The header's endianness tag does not decode as little-endian — the
    /// file was written by a byte-swapped producer (or is corrupt).
    BadEndianTag,
    /// The file is shorter than a section the header promises.
    Truncated {
        /// Bytes the section needs.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's recorded checksum does not match its bytes.
    ChecksumMismatch {
        /// Which section failed (`"toc"` or `"data"`).
        section: &'static str,
    },
    /// The table of contents is structurally invalid (bad entry kind,
    /// unaligned or out-of-bounds payload, non-UTF-8 name, …).
    BadToc(String),
    /// Reconstructing a tensor or packed panels from a mapped window
    /// failed validation.
    Tensor(TensorError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a lancet model store (bad magic)"),
            StoreError::WrongVersion { found, expected } => {
                write!(f, "unsupported store format version {found} (reader supports {expected})")
            }
            StoreError::BadEndianTag => {
                write!(f, "store endianness tag invalid (byte-swapped or corrupt header)")
            }
            StoreError::Truncated { needed, actual } => {
                write!(f, "store file truncated: need {needed} bytes, have {actual}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "store {section} checksum mismatch (corrupt file)")
            }
            StoreError::BadToc(why) => write!(f, "store TOC invalid: {why}"),
            StoreError::Tensor(e) => write!(f, "store tensor reconstruction failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<TensorError> for StoreError {
    fn from(e: TensorError) -> Self {
        StoreError::Tensor(e)
    }
}
