//! `lancet-store`: an mmap-friendly, stable on-disk model format.
//!
//! One `ServeRuntime` per process keeps model weights in per-process
//! `Arc`'d tensors, so every replica pays an O(copy) cold start and holds
//! its own copy of every parameter. This crate replaces that with a
//! *store file*: aligned little-endian sections behind a checksummed
//! header and per-tensor table of contents (epserde-style), written once
//! by `lancet pack-model` and opened by any number of replicas. Opening
//! maps the file read-only — tensors and prepacked GEMM panels borrow the
//! mapped pages zero-copy — so N replicas on one host share physical
//! pages and cold start is O(open). Loaded weights are bit-identical to
//! the canonical in-process initialization path (property-tested across
//! the model zoo), and because the store carries the prepacked panels
//! too, replicas skip re-packing at load.
//!
//! Corrupt, truncated, or wrong-version files fail with a typed
//! [`StoreError`] — never UB, never a panic. See `docs/ARCHITECTURE.md`
//! for the layout diagram and `docs/CONFIG.md` for the `LANCET_STORE_*`
//! environment switches.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use lancet_store::{open_store, write_store};
//! use lancet_tensor::Tensor;
//!
//! let dir = std::env::temp_dir();
//! let path = dir.join(format!("doc-store-{}.lancet", std::process::id()));
//! let weights = vec![HashMap::from([(
//!     "w".to_string(),
//!     Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?,
//! )])];
//! write_store(&path, "demo", &weights, &Vec::new())?;
//!
//! let model = open_store(&path)?;
//! assert_eq!(model.name, "demo");
//! assert_eq!(model.weights[0]["w"].data(), &[1.0, 2.0, 3.0, 4.0]);
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod format;
pub mod mapping;
mod reader;
mod writer;

pub use error::StoreError;
pub use mapping::{mmap_enabled, mmap_supported};
pub use reader::{open_store, open_store_with, OpenOptions, StoredModel};
pub use writer::{write_store, StoredPacks, WriteSummary};
