//! Serializing a model (canonical weights + prepacked panels) into the
//! store format.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use lancet_tensor::{PackedTensor, Tensor};

use crate::format::{
    align_up, fnv1a, Header, PackMeta, TocEntry, DEVICE_ALL, HEADER_LEN, KIND_PACK, KIND_TENSOR,
};
use crate::StoreError;

/// Per-device prepacked panels, keyed by weight name — the same shape as
/// `lancet-serve`'s canonical pack set.
pub type StoredPacks = Vec<HashMap<String, Arc<PackedTensor>>>;

/// What [`write_store`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Tensor entries written.
    pub tensors: usize,
    /// Pack entries written.
    pub packs: usize,
    /// Entries collapsed to a single replicated (`ALL`-device) payload —
    /// per-device copies the file does *not* carry.
    pub deduped: usize,
}

enum Payload {
    Tensor(Tensor),
    Pack(Arc<PackedTensor>),
}

impl Payload {
    fn words(&self) -> &[f32] {
        match self {
            Payload::Tensor(t) => t.data(),
            Payload::Pack(p) => p.panel_data(),
        }
    }
}

/// Writes `weights` (one name→tensor map per device) and `packs` (same
/// layout; may be empty or shorter than `weights`) for model `name` to
/// `path`, replacing any existing file.
///
/// Weights and packs whose bits are identical on every device are written
/// once under the `ALL` device sentinel, so replicated parameters cost one
/// payload no matter the device count. Entry order is deterministic
/// (device, then name), making the bytes reproducible for fixed input.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure; [`StoreError::BadToc`] if a
/// name exceeds the format's sanity bounds.
pub fn write_store(
    path: &Path,
    name: &str,
    weights: &[HashMap<String, Tensor>],
    packs: &StoredPacks,
) -> Result<WriteSummary, StoreError> {
    let devices = weights.len();
    if name.len() > 4096 {
        return Err(StoreError::BadToc(format!("model name length {} implausible", name.len())));
    }

    // Collect entries: replicated payloads (bit-identical on every
    // device) dedupe to one ALL entry.
    let mut entries: Vec<(TocEntry, Payload)> = Vec::new();
    let mut summary = WriteSummary { bytes: 0, tensors: 0, packs: 0, deduped: 0 };

    let mut tensor_names: Vec<&String> = weights.iter().flat_map(|m| m.keys()).collect();
    tensor_names.sort();
    tensor_names.dedup();
    for wname in tensor_names {
        if wname.len() > 4096 {
            return Err(StoreError::BadToc(format!(
                "weight name length {} implausible",
                wname.len()
            )));
        }
        let on_all: Vec<Option<&Tensor>> = weights.iter().map(|m| m.get(wname)).collect();
        let replicated = devices > 0
            && on_all.iter().all(|t| t.is_some())
            && on_all.windows(2).all(|w| {
                let (a, b) = (w[0].unwrap(), w[1].unwrap());
                a.shape() == b.shape() && bits_equal(a.data(), b.data())
            });
        if replicated {
            let t = on_all[0].unwrap();
            if devices > 1 {
                summary.deduped += devices - 1;
            }
            summary.tensors += 1;
            entries.push((tensor_entry(wname, DEVICE_ALL, t), Payload::Tensor(t.clone())));
        } else {
            for (d, t) in on_all.iter().enumerate() {
                if let Some(t) = t {
                    summary.tensors += 1;
                    entries.push((tensor_entry(wname, d as u32, t), Payload::Tensor((*t).clone())));
                }
            }
        }
    }

    let mut pack_names: Vec<&String> = packs.iter().flat_map(|m| m.keys()).collect();
    pack_names.sort();
    pack_names.dedup();
    for pname in pack_names {
        let on_all: Vec<Option<&Arc<PackedTensor>>> = packs.iter().map(|m| m.get(pname)).collect();
        let replicated = !packs.is_empty()
            && packs.len() == devices
            && on_all.iter().all(|p| p.is_some())
            && on_all.windows(2).all(|w| {
                let (a, b) = (w[0].unwrap(), w[1].unwrap());
                Arc::ptr_eq(a, b) || bits_equal(a.panel_data(), b.panel_data())
            });
        if replicated {
            let p = on_all[0].unwrap();
            if devices > 1 {
                summary.deduped += devices - 1;
            }
            summary.packs += 1;
            entries.push((pack_entry(pname, DEVICE_ALL, p), Payload::Pack(Arc::clone(p))));
        } else {
            for (d, p) in on_all.iter().enumerate() {
                if let Some(p) = p {
                    summary.packs += 1;
                    entries.push((pack_entry(pname, d as u32, p), Payload::Pack(Arc::clone(p))));
                }
            }
        }
    }

    // Lay out: header | TOC (name preamble + entries) | data (aligned).
    let mut toc_len = 4 + name.len();
    for (e, _) in &entries {
        toc_len += e.encoded_len();
    }
    let data_off = align_up((HEADER_LEN + toc_len) as u64);
    let mut cursor = data_off;
    for (e, p) in &mut entries {
        cursor = align_up(cursor);
        e.payload_off = cursor;
        e.payload_words = p.words().len() as u64;
        cursor += 4 * e.payload_words;
    }
    let file_len = align_up(cursor);
    let data_len = file_len - data_off;

    // Serialize the TOC and data section, then the header over them.
    let mut toc = Vec::with_capacity(toc_len);
    toc.extend_from_slice(&(name.len() as u32).to_le_bytes());
    toc.extend_from_slice(name.as_bytes());
    for (e, _) in &entries {
        e.write(&mut toc);
    }
    debug_assert_eq!(toc.len(), toc_len);

    let mut data = vec![0u8; data_len as usize];
    for (e, p) in &entries {
        let at = (e.payload_off - data_off) as usize;
        let words = p.words();
        for (i, w) in words.iter().enumerate() {
            data[at + 4 * i..at + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    let header = Header {
        devices: devices as u32,
        entries: entries.len() as u32,
        toc_off: HEADER_LEN as u64,
        toc_len: toc_len as u64,
        data_off,
        data_len,
        toc_checksum: fnv1a(&toc),
        data_checksum: fnv1a(&data),
    };

    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&header.to_bytes())?;
    out.write_all(&toc)?;
    out.write_all(&vec![0u8; (data_off as usize) - HEADER_LEN - toc_len])?;
    out.write_all(&data)?;
    out.flush()?;
    summary.bytes = file_len;
    Ok(summary)
}

/// Bit-exact slice comparison (distinguishes `0.0`/`-0.0`, treats equal
/// NaN bit patterns as equal): the dedupe predicate must be exactly the
/// "loads identically" predicate.
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn tensor_entry(name: &str, device: u32, t: &Tensor) -> TocEntry {
    TocEntry {
        kind: KIND_TENSOR,
        device,
        name: name.to_string(),
        dims: t.shape().iter().map(|&d| d as u64).collect(),
        payload_off: 0,
        payload_words: 0,
        pack: None,
    }
}

fn pack_entry(name: &str, device: u32, p: &PackedTensor) -> TocEntry {
    let spec = p.spec();
    TocEntry {
        kind: KIND_PACK,
        device,
        name: name.to_string(),
        dims: p.src_shape().iter().map(|&d| d as u64).collect(),
        payload_off: 0,
        payload_words: 0,
        pack: Some(PackMeta {
            batch: p.batch() as u64,
            k: p.k() as u64,
            n: p.n() as u64,
            mc: spec.mc as u32,
            kc: spec.kc as u32,
            nc: spec.nc as u32,
            transposed: p.transposed(),
        }),
    }
}
