//! The on-disk layout: header, table of contents, aligned data section.
//!
//! Everything is little-endian and position-independent; payloads are
//! 64-byte aligned so a page-aligned mapping yields aligned `f32` slices
//! (and cache-line-aligned panel reads). See `docs/ARCHITECTURE.md` for
//! the layout diagram.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (128 B): magic, version, endian tag, devices,       │
//! │   entry count, toc off/len, data off/len, toc/data FNV-1a  │
//! ├────────────────────────────────────────────────────────────┤
//! │ TOC: model name, then one entry per payload                │
//! │   (kind, device|ALL, name, dims, byte offset, word count,  │
//! │    pack metadata for panel entries)                        │
//! ├──────────────────────── pad to 64 B ───────────────────────┤
//! │ data: raw f32 words, each payload 64-byte aligned          │
//! └────────────────────────────────────────────────────────────┘
//! ```

use crate::StoreError;

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"LNCSTOR\x01";

/// Format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Endianness canary: decodes to this value only when the file is read
/// with the same byte order it was written with.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Header size in bytes (fixed; trailing bytes reserved as zero).
pub const HEADER_LEN: usize = 128;

/// Alignment of the data section and of every payload within it.
pub const ALIGN: usize = 64;

/// Device sentinel marking a payload shared by all devices (replicated
/// weights are deduplicated to a single entry).
pub const DEVICE_ALL: u32 = u32::MAX;

/// Entry payload kind: a dense tensor.
pub const KIND_TENSOR: u8 = 0;

/// Entry payload kind: prepacked GEMM panels.
pub const KIND_PACK: u8 = 1;

/// Rounds `off` up to the next [`ALIGN`] boundary.
pub fn align_up(off: u64) -> u64 {
    off.div_ceil(ALIGN as u64) * ALIGN as u64
}

/// FNV-1a 64-bit over a byte slice — the store's integrity checksum.
/// Deterministic, dependency-free, and fast enough to cover the TOC on
/// every open (the data section is covered on demand; see
/// [`crate::OpenOptions::verify_data`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parsed store header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Number of devices the model was canonicalized for.
    pub devices: u32,
    /// Number of TOC entries.
    pub entries: u32,
    /// Byte offset of the TOC region.
    pub toc_off: u64,
    /// Byte length of the TOC region.
    pub toc_len: u64,
    /// Byte offset of the data section (64-byte aligned).
    pub data_off: u64,
    /// Byte length of the data section.
    pub data_len: u64,
    /// FNV-1a of the TOC region.
    pub toc_checksum: u64,
    /// FNV-1a of the data section.
    pub data_checksum: u64,
}

impl Header {
    /// Serializes the header into its fixed 128-byte form.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
        out[16..20].copy_from_slice(&self.devices.to_le_bytes());
        out[20..24].copy_from_slice(&self.entries.to_le_bytes());
        out[24..32].copy_from_slice(&self.toc_off.to_le_bytes());
        out[32..40].copy_from_slice(&self.toc_len.to_le_bytes());
        out[40..48].copy_from_slice(&self.data_off.to_le_bytes());
        out[48..56].copy_from_slice(&self.data_len.to_le_bytes());
        out[56..64].copy_from_slice(&self.toc_checksum.to_le_bytes());
        out[64..72].copy_from_slice(&self.data_checksum.to_le_bytes());
        out
    }

    /// Parses and validates the fixed header: magic, version, endianness,
    /// and that the promised sections lie within `file_len`.
    pub fn parse(bytes: &[u8], file_len: u64) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::WrongVersion { found: version, expected: VERSION });
        }
        let endian = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if endian != ENDIAN_TAG {
            return Err(StoreError::BadEndianTag);
        }
        let h = Header {
            devices: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
            entries: u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            toc_off: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
            toc_len: u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
            data_off: u64::from_le_bytes(bytes[40..48].try_into().unwrap()),
            data_len: u64::from_le_bytes(bytes[48..56].try_into().unwrap()),
            toc_checksum: u64::from_le_bytes(bytes[56..64].try_into().unwrap()),
            data_checksum: u64::from_le_bytes(bytes[64..72].try_into().unwrap()),
        };
        for (off, len) in [(h.toc_off, h.toc_len), (h.data_off, h.data_len)] {
            let end = off.checked_add(len).ok_or(StoreError::BadToc(
                "section range overflows u64".to_string(),
            ))?;
            if end > file_len {
                return Err(StoreError::Truncated { needed: end, actual: file_len });
            }
        }
        if !h.data_off.is_multiple_of(ALIGN as u64) {
            return Err(StoreError::BadToc(format!(
                "data section offset {} not {ALIGN}-byte aligned",
                h.data_off
            )));
        }
        Ok(h)
    }
}

/// Pack metadata carried by a [`KIND_PACK`] TOC entry — everything
/// [`lancet_tensor::PackedTensor::from_shared_panels`] needs besides the
/// panel words themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackMeta {
    /// Leading batch extent (1 for rank-2 sources).
    pub batch: u64,
    /// Contraction dimension after transpose resolution.
    pub k: u64,
    /// Output-column dimension after transpose resolution.
    pub n: u64,
    /// Cache blocking the panels were packed with: MC.
    pub mc: u32,
    /// Cache blocking: KC.
    pub kc: u32,
    /// Cache blocking: NC.
    pub nc: u32,
    /// Whether the source was interpreted transposed while packing.
    pub transposed: bool,
}

/// One table-of-contents entry: a named payload on a device (or on all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TocEntry {
    /// [`KIND_TENSOR`] or [`KIND_PACK`].
    pub kind: u8,
    /// Owning device ordinal, or [`DEVICE_ALL`] for replicated payloads.
    pub device: u32,
    /// Weight name (the binding key).
    pub name: String,
    /// Tensor shape — for packs, the *source* tensor's shape.
    pub dims: Vec<u64>,
    /// Absolute byte offset of the payload (64-byte aligned).
    pub payload_off: u64,
    /// Payload length in `f32` words.
    pub payload_words: u64,
    /// Present iff `kind == KIND_PACK`.
    pub pack: Option<PackMeta>,
}

impl TocEntry {
    /// Appends the entry's serialized form to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.extend_from_slice(&self.device.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&self.payload_off.to_le_bytes());
        out.extend_from_slice(&self.payload_words.to_le_bytes());
        if let Some(p) = &self.pack {
            out.extend_from_slice(&p.batch.to_le_bytes());
            out.extend_from_slice(&p.k.to_le_bytes());
            out.extend_from_slice(&p.n.to_le_bytes());
            out.extend_from_slice(&p.mc.to_le_bytes());
            out.extend_from_slice(&p.kc.to_le_bytes());
            out.extend_from_slice(&p.nc.to_le_bytes());
            out.push(p.transposed as u8);
        }
    }

    /// Serialized byte length of this entry.
    pub fn encoded_len(&self) -> usize {
        let base = 1 + 4 + 4 + self.name.len() + 4 + 8 * self.dims.len() + 8 + 8;
        if self.pack.is_some() {
            base + 8 * 3 + 4 * 3 + 1
        } else {
            base
        }
    }

    /// Parses one entry from `cur`, advancing it.
    pub fn read(cur: &mut Cursor<'_>) -> Result<TocEntry, StoreError> {
        let kind = cur.u8()?;
        if kind != KIND_TENSOR && kind != KIND_PACK {
            return Err(StoreError::BadToc(format!("unknown entry kind {kind}")));
        }
        let device = cur.u32()?;
        let name_len = cur.u32()? as usize;
        if name_len > 4096 {
            return Err(StoreError::BadToc(format!("entry name length {name_len} implausible")));
        }
        let name = String::from_utf8(cur.bytes(name_len)?.to_vec())
            .map_err(|_| StoreError::BadToc("entry name is not UTF-8".to_string()))?;
        let rank = cur.u32()? as usize;
        if rank > 8 {
            return Err(StoreError::BadToc(format!("entry rank {rank} implausible")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cur.u64()?);
        }
        let payload_off = cur.u64()?;
        let payload_words = cur.u64()?;
        let pack = if kind == KIND_PACK {
            Some(PackMeta {
                batch: cur.u64()?,
                k: cur.u64()?,
                n: cur.u64()?,
                mc: cur.u32()?,
                kc: cur.u32()?,
                nc: cur.u32()?,
                transposed: cur.u8()? != 0,
            })
        } else {
            None
        };
        Ok(TocEntry { kind, device, name, dims, payload_off, payload_words, pack })
    }
}

/// Bounds-checked little-endian reader over the TOC region.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, starting at its beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: (self.pos + n) as u64,
                actual: self.buf.len() as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string (the model-name preamble).
    pub fn string(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(StoreError::BadToc(format!("string length {len} implausible")));
        }
        String::from_utf8(self.bytes(len)?.to_vec())
            .map_err(|_| StoreError::BadToc("string is not UTF-8".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = Header {
            devices: 4,
            entries: 17,
            toc_off: 128,
            toc_len: 1000,
            data_off: 1152,
            data_len: 4096,
            toc_checksum: 0xDEAD,
            data_checksum: 0xBEEF,
        };
        let bytes = h.to_bytes();
        let parsed = Header::parse(&bytes, 1152 + 4096).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_rejects_corruption() {
        let h = Header {
            devices: 1,
            entries: 0,
            toc_off: 128,
            toc_len: 0,
            data_off: 128,
            data_len: 0,
            toc_checksum: 0,
            data_checksum: 0,
        };
        let good = h.to_bytes();
        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(Header::parse(&bad, 128), Err(StoreError::BadMagic)));
        let mut bad = good;
        bad[8] = 99;
        assert!(matches!(Header::parse(&bad, 128), Err(StoreError::WrongVersion { found: 99, .. })));
        let mut bad = good;
        bad[12] = 0;
        assert!(matches!(Header::parse(&bad, 128), Err(StoreError::BadEndianTag)));
        assert!(matches!(Header::parse(&good[..64], 128), Err(StoreError::Truncated { .. })));
        // Sections past EOF are truncation, not UB.
        let mut h2 = h;
        h2.data_len = 1 << 40;
        assert!(matches!(Header::parse(&h2.to_bytes(), 128), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn toc_entry_round_trips() {
        let entries = vec![
            TocEntry {
                kind: KIND_TENSOR,
                device: DEVICE_ALL,
                name: "h0.attn.wq".to_string(),
                dims: vec![8, 8],
                payload_off: 1152,
                payload_words: 64,
                pack: None,
            },
            TocEntry {
                kind: KIND_PACK,
                device: 1,
                name: "h0.moe.expert.w1".to_string(),
                dims: vec![2, 8, 16],
                payload_off: 1472,
                payload_words: 4096,
                pack: Some(PackMeta {
                    batch: 2,
                    k: 8,
                    n: 16,
                    mc: 256,
                    kc: 256,
                    nc: 512,
                    transposed: false,
                }),
            },
        ];
        let mut buf = Vec::new();
        for e in &entries {
            let before = buf.len();
            e.write(&mut buf);
            assert_eq!(buf.len() - before, e.encoded_len());
        }
        let mut cur = Cursor::new(&buf);
        for e in &entries {
            assert_eq!(&TocEntry::read(&mut cur).unwrap(), e);
        }
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Regression pin: the checksum function is part of the format.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"lancet"), fnv1a(b"lancet"));
        assert_ne!(fnv1a(b"lancet"), fnv1a(b"lancer"));
    }

    #[test]
    fn align_up_rounds_to_64() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }
}
