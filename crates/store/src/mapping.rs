//! File-backed buffer owners: a read-only memory mapping (zero-copy, the
//! whole point of the store) with a heap fallback for platforms or
//! configurations where mapping is unavailable.
//!
//! The workspace is hermetic — no `libc`/`memmap2` — so the mapping is a
//! raw `mmap(2)` syscall, currently wired for Linux on x86_64 and aarch64
//! (little-endian, where reinterpreting mapped bytes as `f32` words is the
//! identity). Everything else, plus `LANCET_STORE_MMAP=0`, takes the
//! [`HeapOwner`] path: read the file once and decode little-endian words —
//! still a correct load, just O(copy) instead of O(open).

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use lancet_tensor::BufOwner;

use crate::StoreError;

/// Whether this build can map files at all (the env switch is consulted
/// separately at open time).
pub fn mmap_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        target_endian = "little",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Whether opening should try to map, honoring `LANCET_STORE_MMAP`
/// (`0`/`false`/`off` force the heap fallback).
pub fn mmap_enabled() -> bool {
    if !mmap_supported() {
        return false;
    }
    match std::env::var("LANCET_STORE_MMAP") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// A file's contents as `f32` words, either mapped or heap-decoded.
pub enum FileBuf {
    /// Pages mapped read-only straight from the file (shared across every
    /// replica that opens the same store).
    Mapped(MapOwner),
    /// Heap copy decoded from little-endian bytes.
    Heap(HeapOwner),
}

impl FileBuf {
    /// Opens `path`, mapping when `want_mmap` and the platform allows,
    /// falling back to a heap read otherwise. Returns the owner and
    /// whether it is genuinely mapped.
    pub fn open(path: &Path, want_mmap: bool) -> Result<(Arc<dyn BufOwner>, bool), StoreError> {
        if want_mmap && mmap_supported() {
            if let Some(m) = MapOwner::open(path)? {
                return Ok((Arc::new(FileBuf::Mapped(m)), true));
            }
        }
        Ok((Arc::new(FileBuf::Heap(HeapOwner::open(path)?)), false))
    }
}

impl BufOwner for FileBuf {
    fn as_f32(&self) -> &[f32] {
        match self {
            FileBuf::Mapped(m) => m.as_f32(),
            FileBuf::Heap(h) => &h.words,
        }
    }
}

/// Heap fallback: the whole file decoded as little-endian `f32` words
/// (trailing bytes that do not fill a word are dropped; the writer pads
/// the file to a 64-byte multiple so nothing meaningful is lost).
pub struct HeapOwner {
    words: Vec<f32>,
}

impl HeapOwner {
    fn open(path: &Path) -> Result<HeapOwner, StoreError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let words = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(HeapOwner { words })
    }
}

/// A read-only private mapping of an entire file.
///
/// The base address is page-aligned, so word `i` of [`BufOwner::as_f32`]
/// is 4-byte aligned for any `i`; the store format additionally 64-byte
/// aligns payloads for cache-line-friendly panel reads.
pub struct MapOwner {
    addr: *mut u8,
    /// Mapped length in bytes (never 0; empty files skip mapping).
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never remapped after construction;
// concurrent reads from any thread are fine, and munmap happens only in
// Drop when no other reference exists (owners are held behind Arc).
unsafe impl Send for MapOwner {}
unsafe impl Sync for MapOwner {}

impl MapOwner {
    /// Maps `path` read-only. Returns `Ok(None)` when the file is empty or
    /// the kernel refuses the mapping (caller falls back to heap).
    fn open(path: &Path) -> Result<Option<MapOwner>, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return Ok(None);
        }
        let fd = fd_of(&file);
        let addr = unsafe { sys_mmap(len as usize, fd) };
        // The kernel returns small negative values (-errno) on failure.
        if addr as isize <= 0 {
            return Ok(None);
        }
        Ok(Some(MapOwner { addr: addr as *mut u8, len: len as usize }))
    }

    fn as_f32(&self) -> &[f32] {
        // SAFETY: the mapping is live for &self (munmap only in Drop), at
        // least `len` bytes, page-aligned (so f32-aligned), and read-only;
        // on the little-endian targets this path compiles for, the bytes
        // are exactly the stored words. Any bit pattern is a valid f32.
        unsafe { std::slice::from_raw_parts(self.addr as *const f32, self.len / 4) }
    }
}

impl Drop for MapOwner {
    fn drop(&mut self) {
        // SAFETY: addr/len are the exact mapping established in open().
        unsafe { sys_munmap(self.addr as usize, self.len) };
    }
}

#[cfg(unix)]
fn fd_of(file: &File) -> i32 {
    use std::os::unix::io::AsRawFd;
    file.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of(_file: &File) -> i32 {
    -1
}

const PROT_READ: usize = 1;
const MAP_PRIVATE: usize = 2;

/// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)` via raw syscall.
///
/// # Safety
///
/// `fd` must be a readable open file descriptor and `len > 0`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_mmap(len: usize, fd: i32) -> usize {
    let ret: usize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") 9usize => ret, // SYS_mmap
        in("rdi") 0usize,
        in("rsi") len,
        in("rdx") PROT_READ,
        in("r10") MAP_PRIVATE,
        in("r8") fd as isize,
        in("r9") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// `munmap(addr, len)` via raw syscall.
///
/// # Safety
///
/// `(addr, len)` must be a live mapping produced by [`sys_mmap`].
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> usize {
    let ret: usize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") 11usize => ret, // SYS_munmap
        in("rdi") addr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// `mmap` via raw syscall (aarch64 numbering).
///
/// # Safety
///
/// As for the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_mmap(len: usize, fd: i32) -> usize {
    let ret: usize;
    std::arch::asm!(
        "svc 0",
        inlateout("x8") 222usize => _, // SYS_mmap
        inlateout("x0") 0usize => ret,
        in("x1") len,
        in("x2") PROT_READ,
        in("x3") MAP_PRIVATE,
        in("x4") fd as isize,
        in("x5") 0usize,
        options(nostack)
    );
    ret
}

/// `munmap` via raw syscall (aarch64 numbering).
///
/// # Safety
///
/// As for the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_munmap(addr: usize, len: usize) -> usize {
    let ret: usize;
    std::arch::asm!(
        "svc 0",
        inlateout("x8") 215usize => _, // SYS_munmap
        inlateout("x0") addr => ret,
        in("x1") len,
        options(nostack)
    );
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_mmap(_len: usize, _fd: i32) -> usize {
    0 // treated as failure → heap fallback
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn sys_munmap(_addr: usize, _len: usize) -> usize {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("lancet-store-map-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn mapped_and_heap_agree() {
        let words: Vec<f32> = (0..64).map(|x| x as f32 * 0.5).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let p = tmp("agree", &bytes);
        let (mapped, was_mapped) = FileBuf::open(&p, true).unwrap();
        let (heap, heap_mapped) = FileBuf::open(&p, false).unwrap();
        assert!(!heap_mapped);
        if mmap_supported() {
            assert!(was_mapped, "mmap syscall should succeed on this platform");
        }
        assert_eq!(mapped.as_f32(), &words[..]);
        assert_eq!(heap.as_f32(), &words[..]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_falls_back() {
        let p = tmp("empty", &[]);
        let (owner, was_mapped) = FileBuf::open(&p, true).unwrap();
        assert!(!was_mapped);
        assert!(owner.as_f32().is_empty());
        std::fs::remove_file(&p).ok();
    }
}
