//! Opening a store: validate the header and TOC, then hand out tensors
//! and packs that borrow the mapped pages.

use std::collections::HashMap;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use lancet_tensor::{BlockSpec, PackedTensor, Tensor};

use crate::format::{fnv1a, Cursor, Header, TocEntry, DEVICE_ALL, HEADER_LEN, KIND_PACK};
use crate::mapping::{mmap_enabled, FileBuf};
use crate::writer::StoredPacks;
use crate::StoreError;

/// Knobs for [`open_store_with`]. `None` fields read their environment
/// default (`LANCET_STORE_MMAP`, `LANCET_STORE_VERIFY`).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    /// Map the file instead of heap-loading it (zero-copy). `None`
    /// follows `LANCET_STORE_MMAP` (default on, where supported).
    pub mmap: Option<bool>,
    /// Verify the data-section checksum at open. Costs a full read of the
    /// weights — O(copy), exactly what mapping avoids — so the default
    /// (`LANCET_STORE_VERIFY`, off) only verifies header + TOC; flip it
    /// on for untrusted files.
    pub verify_data: Option<bool>,
}

/// A model loaded from a store file. Tensors and packs borrow the backing
/// buffer ([`StoredModel::mapped`] tells whether that buffer is mapped
/// pages — shared with every other process that opened the same store —
/// or a heap fallback copy).
pub struct StoredModel {
    /// Model name recorded at pack time.
    pub name: String,
    /// Device count the weights were canonicalized for.
    pub devices: usize,
    /// Per-device canonical weights, keyed by name. Replicated entries
    /// share one storage window across devices.
    pub weights: Vec<HashMap<String, Tensor>>,
    /// Per-device prepacked GEMM panels, keyed by name (empty maps when
    /// the store carries no packs).
    pub packs: StoredPacks,
    /// Whether the backing buffer is a genuine file mapping.
    pub mapped: bool,
    /// Store file size in bytes.
    pub bytes: u64,
}

impl std::fmt::Debug for StoredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredModel")
            .field("name", &self.name)
            .field("devices", &self.devices)
            .field("mapped", &self.mapped)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// [`open_store_with`] under environment-default options.
///
/// # Errors
///
/// See [`open_store_with`].
pub fn open_store(path: &Path) -> Result<StoredModel, StoreError> {
    open_store_with(path, OpenOptions::default())
}

/// Opens and validates a store file, returning tensors/packs that borrow
/// the backing buffer (mapped when possible: the zero-copy path).
///
/// Always verified: magic, version, endianness, section bounds, TOC
/// checksum, and every payload's bounds/alignment. The data checksum is
/// verified when [`OpenOptions::verify_data`] asks for it.
///
/// # Errors
///
/// Every corruption mode is a typed [`StoreError`]; no input bytes can
/// cause UB or a panic.
pub fn open_store_with(path: &Path, opts: OpenOptions) -> Result<StoredModel, StoreError> {
    // Header + TOC come from ordinary reads (they are small); only the
    // data section is served from the mapping.
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut head = [0u8; HEADER_LEN];
    read_fully(&mut file, &mut head, file_len)?;
    let header = Header::parse(&head, file_len)?;

    if header.toc_off != HEADER_LEN as u64 {
        return Err(StoreError::BadToc(format!(
            "TOC offset {} != header length {HEADER_LEN}",
            header.toc_off
        )));
    }
    let mut toc_bytes = vec![0u8; header.toc_len as usize];
    read_fully(&mut file, &mut toc_bytes, file_len)?;
    if fnv1a(&toc_bytes) != header.toc_checksum {
        return Err(StoreError::ChecksumMismatch { section: "toc" });
    }

    let mut cur = Cursor::new(&toc_bytes);
    let name = cur.string()?;
    let mut entries = Vec::with_capacity(header.entries as usize);
    for _ in 0..header.entries {
        entries.push(TocEntry::read(&mut cur)?);
    }
    if cur.remaining() != 0 {
        return Err(StoreError::BadToc(format!("{} trailing TOC bytes", cur.remaining())));
    }

    let data_end = header.data_off + header.data_len;
    for e in &entries {
        let bytes = e.payload_words.checked_mul(4).ok_or_else(|| {
            StoreError::BadToc(format!("entry `{}` word count overflows", e.name))
        })?;
        let end = e.payload_off.checked_add(bytes).ok_or_else(|| {
            StoreError::BadToc(format!("entry `{}` payload range overflows", e.name))
        })?;
        if e.payload_off < header.data_off || end > data_end {
            return Err(StoreError::BadToc(format!(
                "entry `{}` payload [{}, {end}) outside data section",
                e.name, e.payload_off
            )));
        }
        if e.payload_off % 4 != 0 {
            return Err(StoreError::BadToc(format!(
                "entry `{}` payload offset {} not word-aligned",
                e.name, e.payload_off
            )));
        }
        if e.device != DEVICE_ALL && e.device >= header.devices.max(1) {
            return Err(StoreError::BadToc(format!(
                "entry `{}` names device {} of {}",
                e.name, e.device, header.devices
            )));
        }
        let volume: u64 = e.dims.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d)).ok_or_else(
            || StoreError::BadToc(format!("entry `{}` shape volume overflows", e.name)),
        )?;
        if e.kind != KIND_PACK && volume != e.payload_words {
            return Err(StoreError::BadToc(format!(
                "entry `{}` shape volume {volume} != payload words {}",
                e.name, e.payload_words
            )));
        }
    }

    if opts.verify_data.unwrap_or_else(env_verify_data) {
        let mut data = vec![0u8; header.data_len as usize];
        read_at(&mut file, header.data_off, &mut data, file_len)?;
        if fnv1a(&data) != header.data_checksum {
            return Err(StoreError::ChecksumMismatch { section: "data" });
        }
    }
    drop(file);

    let want_mmap = opts.mmap.unwrap_or_else(mmap_enabled);
    let (owner, mapped) = FileBuf::open(path, want_mmap)?;
    // The owner exposes the whole file as words; a payload at byte
    // offset `o` starts at word `o / 4` (offsets are word-aligned).
    if (owner.as_f32().len() as u64) < data_end / 4 {
        return Err(StoreError::Truncated {
            needed: data_end,
            actual: owner.as_f32().len() as u64 * 4,
        });
    }

    let devices = header.devices as usize;
    let mut weights: Vec<HashMap<String, Tensor>> = vec![HashMap::new(); devices];
    let mut packs: StoredPacks = vec![HashMap::new(); devices];
    for e in &entries {
        let word_off = (e.payload_off / 4) as usize;
        let words = e.payload_words as usize;
        let dims: Vec<usize> = e.dims.iter().map(|&d| d as usize).collect();
        if e.kind == KIND_PACK {
            let m = e.pack.as_ref().ok_or_else(|| {
                StoreError::BadToc(format!("pack entry `{}` lacks pack metadata", e.name))
            })?;
            let spec = BlockSpec { mc: m.mc as usize, kc: m.kc as usize, nc: m.nc as usize };
            let pack = Arc::new(PackedTensor::from_shared_panels(
                Arc::clone(&owner),
                word_off,
                words,
                m.batch as usize,
                m.k as usize,
                m.n as usize,
                spec,
                dims,
                m.transposed,
            )?);
            for d in devices_of(e.device, devices) {
                packs[d].insert(e.name.clone(), Arc::clone(&pack));
            }
        } else {
            let tensor = Tensor::from_shared(dims, Arc::clone(&owner), word_off, words)?;
            for d in devices_of(e.device, devices) {
                // Clones share the window (refcount bump), preserving the
                // replicated-weight sharing the writer deduplicated.
                weights[d].insert(e.name.clone(), tensor.clone());
            }
        }
    }

    Ok(StoredModel { name, devices, weights, packs, mapped, bytes: file_len })
}

fn devices_of(device: u32, devices: usize) -> std::ops::Range<usize> {
    if device == DEVICE_ALL {
        0..devices
    } else {
        device as usize..device as usize + 1
    }
}

fn env_verify_data() -> bool {
    matches!(
        std::env::var("LANCET_STORE_VERIFY").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

fn read_fully(file: &mut File, buf: &mut [u8], file_len: u64) -> Result<(), StoreError> {
    file.read_exact(buf).map_err(|_| StoreError::Truncated {
        needed: buf.len() as u64,
        actual: file_len,
    })
}

fn read_at(file: &mut File, off: u64, buf: &mut [u8], file_len: u64) -> Result<(), StoreError> {
    use std::io::{Seek, SeekFrom};
    file.seek(SeekFrom::Start(off))?;
    file.read_exact(buf).map_err(|_| StoreError::Truncated {
        needed: off + buf.len() as u64,
        actual: file_len,
    })
}
