//! Routing-histogram collection for the expert-placement optimizer.
//!
//! The placement search in `lancet-cost` consumes an [`ExpertTraffic`]
//! histogram — per-layer expert loads plus inter-layer transition counts.
//! This module is the bridge from the MoE data plane: a
//! [`RoutingHistogram`] accumulates real [`Routing`] outcomes layer by
//! layer (tracking each token's kept expert so consecutive layers yield
//! transition counts), and [`RoutingHistogram::collect`] runs a whole
//! seeded [`Workload`] through the actual gate to produce the histogram
//! a training run would log.
//!
//! Determinism: `collect` routes `Workload::logits(tokens, experts,
//! seed)` with the layer index folded into the seed, so the same
//! `(workload, shape, seed)` always produces a bit-identical histogram —
//! the same contract `FaultPlan` and `ExpertTraffic::synthetic` follow.

use crate::{expert_capacity, route, Routing, Workload};
use lancet_cost::ExpertTraffic;
use lancet_ir::GateKind;

/// Accumulates per-layer routing outcomes into placement-ready counts.
///
/// Feed it one [`Routing`] per MoE layer in layer order via
/// [`RoutingHistogram::record`]; tokens must be in the same order across
/// layers (they are in a transformer — the residual stream preserves
/// positions between MoE blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingHistogram {
    layers: usize,
    experts: usize,
    next_layer: usize,
    traffic: ExpertTraffic,
    /// Previous layer's kept expert per token (−1 = fully dropped), used
    /// to accumulate inter-layer transitions.
    prev_expert: Vec<i32>,
}

impl RoutingHistogram {
    /// An empty collector for `layers` MoE layers of `experts` experts,
    /// with `bytes_per_token` payload bytes per routed token.
    pub fn new(layers: usize, experts: usize, bytes_per_token: u64) -> Self {
        RoutingHistogram {
            layers,
            experts,
            next_layer: 0,
            traffic: ExpertTraffic::new(layers, experts, bytes_per_token),
            prev_expert: Vec::new(),
        }
    }

    /// Layers recorded so far.
    pub fn layers_recorded(&self) -> usize {
        self.next_layer
    }

    /// Records the next layer's routing outcome.
    ///
    /// Every kept slot adds to that expert's load; each token's *first*
    /// kept slot defines its expert for transition counting (top-1
    /// approximation of where the token's activations travel).
    ///
    /// A **zero-token routing is a documented no-op**: nothing is
    /// recorded and the layer cursor does not advance. Decode-time
    /// serving routinely routes tiny batches (often one token per layer,
    /// sometimes none when every in-flight sequence finished), and an
    /// empty batch carries no placement signal — it must not panic or
    /// poison the per-layer token-count invariant.
    ///
    /// # Panics
    ///
    /// Panics if more than `layers` non-empty routings are recorded or if
    /// the token count disagrees with the previous layer's.
    pub fn record(&mut self, routing: &Routing) {
        let tokens = routing.tokens();
        if tokens == 0 {
            return;
        }
        assert!(self.next_layer < self.layers, "histogram already covers all layers");
        let layer = self.next_layer;
        if layer > 0 {
            assert_eq!(tokens, self.prev_expert.len(), "token count changed between layers");
        }
        let k = routing.k.max(1);
        let mut current = vec![-1i32; tokens];
        for (t, cur) in current.iter_mut().enumerate() {
            for j in 0..k {
                let e = routing.assign[t * k + j];
                if e >= 0 {
                    self.traffic.record_load(layer, e as usize, 1);
                    if *cur < 0 {
                        *cur = e;
                    }
                }
            }
            if layer > 0 {
                let (from, to) = (self.prev_expert[t], *cur);
                if from >= 0 && to >= 0 {
                    self.traffic.record_transition(layer - 1, from as usize, to as usize, 1);
                }
            }
        }
        self.prev_expert = current;
        self.next_layer += 1;
    }

    /// The accumulated histogram, ready for `optimize_placement`.
    pub fn traffic(&self) -> &ExpertTraffic {
        &self.traffic
    }

    /// Consumes the collector, returning the histogram.
    pub fn into_traffic(self) -> ExpertTraffic {
        self.traffic
    }

    /// Routes a seeded [`Workload`] through `layers` MoE layers of the
    /// real gate and collects the resulting histogram.
    ///
    /// Layer `l` routes `workload.logits(tokens, experts, seed + l / 2)`:
    /// consecutive layer *pairs* share gating logits, so tokens keep
    /// their expert across a pair boundary — the inter-layer affinity the
    /// placement optimizer exploits (arXiv:2401.08383 measures exactly
    /// this correlation in trained MoEs). Capacity is ample
    /// (`capacity_factor`-scaled), matching training-time collection.
    ///
    /// Deterministic: same arguments ⇒ bit-identical histogram.
    ///
    /// # Example
    ///
    /// ```
    /// use lancet_moe::{RoutingHistogram, Workload};
    ///
    /// let w = Workload::Zipf { exponent: 1.2 };
    /// let a = RoutingHistogram::collect(w, 4, 8, 256, 4096, 42).unwrap();
    /// let b = RoutingHistogram::collect(w, 4, 8, 256, 4096, 42).unwrap();
    /// assert_eq!(a.traffic(), b.traffic());
    /// assert!(a.traffic().imbalance(0) > 1.5); // skew survives routing
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MoeError`] from the underlying [`route`] call.
    pub fn collect(
        workload: Workload,
        layers: usize,
        experts: usize,
        tokens: usize,
        bytes_per_token: u64,
        seed: u64,
    ) -> crate::Result<Self> {
        let mut hist = RoutingHistogram::new(layers, experts, bytes_per_token);
        let capacity = expert_capacity(tokens, experts, 2.0);
        for l in 0..layers {
            let logits = workload.logits(tokens, experts, seed.wrapping_add((l / 2) as u64));
            let routing = route(GateKind::Switch, &logits, capacity, None)?;
            hist.record(&routing);
        }
        Ok(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_tensor::Tensor;

    #[test]
    fn record_accumulates_loads_and_transitions() {
        let mut h = RoutingHistogram::new(2, 2, 64);
        // Layer 0: tokens 0,1 → expert 0; token 2 → expert 1.
        let l0 = Tensor::from_vec(vec![3, 2], vec![5.0, 0.0, 5.0, 0.0, 0.0, 5.0]).unwrap();
        h.record(&route(GateKind::Switch, &l0, 8, None).unwrap());
        // Layer 1: all tokens → expert 1.
        let l1 = Tensor::from_vec(vec![3, 2], vec![0.0, 5.0, 0.0, 5.0, 0.0, 5.0]).unwrap();
        h.record(&route(GateKind::Switch, &l1, 8, None).unwrap());
        let t = h.traffic();
        assert_eq!(t.load(0, 0), 2);
        assert_eq!(t.load(0, 1), 1);
        assert_eq!(t.load(1, 1), 3);
        assert_eq!(t.transition(0, 0, 1), 2);
        assert_eq!(t.transition(0, 1, 1), 1);
        assert_eq!(t.transition(0, 0, 0), 0);
    }

    #[test]
    fn dropped_tokens_skip_transitions() {
        let mut h = RoutingHistogram::new(2, 2, 64);
        // Capacity 1: token 1 is dropped at layer 0.
        let l0 = Tensor::from_vec(vec![2, 2], vec![5.0, 0.0, 5.0, 0.0]).unwrap();
        h.record(&route(GateKind::Switch, &l0, 1, None).unwrap());
        let l1 = Tensor::from_vec(vec![2, 2], vec![5.0, 0.0, 5.0, 0.0]).unwrap();
        h.record(&route(GateKind::Switch, &l1, 2, None).unwrap());
        let t = h.traffic();
        assert_eq!(t.load(0, 0), 1);
        assert_eq!(t.load(1, 0), 2);
        // Only the kept token contributes a transition.
        assert_eq!(t.transition(0, 0, 0), 1);
    }

    #[test]
    fn collect_is_deterministic_and_skewed() {
        let w = Workload::Zipf { exponent: 1.2 };
        let a = RoutingHistogram::collect(w, 4, 8, 512, 4096, 7).unwrap();
        let b = RoutingHistogram::collect(w, 4, 8, 512, 4096, 7).unwrap();
        assert_eq!(a, b);
        let c = RoutingHistogram::collect(w, 4, 8, 512, 4096, 8).unwrap();
        assert_ne!(a.traffic(), c.traffic());
        assert!(a.traffic().imbalance(0) > 1.5);
        assert_eq!(a.layers_recorded(), 4);
    }

    #[test]
    fn zero_token_routing_is_a_noop() {
        let mut h = RoutingHistogram::new(2, 2, 64);
        let empty = Routing { k: 1, assign: Vec::new(), scale: Vec::new() };
        // Empty before anything: no layer consumed, nothing recorded.
        h.record(&empty);
        assert_eq!(h.layers_recorded(), 0);
        // A real layer still lands on layer 0.
        let l0 = Tensor::from_vec(vec![3, 2], vec![5.0, 0.0, 5.0, 0.0, 0.0, 5.0]).unwrap();
        h.record(&route(GateKind::Switch, &l0, 8, None).unwrap());
        assert_eq!(h.layers_recorded(), 1);
        let before = h.traffic().clone();
        // Empty mid-stream: histogram unchanged, cursor unchanged, and the
        // token-count invariant is not tripped by the 0-vs-3 mismatch.
        h.record(&empty);
        assert_eq!(h.layers_recorded(), 1);
        assert_eq!(h.traffic(), &before);
        // The next real layer continues where layer 0 left off.
        let l1 = Tensor::from_vec(vec![3, 2], vec![0.0, 5.0, 0.0, 5.0, 0.0, 5.0]).unwrap();
        h.record(&route(GateKind::Switch, &l1, 8, None).unwrap());
        assert_eq!(h.layers_recorded(), 2);
        assert_eq!(h.traffic().load(1, 1), 3);
        // Even a "full" histogram absorbs empties without panicking.
        h.record(&empty);
        assert_eq!(h.layers_recorded(), 2);
    }

    #[test]
    fn collect_has_inter_layer_affinity() {
        // Paired layer seeds keep tokens on their expert across the pair:
        // diagonal transition mass must dominate for layer 0 → 1.
        let w = Workload::Zipf { exponent: 1.2 };
        let h = RoutingHistogram::collect(w, 2, 8, 1024, 4096, 11).unwrap();
        let t = h.traffic();
        let diag: u64 = (0..8).map(|i| t.transition(0, i, i)).sum();
        let total: u64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| t.transition(0, i, j))
            .sum();
        assert!(total > 0);
        assert!(diag as f64 > 0.5 * total as f64, "diag {diag} of {total}");
    }
}
