//! Token-to-expert routing with expert capacity and token dropping.
//!
//! Routing is *slot-based*: every token owns `k` slots (k = 1 for Switch,
//! BPR, random and hash gates; k ≥ 1 for GShard-style top-k). Slot `j` of
//! token `t` lives at flat index `t·k + j`.

use crate::{CapacityState, MoeError, Result};
use lancet_ir::GateKind;
use lancet_tensor::Tensor;

/// The outcome of routing a sequence of tokens.
///
/// `assign[t·k + j]` is the target expert of token `t`'s `j`-th slot, or
/// `-1` when that slot was dropped (capacity overflow). `scale[t·k + j]`
/// is the combine weight applied to the expert output (0 for dropped
/// slots).
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Experts chosen per token.
    pub k: usize,
    /// Target expert per slot (−1 = dropped), length `tokens · k`.
    pub assign: Vec<i32>,
    /// Combine weight per slot (0 for dropped slots).
    pub scale: Vec<f32>,
}

impl Routing {
    /// Number of slots (`tokens · k`).
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True when no tokens were routed.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of tokens routed.
    pub fn tokens(&self) -> usize {
        self.assign.len() / self.k.max(1)
    }

    /// Number of dropped slots.
    pub fn num_dropped(&self) -> usize {
        self.assign.iter().filter(|&&e| e < 0).count()
    }

    /// Number of tokens whose *every* slot was dropped (the token gets a
    /// zero MoE output and passes through the residual only).
    pub fn fully_dropped_tokens(&self) -> usize {
        self.assign
            .chunks(self.k.max(1))
            .filter(|slots| slots.iter().all(|&e| e < 0))
            .count()
    }

    /// Concatenates per-chunk routings back into batch order.
    ///
    /// # Panics
    ///
    /// Panics if the chunks disagree on `k` or no chunks are given.
    pub fn concat(chunks: &[Routing]) -> Routing {
        let k = chunks.first().expect("at least one chunk").k;
        let mut assign = Vec::new();
        let mut scale = Vec::new();
        for c in chunks {
            assert_eq!(c.k, k, "chunks must agree on k");
            assign.extend_from_slice(&c.assign);
            scale.extend_from_slice(&c.scale);
        }
        Routing { k, assign, scale }
    }

    /// Tokens with at least one kept slot on `expert`, in token order.
    pub fn tokens_for(&self, expert: usize) -> Vec<usize> {
        let k = self.k.max(1);
        (0..self.tokens())
            .filter(|&t| (0..k).any(|j| self.assign[t * k + j] == expert as i32))
            .collect()
    }

    /// Kept slots on `expert` (count ≤ capacity by construction).
    pub fn slots_for(&self, expert: usize) -> usize {
        self.assign.iter().filter(|&&e| e == expert as i32).count()
    }
}

fn softmax_scores(logits: &Tensor) -> Result<(usize, usize, Tensor)> {
    if logits.rank() != 2 {
        return Err(MoeError::BadLogits { shape: logits.shape().to_vec() });
    }
    let (t, e) = (logits.shape()[0], logits.shape()[1]);
    if e == 0 {
        return Err(MoeError::BadLogits { shape: logits.shape().to_vec() });
    }
    Ok((t, e, logits.softmax_last()))
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Indices of the `k` largest entries, descending (ties by lower index).
fn top_k(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite scores").then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Deterministic, position-independent hash of a token's gating scores.
///
/// Random/hash gates must assign experts from per-token information only
/// (not batch position), otherwise micro-batching would change routing.
fn token_hash(row: &[f32], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &v in row {
        h ^= u64::from(v.to_bits());
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Routes tokens to experts under the given gate.
///
/// `logits` is `(T, E)`: the pre-softmax gating scores of each token.
/// `capacity` is the per-expert capacity `C` of the *full* batch. When
/// `state` is provided (capacity-passing partitioned gating, paper
/// Fig. 5c), routing consumes from the shared state so that consecutive
/// chunks reproduce the unpartitioned drop set.
///
/// For [`GateKind::TopK`] gates, each token claims up to `k` slots on its
/// `k` best experts (token-major, best-expert-first contention order) and
/// combine weights are normalized over the *selected* experts (GShard
/// convention); dropped slots lose their share.
///
/// # Errors
///
/// * [`MoeError::NotPartitionable`] if `state` is provided for a gate that
///   needs whole-batch information (batch-prioritized, expert-choice).
/// * [`MoeError::BadLogits`] on malformed logits.
///
/// [`GateKind::ExpertChoice`] uses the inverted selection (experts pick
/// their top-`capacity` tokens); its routing uses `k = E` slots per token
/// and never drops an expert slot.
///
/// # Example
///
/// ```
/// use lancet_ir::GateKind;
/// use lancet_moe::route;
/// use lancet_tensor::Tensor;
///
/// // Two tokens, three experts; token 0 prefers expert 1.
/// let logits = Tensor::from_vec(vec![2, 3], vec![0.0, 4.0, 0.0, 3.0, 0.0, 0.0])?;
/// let routing = route(GateKind::Switch, &logits, 8, None)?;
/// assert_eq!(routing.assign, vec![1, 0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn route(
    kind: GateKind,
    logits: &Tensor,
    capacity: usize,
    state: Option<&mut CapacityState>,
) -> Result<Routing> {
    let (t, e, scores) = softmax_scores(logits)?;
    let k = kind.k().min(e);
    let mut local_state = CapacityState::new(e);
    let state = match state {
        Some(s) => {
            if !kind.partitionable_before_moe() {
                return Err(MoeError::NotPartitionable(kind.name()));
            }
            if s.experts() != e {
                return Err(MoeError::SizeMismatch {
                    what: "capacity state",
                    expected: e,
                    actual: s.experts(),
                });
            }
            s
        }
        None => &mut local_state,
    };
    if matches!(kind, GateKind::ExpertChoice) {
        // Expert-choice routing inverts the selection: every expert picks
        // its top-`capacity` tokens over the whole batch (Zhou et al.).
        // A token may be picked by several experts (or none); slot layout
        // is k = E with slot e of token t used iff expert e chose t.
        // There is no token dropping — experts always fill exactly
        // min(capacity, T) slots.
        let k = e;
        let mut assign = vec![-1i32; t * k];
        let mut scale = vec![0.0f32; t * k];
        for expert in 0..e {
            let mut by_score: Vec<usize> = (0..t).collect();
            by_score.sort_by(|&a, &b| {
                let (pa, pb) = (scores.data()[a * e + expert], scores.data()[b * e + expert]);
                pb.partial_cmp(&pa).expect("finite scores").then(a.cmp(&b))
            });
            for &token in by_score.iter().take(capacity.min(t)) {
                assign[token * k + expert] = expert as i32;
                scale[token * k + expert] = scores.data()[token * e + expert];
            }
        }
        return Ok(Routing { k, assign, scale });
    }

    let mut assign = vec![-1i32; t * k];
    let mut scale = vec![0.0f32; t * k];
    // Per-token expert choices, ranked.
    let choices = |row: &[f32]| -> Vec<usize> {
        match kind {
            GateKind::Switch | GateKind::BatchPrioritized => vec![argmax(row)],
            GateKind::TopK { .. } => top_k(row, k),
            GateKind::Random => vec![(token_hash(row, 0x5eed) % e as u64) as usize],
            GateKind::Hash => vec![(token_hash(row, 0) % e as u64) as usize],
            GateKind::ExpertChoice => unreachable!("handled above"),
        }
    };

    // Order in which tokens contend for capacity: token order for
    // first-come gates, importance order for batch-prioritized routing.
    let order: Vec<usize> = match kind {
        GateKind::BatchPrioritized => {
            let mut idx: Vec<usize> = (0..t).collect();
            let importance: Vec<f32> = (0..t)
                .map(|i| {
                    let row = &scores.data()[i * e..(i + 1) * e];
                    row.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
                })
                .collect();
            // Stable sort: ties resolved by token order, keeping the
            // routing deterministic.
            idx.sort_by(|&a, &b| importance[b].partial_cmp(&importance[a]).expect("finite scores"));
            idx
        }
        _ => (0..t).collect(),
    };

    for &token in &order {
        let row = &scores.data()[token * e..(token + 1) * e];
        let chosen = choices(row);
        // GShard normalization: weights over the selected experts sum to 1
        // (before drops).
        let norm: f32 = if kind.normalizes_scales() {
            chosen.iter().map(|&c| row[c]).sum::<f32>().max(1e-12)
        } else {
            1.0
        };
        for (j, &expert) in chosen.iter().enumerate() {
            if state.try_consume(expert, capacity).is_some() {
                assign[token * k + j] = expert as i32;
                scale[token * k + j] = row[expert] / norm;
            }
        }
    }
    Ok(Routing { k, assign, scale })
}

/// Direct micro-batching *without* capacity passing (paper Fig. 5b):
/// each of the `parts` chunks is routed independently with proportionally
/// reduced capacity `⌈C/parts⌉`. Exists to demonstrate the extra token
/// dropping that Lancet's capacity-passing scheme avoids.
///
/// # Errors
///
/// Same conditions as [`route`], plus the gate must be partitionable.
pub fn route_direct_microbatch(
    kind: GateKind,
    logits: &Tensor,
    capacity: usize,
    parts: usize,
) -> Result<Routing> {
    if !kind.partitionable_before_moe() {
        return Err(MoeError::NotPartitionable(kind.name()));
    }
    let t = logits.shape()[0];
    let parts = parts.clamp(1, t.max(1));
    let chunk_cap = capacity.div_ceil(parts);
    let chunks = logits.split_axis(0, parts)?;
    let mut routed = Vec::with_capacity(parts);
    for chunk in &chunks {
        routed.push(route(kind, chunk, chunk_cap, None)?);
    }
    Ok(Routing::concat(&routed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_tensor::TensorRng;

    fn logits(t: usize, e: usize, seed: u64) -> Tensor {
        TensorRng::seed(seed).uniform(vec![t, e], -2.0, 2.0)
    }

    #[test]
    fn switch_routes_to_argmax_when_capacity_ample() {
        let l = Tensor::from_vec(vec![2, 3], vec![0.1, 5.0, 0.2, 3.0, 0.0, 0.0]).unwrap();
        let r = route(GateKind::Switch, &l, 10, None).unwrap();
        assert_eq!(r.assign, vec![1, 0]);
        assert!(r.scale[0] > 0.9);
        assert_eq!(r.num_dropped(), 0);
        assert_eq!(r.tokens(), 2);
    }

    #[test]
    fn switch_drops_first_come_on_overflow() {
        // All four tokens want expert 0; capacity 2 keeps the first two.
        let l = Tensor::from_vec(vec![4, 2], vec![5.0, 0.0, 5.0, 0.0, 5.0, 0.0, 5.0, 0.0]).unwrap();
        let r = route(GateKind::Switch, &l, 2, None).unwrap();
        assert_eq!(r.assign, vec![0, 0, -1, -1]);
        assert_eq!(r.scale[2], 0.0);
        assert_eq!(r.num_dropped(), 2);
        assert_eq!(r.fully_dropped_tokens(), 2);
    }

    #[test]
    fn topk_selects_best_two_with_normalized_scales() {
        let l = Tensor::from_vec(vec![1, 4], vec![3.0, 1.0, 2.0, -1.0]).unwrap();
        let r = route(GateKind::TopK { k: 2 }, &l, 10, None).unwrap();
        assert_eq!(r.k, 2);
        assert_eq!(r.assign, vec![0, 2]); // experts 0 then 2 (descending score)
        // Normalized over the chosen pair.
        assert!((r.scale[0] + r.scale[1] - 1.0).abs() < 1e-6);
        assert!(r.scale[0] > r.scale[1]);
    }

    #[test]
    fn topk_partial_drop_keeps_other_slot() {
        // Two tokens, both choosing experts (0, 1); expert 0 capacity 1.
        let l = Tensor::from_vec(vec![2, 2], vec![2.0, 1.0, 2.0, 1.0]).unwrap();
        let r = route(GateKind::TopK { k: 2 }, &l, 1, None).unwrap();
        // Token 0 gets both slots; token 1 loses both (capacity 1 each).
        assert_eq!(r.assign, vec![0, 1, -1, -1]);
        assert_eq!(r.fully_dropped_tokens(), 1);
    }

    #[test]
    fn topk_capacity_never_exceeded() {
        let l = logits(64, 4, 3);
        let r = route(GateKind::TopK { k: 2 }, &l, 10, None).unwrap();
        for e in 0..4 {
            assert!(r.slots_for(e) <= 10);
        }
    }

    #[test]
    fn topk_capacity_passing_equals_unpartitioned() {
        for seed in 0..5 {
            let l = logits(24, 4, seed);
            let cap = 9;
            let full = route(GateKind::TopK { k: 2 }, &l, cap, None).unwrap();
            for parts in [2usize, 3] {
                let mut state = CapacityState::new(4);
                let chunks: Vec<Routing> = l
                    .split_axis(0, parts)
                    .unwrap()
                    .iter()
                    .map(|c| route(GateKind::TopK { k: 2 }, c, cap, Some(&mut state)).unwrap())
                    .collect();
                assert_eq!(Routing::concat(&chunks), full, "seed {seed} parts {parts}");
            }
        }
    }

    #[test]
    fn bpr_drops_lowest_importance() {
        // All tokens want expert 0; token 2 has the weakest preference and
        // must be dropped despite arriving earlier than token 3.
        let l = Tensor::from_vec(
            vec![4, 2],
            vec![5.0, 0.0, 4.0, 0.0, 1.0, 0.0, 3.0, 0.0],
        )
        .unwrap();
        let r = route(GateKind::BatchPrioritized, &l, 3, None).unwrap();
        assert_eq!(r.assign, vec![0, 0, -1, 0]);
    }

    #[test]
    fn bpr_rejects_partial_batch() {
        let l = logits(4, 2, 0);
        let mut s = CapacityState::new(2);
        assert!(matches!(
            route(GateKind::BatchPrioritized, &l, 2, Some(&mut s)),
            Err(MoeError::NotPartitionable(_))
        ));
    }

    #[test]
    fn expert_choice_fills_every_expert_exactly() {
        let l = logits(12, 3, 4);
        let r = route(GateKind::ExpertChoice, &l, 4, None).unwrap();
        assert_eq!(r.k, 3);
        for e in 0..3 {
            assert_eq!(r.slots_for(e), 4, "expert {e} must pick exactly C tokens");
        }
        // No token dropping concept: total kept slots = E·C.
        assert_eq!(r.len() - r.num_dropped(), 12);
    }

    #[test]
    fn expert_choice_picks_highest_scoring_tokens() {
        // Token 0 overwhelmingly prefers expert 0; with capacity 1 it must
        // be expert 0's single pick.
        let l = Tensor::from_vec(vec![3, 2], vec![9.0, 0.0, 1.0, 1.0, 0.0, 2.0]).unwrap();
        let r = route(GateKind::ExpertChoice, &l, 1, None).unwrap();
        assert_eq!(r.assign[0 * 2 + 0], 0); // expert 0 chose token 0
        assert_eq!(r.assign[2 * 2 + 1], 1); // expert 1 chose token 2
    }

    #[test]
    fn expert_choice_rejects_partial_batch() {
        let l = logits(4, 2, 0);
        let mut s = CapacityState::new(2);
        assert!(matches!(
            route(GateKind::ExpertChoice, &l, 2, Some(&mut s)),
            Err(MoeError::NotPartitionable(_))
        ));
    }

    #[test]
    fn capacity_passing_equals_unpartitioned() {
        for seed in 0..5 {
            let l = logits(24, 4, seed);
            let cap = 4; // tight: forces drops
            let full = route(GateKind::Switch, &l, cap, None).unwrap();
            for parts in [2usize, 3, 4] {
                let mut state = CapacityState::new(4);
                let chunks = l.split_axis(0, parts).unwrap();
                let routed: Vec<Routing> = chunks
                    .iter()
                    .map(|c| route(GateKind::Switch, c, cap, Some(&mut state)).unwrap())
                    .collect();
                assert_eq!(Routing::concat(&routed), full, "seed {seed} parts {parts}");
            }
        }
    }

    #[test]
    fn direct_microbatch_can_drop_more() {
        // Tokens concentrated on one expert early in the batch: direct
        // micro-batching halves the first chunk's capacity and drops extra
        // tokens (the paper's Fig. 5b scenario).
        let mut vals = Vec::new();
        for t in 0..8 {
            if t < 6 {
                vals.extend_from_slice(&[5.0, 0.0]);
            } else {
                vals.extend_from_slice(&[0.0, 5.0]);
            }
        }
        let l = Tensor::from_vec(vec![8, 2], vals).unwrap();
        let full = route(GateKind::Switch, &l, 6, None).unwrap();
        assert_eq!(full.num_dropped(), 0);
        let direct = route_direct_microbatch(GateKind::Switch, &l, 6, 2).unwrap();
        assert!(direct.num_dropped() > 0, "direct micro-batching should drop extra tokens");
    }

    #[test]
    fn random_and_hash_are_partition_invariant() {
        for kind in [GateKind::Random, GateKind::Hash] {
            let l = logits(16, 4, 9);
            let full = route(kind, &l, 100, None).unwrap();
            let mut state = CapacityState::new(4);
            let chunks = l.split_axis(0, 4).unwrap();
            let routed: Vec<Routing> = chunks
                .iter()
                .map(|c| route(kind, c, 100, Some(&mut state)).unwrap())
                .collect();
            assert_eq!(Routing::concat(&routed), full, "{kind:?}");
        }
    }

    #[test]
    fn tokens_for_lists_kept_tokens() {
        let l = Tensor::from_vec(vec![3, 2], vec![5.0, 0.0, 0.0, 5.0, 5.0, 0.0]).unwrap();
        let r = route(GateKind::Switch, &l, 10, None).unwrap();
        assert_eq!(r.tokens_for(0), vec![0, 2]);
        assert_eq!(r.tokens_for(1), vec![1]);
    }

    #[test]
    fn bad_logits_rejected() {
        let l = Tensor::zeros(vec![4]);
        assert!(matches!(
            route(GateKind::Switch, &l, 2, None),
            Err(MoeError::BadLogits { .. })
        ));
    }

    #[test]
    fn k_clamped_to_expert_count() {
        let l = logits(4, 2, 1);
        let r = route(GateKind::TopK { k: 5 }, &l, 10, None).unwrap();
        assert_eq!(r.k, 2);
    }
}
