//! Expert capacity computation and the capacity-passing state.

/// The per-expert capacity `C` for `tokens` tokens routed to `experts`
/// experts with the given capacity factor (GShard/Switch convention).
///
/// # Example
///
/// ```
/// // 512 tokens over 8 experts at factor 1.25 → ⌈80⌉ slots per expert.
/// assert_eq!(lancet_moe::expert_capacity(512, 8, 1.25), 80);
/// // Factor 1.0 with uneven division rounds up.
/// assert_eq!(lancet_moe::expert_capacity(10, 4, 1.0), 3);
/// ```
///
/// # Panics
///
/// Panics if `experts == 0` or the factor is not positive.
pub fn expert_capacity(tokens: usize, experts: usize, capacity_factor: f64) -> usize {
    assert!(experts > 0, "experts must be positive");
    assert!(capacity_factor > 0.0, "capacity factor must be positive");
    ((capacity_factor * tokens as f64) / experts as f64).ceil() as usize
}

/// Capacity slots already consumed per expert by earlier micro-batches.
///
/// This is the state the paper's "special gating operators" pass between
/// partitions (Fig. 5c) so that partitioned gating drops exactly the
/// tokens the unpartitioned gate would drop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CapacityState {
    used: Vec<u32>,
}

impl CapacityState {
    /// Fresh state for `experts` experts (nothing consumed yet).
    pub fn new(experts: usize) -> Self {
        CapacityState { used: vec![0; experts] }
    }

    /// Restores a state from per-expert consumed counts.
    pub fn from_used(used: Vec<u32>) -> Self {
        CapacityState { used }
    }

    /// Slots consumed so far for each expert.
    pub fn used(&self) -> &[u32] {
        &self.used
    }

    /// Number of experts tracked.
    pub fn experts(&self) -> usize {
        self.used.len()
    }

    /// Remaining capacity of `expert` under total capacity `cap`.
    pub fn remaining(&self, expert: usize, cap: usize) -> usize {
        cap.saturating_sub(self.used[expert] as usize)
    }

    /// Attempts to consume one slot of `expert` under total capacity
    /// `cap`; returns the slot index if one was available.
    pub fn try_consume(&mut self, expert: usize, cap: usize) -> Option<usize> {
        let u = self.used[expert] as usize;
        if u < cap {
            self.used[expert] += 1;
            Some(u)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(expert_capacity(100, 8, 1.0), 13);
        assert_eq!(expert_capacity(64, 8, 1.0), 8);
        assert_eq!(expert_capacity(64, 8, 2.0), 16);
    }

    #[test]
    #[should_panic(expected = "experts must be positive")]
    fn zero_experts_panics() {
        expert_capacity(10, 0, 1.0);
    }

    #[test]
    fn consume_until_full() {
        let mut s = CapacityState::new(2);
        assert_eq!(s.try_consume(0, 2), Some(0));
        assert_eq!(s.try_consume(0, 2), Some(1));
        assert_eq!(s.try_consume(0, 2), None);
        assert_eq!(s.remaining(0, 2), 0);
        assert_eq!(s.remaining(1, 2), 2);
        assert_eq!(s.used(), &[2, 0]);
    }

    #[test]
    fn from_used_roundtrip() {
        let s = CapacityState::from_used(vec![3, 1]);
        assert_eq!(s.remaining(0, 5), 2);
        assert_eq!(s.experts(), 2);
    }
}
