//! Mixture-of-Experts data plane for the Lancet reproduction.
//!
//! Everything in this crate operates on *actual data*: token routing with
//! expert capacity and token dropping, dispatch/gather between token order
//! and expert buffers, and the two-phase irregular all-to-all of paper
//! Fig. 10. It is the ground truth against which the compiler passes'
//! mathematical-equivalence claims are tested.
//!
//! The centerpiece is **capacity-passing partitioned gating** (paper
//! Fig. 5c): [`route`] accepts an optional [`CapacityState`] so that a
//! batch split into micro-batches drops *exactly* the tokens the
//! unpartitioned gate would drop — unlike direct micro-batching
//! (paper Fig. 5b), which this crate also implements for comparison.
//!
//! # Example
//!
//! ```
//! use lancet_moe::{expert_capacity, route, CapacityState, Routing};
//! use lancet_ir::GateKind;
//! use lancet_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed(0);
//! let logits = rng.uniform(vec![16, 4], -1.0, 1.0); // 16 tokens, 4 experts
//! let cap = expert_capacity(16, 4, 1.25);
//!
//! // Unpartitioned routing …
//! let full = route(GateKind::Switch, &logits, cap, None)?;
//!
//! // … equals chunked routing with capacity passing.
//! let mut state = CapacityState::new(4);
//! let first = route(GateKind::Switch, &logits.slice_axis(0, 0, 8)?, cap, Some(&mut state))?;
//! let second = route(GateKind::Switch, &logits.slice_axis(0, 8, 16)?, cap, Some(&mut state))?;
//! assert_eq!(full, Routing::concat(&[first, second]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod alltoall;
mod capacity;
mod dispatch;
mod error;
mod histogram;
mod routing;
mod workload;

pub use alltoall::{
    all_reduce_sum, all_to_all_hierarchical, all_to_all_irregular, all_to_all_uniform,
    HierarchicalStats, IrregularStats,
};
pub use capacity::{expert_capacity, CapacityState};
pub use dispatch::{
    dispatch_dense, dispatch_irregular, gather_dense, gather_irregular, DispatchedChunk,
};
pub use error::MoeError;
pub use histogram::RoutingHistogram;
pub use routing::{route, route_direct_microbatch, Routing};
pub use workload::Workload;

/// Result alias for fallible MoE data-plane operations.
pub type Result<T> = std::result::Result<T, MoeError>;
