//! Synthetic gating-score workloads.
//!
//! The paper trains on WikiText; what matters for Lancet is the
//! *distribution* of tokens over experts — it drives irregular all-to-all
//! sizes, drop counts, and load imbalance. These generators produce
//! gating-logit tensors with controllable structure, substituting for
//! real data (DESIGN.md §3).

use lancet_tensor::{Tensor, TensorRng};

/// Shape of the token→expert preference distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Every expert equally likely (balanced routing).
    Uniform,
    /// Expert popularity follows a Zipf law with the given exponent —
    /// heavy-tailed imbalance, the regime where capacity drops happen.
    Zipf {
        /// Skew exponent (0 = uniform, 1 ≈ natural-language-like).
        exponent: f64,
    },
    /// Consecutive tokens prefer the same expert (topic clustering);
    /// the whole batch is balanced but any contiguous micro-batch is
    /// skewed — the adversarial case for direct micro-batching
    /// (paper Fig. 5b).
    Clustered,
    /// A fraction of tokens all prefer one hot expert.
    HotExpert {
        /// Fraction of tokens pinned to expert 0, in `[0, 1]`.
        fraction: f64,
    },
}

impl Workload {
    /// Generates `(tokens, experts)` gating logits for this workload.
    ///
    /// The preferred expert of each token receives a logit boost of ~2.0
    /// over baseline noise, making routing decisive but not degenerate.
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0` or `experts == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use lancet_moe::Workload;
    ///
    /// let logits = Workload::Zipf { exponent: 1.2 }.logits(256, 8, 42);
    /// assert_eq!(logits.shape(), &[256, 8]);
    /// // A skewed workload overloads its head expert.
    /// assert!(Workload::Zipf { exponent: 1.2 }.imbalance(256, 8, 42) > 1.5);
    /// ```
    pub fn logits(self, tokens: usize, experts: usize, seed: u64) -> Tensor {
        assert!(tokens > 0 && experts > 0, "need tokens and experts");
        let mut rng = TensorRng::seed(seed);
        let mut logits = rng.uniform(vec![tokens, experts], -1.0, 1.0);
        let boost = 2.0f32;
        match self {
            Workload::Uniform => {
                for t in 0..tokens {
                    let e = rng.below(experts);
                    logits.data_mut()[t * experts + e] += boost;
                }
            }
            Workload::Zipf { exponent } => {
                // Inverse-CDF sampling over Zipf weights.
                let weights: Vec<f64> =
                    (1..=experts).map(|r| 1.0 / (r as f64).powf(exponent)).collect();
                let total: f64 = weights.iter().sum();
                for t in 0..tokens {
                    let mut u = rng.sample() as f64 * total;
                    let mut e = 0;
                    for (i, w) in weights.iter().enumerate() {
                        if u < *w {
                            e = i;
                            break;
                        }
                        u -= w;
                        e = i;
                    }
                    logits.data_mut()[t * experts + e] += boost;
                }
            }
            Workload::Clustered => {
                for t in 0..tokens {
                    let e = t * experts / tokens;
                    logits.data_mut()[t * experts + e] += boost;
                }
            }
            Workload::HotExpert { fraction } => {
                let hot = (tokens as f64 * fraction.clamp(0.0, 1.0)) as usize;
                for t in 0..tokens {
                    let e = if t < hot { 0 } else { rng.below(experts) };
                    logits.data_mut()[t * experts + e] += boost;
                }
            }
        }
        logits
    }

    /// Expected per-expert load imbalance of this workload: the ratio of
    /// the busiest expert's token share to the balanced share `1/E`,
    /// measured by routing a sample.
    pub fn imbalance(self, tokens: usize, experts: usize, seed: u64) -> f64 {
        let logits = self.logits(tokens, experts, seed);
        let routing = crate::route(lancet_ir::GateKind::Switch, &logits, tokens, None)
            .expect("ample capacity");
        let max_load = (0..experts).map(|e| routing.slots_for(e)).max().unwrap_or(0);
        max_load as f64 * experts as f64 / tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expert_capacity, route, route_direct_microbatch};
    use lancet_ir::GateKind;

    #[test]
    fn uniform_is_nearly_balanced() {
        let imb = Workload::Uniform.imbalance(4096, 8, 1);
        assert!(imb < 1.3, "uniform imbalance {imb}");
    }

    #[test]
    fn zipf_is_skewed_and_monotone_in_exponent() {
        let mild = Workload::Zipf { exponent: 0.5 }.imbalance(4096, 8, 2);
        let strong = Workload::Zipf { exponent: 1.5 }.imbalance(4096, 8, 2);
        assert!(strong > mild, "{strong} !> {mild}");
        assert!(strong > 2.0, "strong zipf should overload the head expert");
    }

    #[test]
    fn hot_expert_concentrates() {
        let imb = Workload::HotExpert { fraction: 0.5 }.imbalance(1024, 8, 3);
        assert!(imb >= 4.0, "half the tokens on one of 8 experts → ≥4x share");
    }

    #[test]
    fn clustered_is_globally_balanced_but_locally_skewed() {
        let (tokens, experts) = (512, 8);
        let logits = Workload::Clustered.logits(tokens, experts, 4);
        let cap = expert_capacity(tokens, experts, 1.25);
        // Whole batch fits…
        let full = route(GateKind::Switch, &logits, cap, None).unwrap();
        assert_eq!(full.num_dropped(), 0);
        // …but direct micro-batching overflows chunk capacity.
        let direct = route_direct_microbatch(GateKind::Switch, &logits, cap, 4).unwrap();
        assert!(direct.num_dropped() > 100, "{}", direct.num_dropped());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::Zipf { exponent: 1.0 }.logits(64, 4, 9);
        let b = Workload::Zipf { exponent: 1.0 }.logits(64, 4, 9);
        assert_eq!(a, b);
        let c = Workload::Zipf { exponent: 1.0 }.logits(64, 4, 10);
        assert_ne!(a, c);
    }
}
