//! Token dispatch to expert buffers and gather back to token order.
//!
//! Large dispatch/gather calls chunk over the shared tensor thread pool:
//! dispatch writes disjoint `(expert, position)` rows and gather writes
//! disjoint token rows (accumulating each token's slots in ascending slot
//! order), so results are bit-identical for any worker count.

use crate::{MoeError, Result, Routing};
use lancet_tensor::pool::{par_ranges, SharedSliceMut};
use lancet_tensor::Tensor;

/// Below this many moved elements the row copies run inline; pool
/// scheduling overhead would dominate.
const PAR_MIN_ELEMS: usize = 32 * 1024;

/// Per-expert buffer position of every kept slot, assigned first-come in
/// slot order (−1 for dropped slots). Dispatch and gather both derive
/// positions from the routing, so they always agree.
fn slots(routing: &Routing, experts: usize) -> Vec<i32> {
    let mut next = vec![0i32; experts];
    routing
        .assign
        .iter()
        .map(|&e| {
            if e < 0 {
                -1
            } else {
                let s = next[e as usize];
                next[e as usize] += 1;
                s
            }
        })
        .collect()
}

fn check_tokens(x: &Tensor, routing: &Routing) -> Result<(usize, usize)> {
    if x.rank() != 2 {
        return Err(MoeError::SizeMismatch { what: "token tensor rank", expected: 2, actual: x.rank() });
    }
    let (t, h) = (x.shape()[0], x.shape()[1]);
    if routing.len() != t * routing.k.max(1) {
        return Err(MoeError::SizeMismatch {
            what: "routing length",
            expected: t * routing.k.max(1),
            actual: routing.len(),
        });
    }
    Ok((t, h))
}

/// Scatters tokens `x (T,H)` into the per-expert send buffer `(E,C,H)`,
/// zero-padded to capacity. A token with `k > 1` kept slots is replicated
/// to each of its experts. Kept slots occupy buffer rows first-come in
/// slot order.
///
/// # Errors
///
/// Returns [`MoeError::SizeMismatch`] when routing and tokens disagree.
///
/// # Panics
///
/// Panics if a kept slot's buffer position exceeds `capacity` — routing
/// must have been produced with the same capacity.
///
/// # Example
///
/// ```
/// use lancet_moe::{dispatch_dense, gather_dense, Routing};
/// use lancet_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let routing = Routing { k: 1, assign: vec![1, 0], scale: vec![1.0, 0.5] };
/// let buf = dispatch_dense(&x, &routing, 2, 1)?;          // (E=2, C=1, H=2)
/// assert_eq!(buf.data(), &[3.0, 4.0, 1.0, 2.0]);
/// let y = gather_dense(&buf, &routing, 2, 1)?;            // combine-weighted
/// assert_eq!(y.data(), &[1.0, 2.0, 1.5, 2.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn dispatch_dense(x: &Tensor, routing: &Routing, experts: usize, capacity: usize) -> Result<Tensor> {
    let (_t, h) = check_tokens(x, routing)?;
    let k = routing.k.max(1);
    let slot = slots(routing, experts);
    // Validate before fanning out; a panic must not unwind a pool worker.
    for (&e, &s) in routing.assign.iter().zip(&slot) {
        if e >= 0 {
            assert!((s as usize) < capacity, "slot exceeds capacity; routing/capacity mismatch");
        }
    }
    let mut buf = Tensor::zeros(vec![experts, capacity, h]);
    let xd = x.data();
    let view = SharedSliceMut::new(buf.data_mut());
    let tasks = if routing.assign.len() * h >= PAR_MIN_ELEMS { 0 } else { 1 };
    par_ranges(routing.assign.len(), tasks, |slot_range| {
        for idx in slot_range {
            let e = routing.assign[idx];
            if e < 0 {
                continue;
            }
            let token = idx / k;
            let dst = (e as usize * capacity + slot[idx] as usize) * h;
            // SAFETY: every kept slot owns a unique (expert, position) row.
            unsafe { view.range_mut(dst..dst + h) }
                .copy_from_slice(&xd[token * h..(token + 1) * h]);
        }
    });
    Ok(buf)
}

/// Restores the expert output buffer `(E,C,H)` to token order `(T,H)`,
/// summing each token's `k` expert outputs weighted by the combine
/// weights; fully dropped tokens produce zero rows.
///
/// # Errors
///
/// Returns [`MoeError::SizeMismatch`] on inconsistent shapes.
pub fn gather_dense(buf: &Tensor, routing: &Routing, experts: usize, capacity: usize) -> Result<Tensor> {
    if buf.rank() != 3 || buf.shape()[0] != experts || buf.shape()[1] != capacity {
        return Err(MoeError::SizeMismatch {
            what: "expert buffer",
            expected: experts * capacity,
            actual: buf.shape().iter().take(2).product(),
        });
    }
    let h = buf.shape()[2];
    let k = routing.k.max(1);
    let t = routing.tokens();
    let slot = slots(routing, experts);
    let mut y = Tensor::zeros(vec![t, h]);
    let bd = buf.data();
    let view = SharedSliceMut::new(y.data_mut());
    let tasks = if routing.len() * h >= PAR_MIN_ELEMS { 0 } else { 1 };
    par_ranges(t, tasks, |token_range| {
        // SAFETY: each task owns a contiguous block of token rows.
        let rows = unsafe { view.range_mut(token_range.start * h..token_range.end * h) };
        for token in token_range.clone() {
            let dst = (token - token_range.start) * h;
            // Slots of one token are consumed in ascending order — the
            // same accumulation order as the sequential gather.
            let base = token * k;
            for ((&e, &s), &w) in routing.assign[base..base + k]
                .iter()
                .zip(&slot[base..base + k])
                .zip(&routing.scale[base..base + k])
            {
                if e < 0 {
                    continue;
                }
                let src = (e as usize * capacity + s as usize) * h;
                for i in 0..h {
                    rows[dst + i] += w * bd[src + i];
                }
            }
        }
    });
    Ok(y)
}

/// A micro-batch's densely packed expert buffer plus actual per-expert
/// slot counts — the payload of the irregular all-to-all (paper Fig. 5c).
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchedChunk {
    /// `(E, C, H)` buffer; only the first `counts[e]` rows of expert `e`
    /// are valid.
    pub buf: Tensor,
    /// Number of valid rows per expert.
    pub counts: Vec<u32>,
}

/// Packs a micro-batch's kept slots densely per expert (buffer positions
/// start at 0 for every chunk), reporting actual counts for the irregular
/// all-to-all.
///
/// # Errors
///
/// Returns [`MoeError::SizeMismatch`] when routing and tokens disagree.
pub fn dispatch_irregular(
    x: &Tensor,
    routing: &Routing,
    experts: usize,
    capacity: usize,
) -> Result<DispatchedChunk> {
    let buf = dispatch_dense(x, routing, experts, capacity)?;
    let mut counts = vec![0u32; experts];
    for &e in &routing.assign {
        if e >= 0 {
            counts[e as usize] += 1;
        }
    }
    Ok(DispatchedChunk { buf, counts })
}

/// Gathers a micro-batch's expert outputs back to chunk token order.
///
/// # Errors
///
/// Returns [`MoeError::SizeMismatch`] on inconsistent shapes.
pub fn gather_irregular(
    chunk_buf: &Tensor,
    routing: &Routing,
    experts: usize,
    capacity: usize,
) -> Result<Tensor> {
    gather_dense(chunk_buf, routing, experts, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::GateKind;
    use lancet_tensor::TensorRng;

    fn routed(t: usize, e: usize, cap: usize, seed: u64) -> (Tensor, Routing) {
        let mut rng = TensorRng::seed(seed);
        let x = rng.uniform(vec![t, 4], -1.0, 1.0);
        let logits = rng.uniform(vec![t, e], -2.0, 2.0);
        let r = crate::route(GateKind::Switch, &logits, cap, None).unwrap();
        (x, r)
    }

    #[test]
    fn dispatch_places_tokens_in_order() {
        let x = Tensor::from_vec(vec![3, 2], vec![1., 1., 2., 2., 3., 3.]).unwrap();
        let r = Routing { k: 1, assign: vec![0, 1, 0], scale: vec![1.0, 1.0, 1.0] };
        let buf = dispatch_dense(&x, &r, 2, 2).unwrap();
        // Expert 0: tokens 0 and 2; expert 1: token 1 then zero padding.
        assert_eq!(buf.data(), &[1., 1., 3., 3., 2., 2., 0., 0.]);
    }

    #[test]
    fn gather_inverts_dispatch_with_unit_scale() {
        let (x, mut r) = routed(16, 4, 8, 1);
        r.scale.iter_mut().for_each(|s| {
            if *s > 0.0 {
                *s = 1.0;
            }
        });
        let buf = dispatch_dense(&x, &r, 4, 8).unwrap();
        let y = gather_dense(&buf, &r, 4, 8).unwrap();
        for (t, &e) in r.assign.iter().enumerate() {
            for i in 0..4 {
                let expect = if e < 0 { 0.0 } else { x.data()[t * 4 + i] };
                assert_eq!(y.data()[t * 4 + i], expect, "token {t}");
            }
        }
    }

    #[test]
    fn gather_applies_scale_and_zeroes_dropped() {
        let x = Tensor::from_vec(vec![2, 1], vec![3.0, 5.0]).unwrap();
        let r = Routing { k: 1, assign: vec![0, -1], scale: vec![0.5, 0.0] };
        let buf = dispatch_dense(&x, &r, 1, 1).unwrap();
        let y = gather_dense(&buf, &r, 1, 1).unwrap();
        assert_eq!(y.data(), &[1.5, 0.0]);
    }

    #[test]
    fn topk_dispatch_replicates_and_gather_mixes() {
        // One token, two experts chosen with weights 0.75 / 0.25.
        let x = Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]).unwrap();
        let r = Routing { k: 2, assign: vec![0, 1], scale: vec![0.75, 0.25] };
        let buf = dispatch_dense(&x, &r, 2, 1).unwrap();
        // Token replicated to both experts' buffers.
        assert_eq!(buf.data(), &[2.0, 4.0, 2.0, 4.0]);
        // Scale experts differently to observe mixing.
        let mut processed = buf.clone();
        for i in 0..2 {
            processed.data_mut()[2 + i] *= 10.0; // expert 1 multiplies by 10
        }
        let y = gather_dense(&processed, &r, 2, 1).unwrap();
        // 0.75·x + 0.25·10·x = 3.25·x
        assert_eq!(y.data(), &[2.0 * 3.25, 4.0 * 3.25]);
    }

    #[test]
    fn topk_roundtrip_with_routing() {
        let mut rng = TensorRng::seed(5);
        let x = rng.uniform(vec![12, 3], -1.0, 1.0);
        let logits = rng.uniform(vec![12, 4], -2.0, 2.0);
        let r = crate::route(GateKind::TopK { k: 2 }, &logits, 8, None).unwrap();
        let buf = dispatch_dense(&x, &r, 4, 8).unwrap();
        let y = gather_dense(&buf, &r, 4, 8).unwrap();
        // y[t] = (sum of kept scales) * x[t] since experts are identity.
        for t in 0..12 {
            let w: f32 = (0..2).map(|j| r.scale[t * 2 + j]).sum();
            for i in 0..3 {
                assert!((y.data()[t * 3 + i] - w * x.data()[t * 3 + i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn irregular_counts_match_routing() {
        let (x, r) = routed(32, 4, 6, 7);
        let chunk = dispatch_irregular(&x, &r, 4, 6).unwrap();
        for e in 0..4 {
            assert_eq!(chunk.counts[e] as usize, r.slots_for(e));
            assert!(chunk.counts[e] <= 6);
        }
        let total: u32 = chunk.counts.iter().sum();
        assert_eq!(total as usize, r.len() - r.num_dropped());
    }

    #[test]
    fn irregular_gather_roundtrip() {
        let (x, r) = routed(16, 4, 8, 3);
        let chunk = dispatch_irregular(&x, &r, 4, 8).unwrap();
        let y = gather_irregular(&chunk.buf, &r, 4, 8).unwrap();
        for (t, (&e, &s)) in r.assign.iter().zip(&r.scale).enumerate() {
            for i in 0..4 {
                let expect = if e < 0 { 0.0 } else { s * x.data()[t * 4 + i] };
                assert!((y.data()[t * 4 + i] - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn size_mismatch_detected() {
        let x = Tensor::zeros(vec![4, 2]);
        let r = Routing { k: 1, assign: vec![0; 3], scale: vec![1.0; 3] };
        assert!(dispatch_dense(&x, &r, 2, 2).is_err());
        let buf = Tensor::zeros(vec![2, 2, 2]);
        assert!(gather_dense(&buf, &r, 3, 2).is_err());
    }
}
