use std::fmt;

/// Errors produced by the MoE data plane.
#[derive(Debug, Clone, PartialEq)]
pub enum MoeError {
    /// The gate kind cannot be evaluated on a partial batch (paper §5.1):
    /// batch-prioritized and expert-choice gates need the whole batch.
    NotPartitionable(&'static str),
    /// The gate kind is not supported by the numerical data plane.
    UnsupportedGate(&'static str),
    /// Logits tensor has the wrong rank or extent.
    BadLogits {
        /// Debug rendering of the offending shape.
        shape: Vec<usize>,
    },
    /// Mismatched sizes between routing metadata and token tensors.
    SizeMismatch {
        /// What was being matched.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// Device buffers disagree on shape or the device count does not
    /// divide the expert count.
    BadTopology {
        /// Description of the inconsistency.
        detail: String,
    },
    /// An underlying tensor kernel failed.
    Tensor(lancet_tensor::TensorError),
}

impl fmt::Display for MoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoeError::NotPartitionable(gate) => {
                write!(f, "gate `{gate}` cannot be evaluated on a partial batch")
            }
            MoeError::UnsupportedGate(gate) => {
                write!(f, "gate `{gate}` is not supported by the data plane")
            }
            MoeError::BadLogits { shape } => write!(f, "bad logits shape {shape:?}"),
            MoeError::SizeMismatch { what, expected, actual } => {
                write!(f, "size mismatch in {what}: expected {expected}, got {actual}")
            }
            MoeError::BadTopology { detail } => write!(f, "bad topology: {detail}"),
            MoeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for MoeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<lancet_tensor::TensorError> for MoeError {
    fn from(e: lancet_tensor::TensorError) -> Self {
        MoeError::Tensor(e)
    }
}
