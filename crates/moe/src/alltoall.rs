//! Data-plane collectives: uniform and two-phase irregular all-to-all.
//!
//! These functions exchange *real data* between simulated device buffers.
//! The irregular variant implements the paper's Fig. 10 protocol: a first
//! exchange communicates per-destination sizes, a second exchange moves
//! only the actual payload — padding is never put on the wire. Payloads
//! travel as owned byte messages so the byte accounting matches what a
//! real transport would see.

use crate::{DispatchedChunk, MoeError, Result};
use lancet_tensor::Tensor;

/// Byte-level accounting of one irregular all-to-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrregularStats {
    /// Bytes moved in the size-exchange phase (4 bytes per (src, expert)).
    pub size_exchange_bytes: u64,
    /// Bytes of actual token payload moved in the second phase.
    pub payload_bytes: u64,
    /// Bytes a capacity-padded (uniform) all-to-all would have moved.
    pub padded_bytes: u64,
}

impl IrregularStats {
    /// Fraction of the padded volume actually transmitted (≤ 1).
    pub fn utilization(&self) -> f64 {
        if self.padded_bytes == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / self.padded_bytes as f64
        }
    }
}

fn check_topology(shapes: &[&[usize]]) -> Result<(usize, usize, usize, usize)> {
    let g = shapes.len();
    if g == 0 {
        return Err(MoeError::BadTopology { detail: "no devices".into() });
    }
    let first = shapes[0];
    if first.len() != 3 {
        return Err(MoeError::BadTopology { detail: format!("buffer rank {} != 3", first.len()) });
    }
    for s in shapes {
        if *s != first {
            return Err(MoeError::BadTopology { detail: format!("buffer shapes differ: {s:?} vs {first:?}") });
        }
    }
    let (e, c, m) = (first[0], first[1], first[2]);
    if e % g != 0 {
        return Err(MoeError::BadTopology { detail: format!("experts {e} not divisible by devices {g}") });
    }
    Ok((g, e, c, m))
}

/// Uniform (capacity-padded) all-to-all across `G` devices.
///
/// `bufs[d]` is device `d`'s `(E, C, M)` send buffer, laid out so that
/// global expert `e = g·E_l + l` lives on device `g`. On return, device
/// `d` holds, at leading index `s·E_l + l`, the tokens device `s` sent to
/// `d`'s local expert `l`. Applying the exchange twice restores the input
/// (the collective is an involution).
///
/// # Errors
///
/// Returns [`MoeError::BadTopology`] on inconsistent buffers.
///
/// # Example
///
/// ```
/// use lancet_moe::all_to_all_uniform;
/// use lancet_tensor::Tensor;
///
/// // Two devices, one expert each, capacity 1, width 1.
/// let dev0 = Tensor::from_vec(vec![2, 1, 1], vec![10.0, 11.0])?;
/// let dev1 = Tensor::from_vec(vec![2, 1, 1], vec![20.0, 21.0])?;
/// let out = all_to_all_uniform(&[dev0, dev1])?;
/// // Device 0 hosts expert 0 and receives its rows from both senders.
/// assert_eq!(out[0].data(), &[10.0, 20.0]);
/// assert_eq!(out[1].data(), &[11.0, 21.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::needless_range_loop)] // explicit device/rank index math
pub fn all_to_all_uniform(bufs: &[Tensor]) -> Result<Vec<Tensor>> {
    let shapes: Vec<&[usize]> = bufs.iter().map(|b| b.shape()).collect();
    let (g, e, c, m) = check_topology(&shapes)?;
    let el = e / g;
    let row = c * m;
    let mut out = vec![Tensor::zeros(vec![e, c, m]); g];
    for d in 0..g {
        for s in 0..g {
            for l in 0..el {
                let src = (d * el + l) * row;
                let dst = (s * el + l) * row;
                let data = &bufs[s].data()[src..src + row];
                out[d].data_mut()[dst..dst + row].copy_from_slice(data);
            }
        }
    }
    Ok(out)
}

/// Two-phase irregular all-to-all (paper Fig. 10).
///
/// `chunks[d]` holds device `d`'s densely packed `(E, C, M)` buffer and
/// actual per-expert counts. Phase one exchanges the counts; phase two
/// moves only `counts` rows per (source, expert) pair as byte
/// messages. Returns the received buffers (same indexing as
/// [`all_to_all_uniform`]) and the byte accounting.
///
/// # Errors
///
/// Returns [`MoeError::BadTopology`] on inconsistent buffers, or
/// [`MoeError::SizeMismatch`] when counts disagree with buffer extents.
#[allow(clippy::needless_range_loop)] // explicit device/rank index math
pub fn all_to_all_irregular(chunks: &[DispatchedChunk]) -> Result<(Vec<DispatchedChunk>, IrregularStats)> {
    let shapes: Vec<&[usize]> = chunks.iter().map(|ch| ch.buf.shape()).collect();
    let (g, e, c, m) = check_topology(&shapes)?;
    let el = e / g;
    let row = c * m;
    for ch in chunks {
        if ch.counts.len() != e {
            return Err(MoeError::SizeMismatch { what: "counts", expected: e, actual: ch.counts.len() });
        }
        if let Some(&over) = ch.counts.iter().find(|&&n| n as usize > c) {
            return Err(MoeError::SizeMismatch { what: "count exceeds capacity", expected: c, actual: over as usize });
        }
    }
    let mut stats = IrregularStats::default();

    // Phase 1: every device tells every other device how many rows it will
    // send for each of its local experts (one u32 per (src, expert)).
    let mut recv_counts = vec![vec![0u32; e]; g];
    for d in 0..g {
        for s in 0..g {
            for l in 0..el {
                recv_counts[d][s * el + l] = chunks[s].counts[d * el + l];
                stats.size_exchange_bytes += 4;
            }
        }
    }

    // Phase 2: move only the actual rows, packaged as byte messages.
    let mut out: Vec<DispatchedChunk> = (0..g)
        .map(|d| DispatchedChunk { buf: Tensor::zeros(vec![e, c, m]), counts: recv_counts[d].clone() })
        .collect();
    for d in 0..g {
        for s in 0..g {
            for l in 0..el {
                let n = recv_counts[d][s * el + l] as usize;
                if n == 0 {
                    continue;
                }
                let src = (d * el + l) * row;
                let payload: &[f32] = &chunks[s].buf.data()[src..src + n * m];
                // Serialize to a wire message, as NCCL send/recv would.
                let msg: Vec<u8> = as_wire_bytes(payload).to_vec();
                stats.payload_bytes += msg.len() as u64;
                let dst = (s * el + l) * row;
                let floats = from_wire_bytes(&msg);
                out[d].buf.data_mut()[dst..dst + n * m].copy_from_slice(&floats);
            }
        }
    }
    stats.padded_bytes = (g * e * c * m * 4) as u64;
    Ok((out, stats))
}

fn as_wire_bytes(v: &[f32]) -> &[u8] {
    // Safety: f32 has no padding bytes and u8 has alignment 1.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) }
}

fn from_wire_bytes(b: &[u8]) -> Vec<f32> {
    assert_eq!(b.len() % 4, 0, "payload must be whole f32s");
    b.chunks_exact(4)
        .map(|c| f32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Statistics of one hierarchical all-to-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchicalStats {
    /// Bytes moved over intra-node links (stage 1).
    pub intra_bytes: u64,
    /// Bytes moved over inter-node links (stage 2).
    pub inter_bytes: u64,
}

/// Hierarchical (two-stage) all-to-all: stage 1 re-buckets data within
/// each node so that the GPU with local rank `r` holds everything its
/// node sends to rank-`r` GPUs anywhere; stage 2 exchanges those buckets
/// between same-rank GPUs across nodes. The result is identical to
/// [`all_to_all_uniform`], but inter-node messages are `gpus_per_node`
/// times larger — the aggregation that makes small-message all-to-alls
/// efficient (the "better communication implementations" of paper §8).
///
/// # Errors
///
/// Returns [`MoeError::BadTopology`] on inconsistent buffers or when the
/// device count is not a multiple of `gpus_per_node`.
#[allow(clippy::needless_range_loop)] // explicit device/rank index math
pub fn all_to_all_hierarchical(
    bufs: &[Tensor],
    gpus_per_node: usize,
) -> Result<(Vec<Tensor>, HierarchicalStats)> {
    let shapes: Vec<&[usize]> = bufs.iter().map(|b| b.shape()).collect();
    let (g, e, c, m) = check_topology(&shapes)?;
    if gpus_per_node == 0 || g % gpus_per_node != 0 {
        return Err(MoeError::BadTopology {
            detail: format!("{g} devices not divisible into nodes of {gpus_per_node}"),
        });
    }
    let nodes = g / gpus_per_node;
    let el = e / g;
    let row = c * m;
    let mut stats = HierarchicalStats::default();

    // Stage 1 (intra-node): device (node n, rank j) sends to (n, r) every
    // chunk destined for a rank-r device of any node. After this stage,
    // staged[n][r] holds chunks indexed by (source rank j, dest node m,
    // local expert l).
    let mut staged: Vec<Vec<Tensor>> =
        vec![vec![Tensor::zeros(vec![gpus_per_node * nodes * el, c, m]); gpus_per_node]; nodes];
    for n in 0..nodes {
        for j in 0..gpus_per_node {
            let src_dev = n * gpus_per_node + j;
            for dest in 0..g {
                let (dm, dr) = (dest / gpus_per_node, dest % gpus_per_node);
                for l in 0..el {
                    let src_off = (dest * el + l) * row;
                    // Bucket layout on (n, dr): [j][dm][l].
                    let dst_off = ((j * nodes + dm) * el + l) * row;
                    let data = bufs[src_dev].data()[src_off..src_off + row].to_vec();
                    staged[n][dr].data_mut()[dst_off..dst_off + row].copy_from_slice(&data);
                    if j != dr {
                        stats.intra_bytes += (row * 4) as u64;
                    }
                }
            }
        }
    }

    // Stage 2 (inter-node): same-rank devices exchange node buckets; the
    // receiver reassembles the uniform output layout
    // out[dest][src_global · el + l].
    let mut out = vec![Tensor::zeros(vec![e, c, m]); g];
    for dm in 0..nodes {
        for r in 0..gpus_per_node {
            let dest_dev = dm * gpus_per_node + r;
            for sn in 0..nodes {
                for j in 0..gpus_per_node {
                    let src_global = sn * gpus_per_node + j;
                    for l in 0..el {
                        let src_off = ((j * nodes + dm) * el + l) * row;
                        let dst_off = (src_global * el + l) * row;
                        let data = staged[sn][r].data()[src_off..src_off + row].to_vec();
                        out[dest_dev].data_mut()[dst_off..dst_off + row].copy_from_slice(&data);
                        if sn != dm {
                            stats.inter_bytes += (row * 4) as u64;
                        }
                    }
                }
            }
        }
    }
    Ok((out, stats))
}

/// Sum all-reduce: every device receives the element-wise sum.
///
/// # Errors
///
/// Returns [`MoeError::BadTopology`] when shapes differ, or an empty
/// device list is given.
pub fn all_reduce_sum(tensors: &[Tensor]) -> Result<Vec<Tensor>> {
    let first = tensors.first().ok_or_else(|| MoeError::BadTopology { detail: "no devices".into() })?;
    let mut sum = first.clone();
    for t in &tensors[1..] {
        sum = sum.add(t)?;
    }
    Ok(vec![sum; tensors.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_buf(g: usize, el: usize, c: usize, m: usize, dev: usize) -> Tensor {
        let e = g * el;
        let mut t = Tensor::zeros(vec![e, c, m]);
        for i in 0..t.volume() {
            t.data_mut()[i] = (dev * 1000 + i) as f32;
        }
        t
    }

    #[test]
    fn uniform_is_involution() {
        let g = 4;
        let bufs: Vec<Tensor> = (0..g).map(|d| mk_buf(g, 2, 3, 2, d)).collect();
        let once = all_to_all_uniform(&bufs).unwrap();
        let twice = all_to_all_uniform(&once).unwrap();
        assert_eq!(twice, bufs);
    }

    #[test]
    fn uniform_routes_rows_to_expert_owner() {
        // 2 devices, 1 expert each, capacity 1, width 1.
        let b0 = Tensor::from_vec(vec![2, 1, 1], vec![10.0, 11.0]).unwrap();
        let b1 = Tensor::from_vec(vec![2, 1, 1], vec![20.0, 21.0]).unwrap();
        let out = all_to_all_uniform(&[b0, b1]).unwrap();
        // Device 0 hosts expert 0: receives row for expert 0 from both.
        assert_eq!(out[0].data(), &[10.0, 20.0]);
        // Device 1 hosts expert 1: rows destined to expert 1.
        assert_eq!(out[1].data(), &[11.0, 21.0]);
    }

    #[test]
    fn topology_errors() {
        assert!(all_to_all_uniform(&[]).is_err());
        let a = Tensor::zeros(vec![2, 1, 1]);
        let b = Tensor::zeros(vec![2, 2, 1]);
        assert!(all_to_all_uniform(&[a.clone(), b]).is_err());
        // 3 experts on 2 devices does not divide.
        let c = Tensor::zeros(vec![3, 1, 1]);
        assert!(all_to_all_uniform(&[c.clone(), c]).is_err());
    }

    #[test]
    fn irregular_matches_uniform_on_valid_rows() {
        let g = 2;
        let (e, c, m) = (4, 3, 2);
        let mut chunks = Vec::new();
        for d in 0..g {
            let buf = mk_buf(g, e / g, c, m, d);
            // Pretend 2 valid rows for even experts, 1 for odd.
            let counts: Vec<u32> = (0..e).map(|i| if i % 2 == 0 { 2 } else { 1 }).collect();
            chunks.push(DispatchedChunk { buf, counts });
        }
        let bufs: Vec<Tensor> = chunks.iter().map(|ch| ch.buf.clone()).collect();
        let uniform = all_to_all_uniform(&bufs).unwrap();
        let (irr, stats) = all_to_all_irregular(&chunks).unwrap();
        // Valid region matches; counts arrive with the data.
        for d in 0..g {
            for idx in 0..e {
                let n = irr[d].counts[idx] as usize;
                let off = idx * c * m;
                assert_eq!(
                    &irr[d].buf.data()[off..off + n * m],
                    &uniform[d].data()[off..off + n * m]
                );
                // Beyond the count the irregular buffer is zero.
                assert!(irr[d].buf.data()[off + n * m..off + c * m].iter().all(|&x| x == 0.0));
            }
        }
        assert!(stats.payload_bytes < stats.padded_bytes);
        assert_eq!(stats.size_exchange_bytes, (g * g * (e / g) * 4) as u64);
        assert!(stats.utilization() < 1.0);
    }

    #[test]
    fn irregular_rejects_overflow_counts() {
        let buf = Tensor::zeros(vec![2, 2, 1]);
        let chunk = DispatchedChunk { buf, counts: vec![3, 0] };
        assert!(all_to_all_irregular(&[chunk.clone(), chunk]).is_err());
    }

    #[test]
    fn irregular_transmits_nothing_when_empty() {
        let buf = Tensor::zeros(vec![2, 2, 1]);
        let chunk = DispatchedChunk { buf, counts: vec![0, 0] };
        let (_, stats) = all_to_all_irregular(&[chunk.clone(), chunk]).unwrap();
        assert_eq!(stats.payload_bytes, 0);
        assert_eq!(stats.utilization(), 0.0);
    }

    #[test]
    fn hierarchical_equals_uniform() {
        for (nodes, gpn, el, c, m) in [(2usize, 2usize, 1usize, 2usize, 3usize), (2, 4, 2, 1, 2), (3, 2, 1, 2, 1)] {
            let g = nodes * gpn;
            let bufs: Vec<Tensor> = (0..g).map(|d| mk_buf(g, el, c, m, d)).collect();
            let uniform = all_to_all_uniform(&bufs).unwrap();
            let (hier, stats) = all_to_all_hierarchical(&bufs, gpn).unwrap();
            assert_eq!(hier, uniform, "nodes {nodes} gpn {gpn}");
            assert!(stats.inter_bytes > 0);
            assert!(stats.intra_bytes > 0);
        }
    }

    #[test]
    fn hierarchical_single_node_moves_nothing_internode() {
        let bufs: Vec<Tensor> = (0..4).map(|d| mk_buf(4, 2, 2, 2, d)).collect();
        let (hier, stats) = all_to_all_hierarchical(&bufs, 4).unwrap();
        assert_eq!(hier, all_to_all_uniform(&bufs).unwrap());
        assert_eq!(stats.inter_bytes, 0);
    }

    #[test]
    fn hierarchical_rejects_bad_node_size() {
        let bufs: Vec<Tensor> = (0..4).map(|d| mk_buf(4, 1, 1, 1, d)).collect();
        assert!(all_to_all_hierarchical(&bufs, 3).is_err());
        assert!(all_to_all_hierarchical(&bufs, 0).is_err());
    }

    #[test]
    fn all_reduce_sums() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]).unwrap();
        let out = all_reduce_sum(&[a, b]).unwrap();
        assert_eq!(out[0].data(), &[11.0, 22.0]);
        assert_eq!(out[0], out[1]);
        assert!(all_reduce_sum(&[]).is_err());
    }
}
