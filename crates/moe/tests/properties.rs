//! Property-based tests for the MoE data plane invariants.

use lancet_ir::GateKind;
use lancet_moe::{
    all_to_all_irregular, all_to_all_uniform, dispatch_dense, dispatch_irregular, expert_capacity,
    gather_dense, route, CapacityState, DispatchedChunk, Routing,
};
use lancet_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

fn logits_strategy() -> impl Strategy<Value = (Tensor, usize)> {
    // (tokens 4..40, experts 2..8) with seeded contents.
    (4usize..40, 2usize..8, any::<u64>()).prop_map(|(t, e, seed)| {
        (TensorRng::seed(seed).uniform(vec![t, e], -3.0, 3.0), e)
    })
}

proptest! {
    /// No expert ever receives more than its capacity, for any gate.
    #[test]
    fn capacity_never_exceeded((logits, e) in logits_strategy(), cap in 1usize..6) {
        for kind in [GateKind::Switch, GateKind::BatchPrioritized, GateKind::Random, GateKind::Hash] {
            let r = route(kind, &logits, cap, None).unwrap();
            for expert in 0..e {
                prop_assert!(r.tokens_for(expert).len() <= cap, "{kind:?}");
            }
        }
    }

    /// The paper's core equivalence (Fig. 5c): capacity-passing chunked
    /// routing is identical to unpartitioned routing, for every
    /// partitionable gate, chunk count and capacity.
    #[test]
    fn capacity_passing_is_exact((logits, e) in logits_strategy(), cap in 1usize..8, parts in 2usize..5) {
        let t = logits.shape()[0];
        let parts = parts.min(t);
        for kind in [GateKind::Switch, GateKind::Random, GateKind::Hash] {
            let full = route(kind, &logits, cap, None).unwrap();
            let mut state = CapacityState::new(e);
            let routed: Vec<Routing> = logits
                .split_axis(0, parts)
                .unwrap()
                .iter()
                .map(|c| route(kind, c, cap, Some(&mut state)).unwrap())
                .collect();
            prop_assert_eq!(Routing::concat(&routed), full, "{:?}", kind);
        }
    }

    /// Drops are monotone in capacity: more capacity never drops more.
    #[test]
    fn drops_monotone_in_capacity((logits, _e) in logits_strategy(), cap in 1usize..6) {
        let smaller = route(GateKind::Switch, &logits, cap, None).unwrap();
        let larger = route(GateKind::Switch, &logits, cap + 2, None).unwrap();
        prop_assert!(larger.num_dropped() <= smaller.num_dropped());
    }

    /// Every token kept by routing appears in exactly one expert buffer
    /// row, and dispatch conserves token values.
    #[test]
    fn dispatch_conserves_tokens((logits, e) in logits_strategy(), cap in 2usize..6) {
        let t = logits.shape()[0];
        let x = TensorRng::seed(42).uniform(vec![t, 3], -1.0, 1.0);
        let r = route(GateKind::Switch, &logits, cap, None).unwrap();
        let buf = dispatch_dense(&x, &r, e, cap).unwrap();
        let kept: f32 = r
            .assign
            .iter()
            .enumerate()
            .filter(|(_, &a)| a >= 0)
            .map(|(tk, _)| x.data()[tk * 3..(tk + 1) * 3].iter().sum::<f32>())
            .sum();
        let buf_sum: f32 = buf.data().iter().sum();
        prop_assert!((kept - buf_sum).abs() < 1e-3);
    }

    /// gather(dispatch(x)) reproduces x on kept tokens (unit scale) and
    /// zero on dropped tokens.
    #[test]
    fn gather_dispatch_roundtrip((logits, e) in logits_strategy(), cap in 2usize..6) {
        let t = logits.shape()[0];
        let x = TensorRng::seed(7).uniform(vec![t, 2], -1.0, 1.0);
        let mut r = route(GateKind::Switch, &logits, cap, None).unwrap();
        for (i, s) in r.scale.iter_mut().enumerate() {
            if r.assign[i] >= 0 { *s = 1.0; }
        }
        let buf = dispatch_dense(&x, &r, e, cap).unwrap();
        let y = gather_dense(&buf, &r, e, cap).unwrap();
        for (tk, &a) in r.assign.iter().enumerate() {
            for i in 0..2 {
                let expect = if a < 0 { 0.0 } else { x.data()[tk * 2 + i] };
                prop_assert_eq!(y.data()[tk * 2 + i], expect);
            }
        }
    }

    /// The irregular all-to-all conserves total payload: the sum of all
    /// received valid rows equals the sum of all sent valid rows, and it
    /// never transmits more than the padded volume.
    #[test]
    fn irregular_alltoall_conserves(devs in 2usize..5, el in 1usize..3, cap in 1usize..4, m in 1usize..4, seed in any::<u64>()) {
        let e = devs * el;
        let mut rng = TensorRng::seed(seed);
        let mut chunks = Vec::new();
        let mut sent_sum = 0.0f32;
        for _ in 0..devs {
            let mut buf = Tensor::zeros(vec![e, cap, m]);
            let mut counts = vec![0u32; e];
            for (idx, cnt) in counts.iter_mut().enumerate() {
                *cnt = (rng.below(cap + 1)) as u32;
                for r_i in 0..*cnt as usize {
                    for j in 0..m {
                        let v = rng.sample();
                        buf.data_mut()[(idx * cap + r_i) * m + j] = v;
                        sent_sum += v;
                    }
                }
            }
            chunks.push(DispatchedChunk { buf, counts });
        }
        let (out, stats) = all_to_all_irregular(&chunks).unwrap();
        let recv_sum: f32 = out.iter().map(|ch| ch.buf.data().iter().sum::<f32>()).sum();
        prop_assert!((sent_sum - recv_sum).abs() < 1e-2);
        prop_assert!(stats.payload_bytes <= stats.padded_bytes);
        // Counts conserve too.
        let sent_counts: u32 = chunks.iter().map(|c| c.counts.iter().sum::<u32>()).sum();
        let recv_counts: u32 = out.iter().map(|c| c.counts.iter().sum::<u32>()).sum();
        prop_assert_eq!(sent_counts, recv_counts);
    }

    /// The hierarchical exchange is indistinguishable from the uniform
    /// all-to-all for any (nodes × gpus/node) topology.
    #[test]
    fn hierarchical_equals_uniform_everywhere(nodes in 1usize..4, gpn in 1usize..5, el in 1usize..3, cap in 1usize..4, m in 1usize..3, seed in any::<u64>()) {
        use lancet_moe::all_to_all_hierarchical;
        let g = nodes * gpn;
        let e = g * el;
        let mut rng = TensorRng::seed(seed);
        let bufs: Vec<Tensor> = (0..g).map(|_| rng.uniform(vec![e, cap, m], -1.0, 1.0)).collect();
        let uniform = all_to_all_uniform(&bufs).unwrap();
        let (hier, _) = all_to_all_hierarchical(&bufs, gpn).unwrap();
        prop_assert_eq!(hier, uniform);
    }

    /// The uniform all-to-all is an involution for any topology.
    #[test]
    fn uniform_alltoall_involution(devs in 1usize..5, el in 1usize..3, cap in 1usize..4, m in 1usize..3, seed in any::<u64>()) {
        let e = devs * el;
        let mut rng = TensorRng::seed(seed);
        let bufs: Vec<Tensor> = (0..devs).map(|_| rng.uniform(vec![e, cap, m], -1.0, 1.0)).collect();
        let once = all_to_all_uniform(&bufs).unwrap();
        let twice = all_to_all_uniform(&once).unwrap();
        prop_assert_eq!(twice, bufs);
    }

    /// Irregular dispatch packs exactly the kept tokens.
    #[test]
    fn irregular_dispatch_counts((logits, e) in logits_strategy(), cap in 1usize..6) {
        let t = logits.shape()[0];
        let x = TensorRng::seed(3).uniform(vec![t, 2], -1.0, 1.0);
        let r = route(GateKind::Switch, &logits, cap, None).unwrap();
        let chunk = dispatch_irregular(&x, &r, e, cap).unwrap();
        let total: u32 = chunk.counts.iter().sum();
        prop_assert_eq!(total as usize, t - r.num_dropped());
    }

    /// Capacity formula bounds: C·E ≥ factor·T and C is minimal.
    #[test]
    fn capacity_formula_bounds(t in 1usize..2000, e in 1usize..64) {
        let c = expert_capacity(t, e, 1.25);
        prop_assert!((c * e) as f64 >= 1.25 * t as f64);
        // Minimality: one slot less per expert would not fit the load.
        prop_assert!((((c - 1) * e) as f64) < 1.25 * t as f64);
    }
}
