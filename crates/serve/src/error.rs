//! Serving errors, including the typed admission-control rejections.

/// Why a request was rejected or failed.
///
/// `Overloaded` and `DeadlineExceeded` are *load-shedding* outcomes — the
/// deliberate product of admission control, delivered instead of letting
/// queues grow without bound. Everything else is a genuine failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a model that was never registered.
    UnknownModel(String),
    /// The request's input tensors don't fit the model (shape/volume).
    BadRequest(String),
    /// The admission queue is full: the runtime sheds the request at the
    /// door rather than queueing it beyond the configured depth.
    Overloaded {
        /// The queue depth at rejection time (the configured bound).
        depth: usize,
    },
    /// The request waited in the queue longer than its latency budget and
    /// was shed before execution (running it would deliver a useless,
    /// already-late response while delaying everyone behind it).
    DeadlineExceeded {
        /// How long the request had waited when it was shed, in ms.
        waited_ms: f64,
    },
    /// The request's end-to-end time exceeded the configured per-request
    /// timeout before execution started; the runtime answered with this
    /// error instead of a late response.
    TimedOut {
        /// How long the request had waited when it timed out, in ms.
        waited_ms: f64,
    },
    /// The runtime is shutting down and no longer accepts work.
    ShuttingDown,
    /// The replica serving this request crashed (chaos testing / fleet
    /// fail-over) while the request was queued. Unlike `ShuttingDown`
    /// this is abrupt: queued work is drained with this error instead of
    /// being executed. A fleet front-end treats it as retriable and
    /// re-routes the request to a healthy replica.
    Crashed,
    /// Plan construction failed (graph build / optimization error).
    Plan(String),
    /// Graph execution failed.
    Exec(String),
    /// The worker executing this request's batch panicked. The panic was
    /// isolated — the worker thread and every other request survive — and
    /// the batch's undelivered requests receive this error.
    WorkerPanic(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: admission queue full at depth {depth}")
            }
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms:.1} ms in queue")
            }
            ServeError::TimedOut { waited_ms } => {
                write!(f, "timed out after {waited_ms:.1} ms")
            }
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::Crashed => write!(f, "replica crashed with the request queued"),
            ServeError::Plan(why) => write!(f, "plan construction failed: {why}"),
            ServeError::Exec(why) => write!(f, "execution failed: {why}"),
            ServeError::WorkerPanic(why) => write!(f, "worker panicked: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving results.
pub type Result<T> = std::result::Result<T, ServeError>;
