//! Deterministic fault injection for the serving runtime.
//!
//! Chaos testing a concurrent runtime only works if the chaos is
//! *replayable*: the same fault seed must produce the same injected
//! faults, so a failure found once can be reproduced forever. The
//! [`FaultInjector`] therefore draws every decision from a SplitMix64
//! hash of `(seed, site, sequence number)` — no wall clock, no OS
//! randomness — where each injection site (worker delay, worker panic,
//! execution failure, plan-build failure, batcher stall) keeps its own
//! atomic sequence counter.
//!
//! The injector decides *what* goes wrong; the runtime's survival
//! machinery (per-request timeout, bounded retry with backoff, batch
//! degradation, panic isolation — see
//! [`ServeConfig`](crate::ServeConfig)) decides how to keep the
//! exactly-once response contract anyway. Injected faults are counted in
//! [`ServeStats::injected_faults`](crate::ServeStats::injected_faults).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Probabilities and magnitudes of the faults to inject, plus the seed
/// all decisions derive from. All probabilities are per injection-site
/// *opportunity* (one batch execution, one plan build, …), in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability that a worker sleeps [`slow_delay`](Self::slow_delay)
    /// before executing a batch (a straggling executor: slow but correct).
    pub slow_worker: f64,
    /// How long a slow worker sleeps.
    pub slow_delay: Duration,
    /// Probability that a worker panics mid-batch. The runtime isolates
    /// the panic and answers the batch's requests with
    /// [`ServeError::WorkerPanic`](crate::ServeError::WorkerPanic).
    pub worker_panic: f64,
    /// Probability that one execution attempt fails transiently (the
    /// retry path's trigger).
    pub exec_fail: f64,
    /// Probability that one plan build fails (the batch-degradation
    /// path's trigger).
    pub plan_fail: f64,
    /// Probability that the batcher stalls for
    /// [`stall_delay`](Self::stall_delay) after forming a batch.
    pub queue_stall: f64,
    /// How long a batcher stall lasts.
    pub stall_delay: Duration,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a base for builders).
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            slow_worker: 0.0,
            slow_delay: Duration::from_millis(5),
            worker_panic: 0.0,
            exec_fail: 0.0,
            plan_fail: 0.0,
            queue_stall: 0.0,
            stall_delay: Duration::from_millis(5),
        }
    }

    /// The moderate everything-at-once mix `lancet chaos-bench` and the
    /// chaos-conformance tests drive: every fault class fires with
    /// non-trivial probability, magnitudes stay small enough that a short
    /// trace still finishes in seconds.
    pub fn chaos(seed: u64) -> Self {
        FaultSpec {
            seed,
            slow_worker: 0.25,
            slow_delay: Duration::from_millis(2),
            worker_panic: 0.10,
            exec_fail: 0.20,
            plan_fail: 0.20,
            queue_stall: 0.15,
            stall_delay: Duration::from_millis(2),
        }
    }
}

/// Injection sites, each with an independent deterministic draw sequence.
#[derive(Debug, Clone, Copy)]
#[repr(usize)]
enum Site {
    SlowWorker = 0,
    WorkerPanic = 1,
    ExecFail = 2,
    PlanFail = 3,
    QueueStall = 4,
}

/// Per-site salts separating the draw streams.
const SITE_SALTS: [u64; 5] = [0x51c3_a11d, 0x9a21_c001, 0xe8ec_fa17, 0x91a2_bad5, 0x57a1_1ed0];

/// SplitMix64 hash of `(seed, salt, seq)` to a unit float.
fn unit(seed: u64, salt: u64, seq: u64) -> f64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ seq.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded source of fault decisions, shared by the batcher and every
/// exec worker. Thread-safe; each site's decisions form a deterministic
/// sequence regardless of which thread consumes them.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    seqs: [AtomicU64; 5],
}

impl FaultInjector {
    /// An injector drawing from `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec, seqs: Default::default() }
    }

    /// The spec this injector draws from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Draws the next decision for `site` against probability `p`.
    fn fire(&self, site: Site, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let at = site as usize;
        let seq = self.seqs[at].fetch_add(1, Ordering::Relaxed);
        unit(self.spec.seed, SITE_SALTS[at], seq) < p
    }

    /// Should this batch execution run on a slowed worker? Returns the
    /// sleep to inject.
    ///
    /// Site methods are `pub` so other deterministic runtimes (the
    /// `lancet-decode` step loop) can share one replayable fault stream
    /// instead of inventing a parallel injector.
    pub fn worker_delay(&self) -> Option<Duration> {
        self.fire(Site::SlowWorker, self.spec.slow_worker).then_some(self.spec.slow_delay)
    }

    /// Should this batch execution panic the worker?
    pub fn worker_panic(&self) -> bool {
        self.fire(Site::WorkerPanic, self.spec.worker_panic)
    }

    /// Should this execution attempt fail transiently?
    pub fn exec_fault(&self) -> bool {
        self.fire(Site::ExecFail, self.spec.exec_fail)
    }

    /// Should this plan build fail?
    pub fn plan_fault(&self) -> bool {
        self.fire(Site::PlanFail, self.spec.plan_fail)
    }

    /// Should the batcher stall after forming this batch? Returns the
    /// sleep to inject.
    pub fn batcher_stall(&self) -> Option<Duration> {
        self.fire(Site::QueueStall, self.spec.queue_stall).then_some(self.spec.stall_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_never_fires() {
        let inj = FaultInjector::new(FaultSpec::quiet(7));
        for _ in 0..100 {
            assert!(inj.worker_delay().is_none());
            assert!(!inj.worker_panic());
            assert!(!inj.exec_fault());
            assert!(!inj.plan_fault());
            assert!(inj.batcher_stall().is_none());
        }
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultSpec { exec_fail: 0.5, ..FaultSpec::quiet(seed) });
            (0..64).map(|_| inj.exec_fault()).collect()
        };
        assert_eq!(draw(3), draw(3), "same seed ⇒ same decision sequence");
        assert_ne!(draw(3), draw(4), "different seeds should diverge");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let spec = FaultSpec { exec_fail: 0.5, plan_fail: 0.5, ..FaultSpec::quiet(11) };
        let a = FaultInjector::new(spec.clone());
        let execs: Vec<bool> = (0..64).map(|_| a.exec_fault()).collect();
        let plans: Vec<bool> = (0..64).map(|_| a.plan_fault()).collect();
        assert_ne!(execs, plans, "sites must not share a stream");
        // Consuming one site must not perturb another: interleave draws.
        let b = FaultInjector::new(spec);
        let execs_b: Vec<bool> = (0..64)
            .map(|_| {
                let e = b.exec_fault();
                b.plan_fault();
                e
            })
            .collect();
        assert_eq!(execs, execs_b);
    }

    #[test]
    fn probability_one_always_fires() {
        let inj = FaultInjector::new(FaultSpec {
            slow_worker: 1.0,
            worker_panic: 1.0,
            queue_stall: 1.0,
            ..FaultSpec::quiet(1)
        });
        for _ in 0..16 {
            assert!(inj.worker_delay().is_some());
            assert!(inj.worker_panic());
            assert!(inj.batcher_stall().is_some());
        }
    }
}
