//! The serving runtime: admission control, deadline-bounded
//! micro-batching, and plan-cached execution on a worker pool.
//!
//! # Thread topology
//!
//! ```text
//! submitters ──► admission queue ──► batcher ──► exec queue ──► workers
//!    (N)          (bounded:          (1 thread,   (bounded)      (M threads,
//!                  Overloaded         groups by                   plan cache +
//!                  past depth)        model into                  Executor)
//!                                     buckets)
//! ```
//!
//! Both queues are bounded, so overload surfaces as a typed
//! [`ServeError::Overloaded`] at the door instead of unbounded memory
//! growth, and a slow executor backpressures the batcher rather than
//! letting batches pile up. Requests that out-wait their latency budget
//! are shed with [`ServeError::DeadlineExceeded`] before execution —
//! running them would spend executor time on an answer that is already
//! useless.
//!
//! # Transparent batching
//!
//! Registration normalizes each model's capacity factor to its expert
//! count, which makes routing *drop-free*: every expert can absorb every
//! token, so no token's output depends on what else shares its
//! micro-batch. Combined with the executor's fixed per-element reduction
//! order, a batched response is bit-identical to what solo (batch = 1)
//! serving would have produced — micro-batching is purely a throughput
//! optimization, invisible in the output bits (covered by the
//! `batched_responses_bit_identical_to_solo` integration test).

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{optimize_placement, ClusterKind, ClusterSpec, ExpertTraffic, PlacementOptions, PlacementPlan};
use lancet_models::GptMoeConfig;
use lancet_tensor::{pool, Tensor};

use crate::cache::PlanCache;
use crate::fault::{FaultInjector, FaultSpec};
use crate::plan::{canonical_weights, CanonicalWeights, PackSet, Plan, PlanKey};
use crate::stats::{Metrics, ServeStats};
use crate::{Result, ServeError};

/// Fallback admission-queue depth when neither the config nor
/// `LANCET_SERVE_QUEUE_DEPTH` specifies one.
const DEFAULT_QUEUE_DEPTH: usize = 256;

/// `LANCET_SERVE_QUEUE_DEPTH`, parsed per call (tests mutate it).
/// Unset, empty, unparsable, or `0` all mean "use the default".
fn env_queue_depth() -> Option<usize> {
    std::env::var("LANCET_SERVE_QUEUE_DEPTH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Serving-runtime knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Device generation the plan optimizer's cost models target.
    pub cluster: ClusterKind,
    /// Admission-queue bound; requests beyond it are rejected with
    /// [`ServeError::Overloaded`]. `0` reads `LANCET_SERVE_QUEUE_DEPTH`,
    /// falling back to 256.
    pub queue_depth: usize,
    /// Most requests per micro-batch (buckets are powers of two up to
    /// this, rounded up).
    pub max_batch: usize,
    /// How long the batcher waits for a full batch before dispatching a
    /// partial one. Zero dispatches immediately (no batching delay).
    pub batch_window: Duration,
    /// Per-request queueing budget; requests that wait longer are shed
    /// with [`ServeError::DeadlineExceeded`]. Zero disables shedding.
    pub latency_budget: Duration,
    /// Executor worker threads. `0` resolves like the compute pool's
    /// worker knob (`LANCET_WORKERS`, then machine size).
    pub exec_workers: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub plan_capacity: usize,
    /// Run the Lancet partition pass when building plans. Costs more at
    /// plan-build time (all of it amortized by the cache), buys the
    /// paper's overlap schedule inside each plan.
    pub partition: bool,
    /// Seed for canonical weight initialization.
    pub seed: u64,
    /// Per-request end-to-end timeout: requests still unexecuted after
    /// this long are answered with [`ServeError::TimedOut`] instead of a
    /// late response. Zero disables the timeout. Unlike
    /// [`latency_budget`](Self::latency_budget) (queue-side shedding,
    /// checked by the batcher), the timeout is checked by the worker just
    /// before execution, so it also catches time lost in the exec queue.
    pub request_timeout: Duration,
    /// How many times a transiently failed execution
    /// ([`ServeError::Exec`]) is retried before the error is delivered.
    pub max_retries: u32,
    /// Base backoff slept before the first retry; doubles each retry.
    pub retry_backoff: Duration,
    /// Deterministic fault injection (chaos testing). `None` — the
    /// default — injects nothing and costs nothing on the hot path.
    pub fault: Option<FaultSpec>,
    /// Affinity-aware dispatch: at registration each model gets an
    /// expert→worker [`PlacementPlan`] (exec workers play the role of
    /// devices), every batch is tagged with the worker holding its hot
    /// expert, and workers prefer their own batches from the exec queue.
    /// Preference is soft — a free worker steals rather than idles — and
    /// outcomes land in `placement_hits` / `placement_misses` on
    /// [`ServeStats`]. Off by default: batches go to whichever worker
    /// frees up first and the counters stay zero.
    pub affinity: bool,
    /// Minimum wall-clock service time per executed batch: when a batch
    /// finishes faster, the worker sleeps out the remainder. Zero (the
    /// default) disables the floor. This emulates a fixed-latency device
    /// for fleet-scaling experiments on small hosts — N replicas sleeping
    /// concurrently scale near-linearly the way N accelerators would,
    /// where N CPU-bound replicas on one core would not.
    pub service_floor: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cluster: ClusterKind::A100,
            queue_depth: 0,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            latency_budget: Duration::ZERO,
            exec_workers: 0,
            plan_capacity: 16,
            partition: true,
            seed: 0x5e4e,
            request_timeout: Duration::ZERO,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            fault: None,
            affinity: false,
            service_floor: Duration::ZERO,
        }
    }
}

/// One registered model: its (capacity-normalized) config, a dedicated
/// optimizer whose partition memo is shared by every bucket's plan
/// build, and the canonical name-keyed weights every plan binds.
#[derive(Debug)]
struct ModelEntry {
    cfg: GptMoeConfig,
    lancet: Lancet,
    canonical: CanonicalWeights,
    /// Expert→worker plan for affinity dispatch (`None` unless
    /// [`ServeConfig::affinity`] is set).
    placement: Option<PlacementPlan>,
    /// Prepacked GEMM panels carried in from a model store; plan builds
    /// adopt them instead of re-packing (`None` for generated weights).
    packs: Option<Arc<PackSet>>,
}

/// A request waiting in a queue.
struct Pending {
    model: String,
    ids: Vec<f32>,
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

/// A micro-batch handed from the batcher to an exec worker. The bucket
/// is derived where it's used (`serve_entries`), since timeout filtering
/// and degradation can shrink the entry set after extraction.
struct Batch {
    model: String,
    entries: Vec<Pending>,
    /// Worker index holding the batch's hot expert (affinity dispatch);
    /// `None` when affinity is off — any worker takes it, uncounted.
    preferred: Option<usize>,
}

/// The write-once response cell behind a [`Ticket`].
#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<Option<Result<Tensor>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot { state: Mutex::new(None), ready: Condvar::new() }
    }

    /// First delivery wins; returns whether this call was it.
    fn deliver(&self, result: Result<Tensor>) -> bool {
        let mut state = self.state.lock().expect("slot lock");
        if state.is_some() {
            return false;
        }
        *state = Some(result);
        self.ready.notify_all();
        true
    }
}

/// A claim on one request's eventual response. Waiting consumes the
/// ticket, so a response can be received at most once — together with
/// the slot's write-once cell this gives exactly-once delivery.
#[must_use = "an unawaited ticket discards its response"]
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the response (or rejection) arrives.
    pub fn wait(self) -> Result<Tensor> {
        let mut state = self.slot.state.lock().expect("slot lock");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.ready.wait(state).expect("slot lock");
        }
    }
}

/// State shared by submitters, the batcher, and the exec workers.
struct Shared {
    config: ServeConfig,
    queue_depth: usize,
    exec_depth: usize,
    exec_workers: usize,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    cache: PlanCache,
    metrics: Metrics,
    admission: Mutex<VecDeque<Pending>>,
    admitted: Condvar,
    exec: Mutex<VecDeque<Batch>>,
    exec_not_empty: Condvar,
    exec_not_full: Condvar,
    shutting_down: AtomicBool,
    batcher_done: AtomicBool,
    /// Abrupt-stop flag ([`ServeRuntime::crash`]): queued work is drained
    /// with [`ServeError::Crashed`] instead of being executed.
    crashed: AtomicBool,
    injector: Option<FaultInjector>,
}

/// Handles to the runtime's threads, held until shutdown.
struct Threads {
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// A concurrent MoE inference-serving runtime.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    threads: Mutex<Option<Threads>>,
}

impl std::fmt::Debug for ServeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRuntime").field("stats", &self.stats()).finish()
    }
}

impl ServeRuntime {
    /// Starts the runtime: one batcher thread plus the configured number
    /// of exec workers. Models are registered afterwards with
    /// [`register_model`](Self::register_model).
    pub fn start(config: ServeConfig) -> Arc<ServeRuntime> {
        let queue_depth = if config.queue_depth > 0 {
            config.queue_depth
        } else {
            env_queue_depth().unwrap_or(DEFAULT_QUEUE_DEPTH)
        };
        let exec_workers = pool::resolve_workers(config.exec_workers);
        let injector = config.fault.clone().map(FaultInjector::new);
        if injector.is_some() {
            silence_injected_panics();
        }
        let shared = Arc::new(Shared {
            queue_depth,
            // Enough slack that workers rarely idle, small enough that a
            // stalled executor backpressures the batcher quickly.
            exec_depth: exec_workers * 2,
            exec_workers,
            cache: PlanCache::new(config.plan_capacity),
            metrics: Metrics::new(),
            models: RwLock::new(HashMap::new()),
            admission: Mutex::new(VecDeque::new()),
            admitted: Condvar::new(),
            exec: Mutex::new(VecDeque::new()),
            exec_not_empty: Condvar::new(),
            exec_not_full: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            batcher_done: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            injector,
            config,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher")
        };
        let workers = (0..exec_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn exec worker")
            })
            .collect();
        Arc::new(ServeRuntime {
            shared,
            threads: Mutex::new(Some(Threads { batcher, workers })),
        })
    }

    /// Registers `cfg` under its `name`, building the canonical weights
    /// and the model's plan optimizer. The capacity factor is normalized
    /// to the expert count so routing is drop-free — the transparent-
    /// batching precondition (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if the name is already registered;
    /// [`ServeError::Plan`] if the model graph cannot be built.
    pub fn register_model(&self, cfg: GptMoeConfig) -> Result<()> {
        let cfg = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        let canonical = canonical_weights(&cfg, self.shared.config.seed)?;
        self.register_entry(cfg, canonical, None)
    }

    /// Registers `cfg` with caller-supplied weights — the model-store
    /// load path, where the canonical weights (and, optionally, the
    /// prepacked GEMM panels) come from a mapped store file instead of
    /// seeded generation. When `packs` is given, plan builds adopt the
    /// panels instead of re-packing, so a store-loaded replica's first
    /// plan build does no packing work at all.
    ///
    /// The capacity factor is normalized exactly as in
    /// [`register_model`](Self::register_model) — normalization never
    /// changes weight shapes, only routing capacity, so stored weights
    /// stay valid.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if the name is taken or the weights
    /// don't cover `cfg.gpus` devices; [`ServeError::Plan`] if the model
    /// graph cannot be built.
    pub fn register_model_with_weights(
        &self,
        cfg: GptMoeConfig,
        canonical: CanonicalWeights,
        packs: Option<PackSet>,
    ) -> Result<()> {
        let cfg = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        if canonical.len() != cfg.gpus {
            return Err(ServeError::BadRequest(format!(
                "weights cover {} devices, model `{}` needs {}",
                canonical.len(),
                cfg.name,
                cfg.gpus
            )));
        }
        if let Some(p) = &packs {
            if p.len() != cfg.gpus {
                return Err(ServeError::BadRequest(format!(
                    "packs cover {} devices, model `{}` needs {}",
                    p.len(),
                    cfg.name,
                    cfg.gpus
                )));
            }
        }
        self.register_entry(cfg, canonical, packs.map(Arc::new))
    }

    fn register_entry(
        &self,
        cfg: GptMoeConfig,
        canonical: CanonicalWeights,
        packs: Option<Arc<PackSet>>,
    ) -> Result<()> {
        let lancet = Lancet::new(
            ClusterSpec::of(self.shared.config.cluster, 1),
            cfg.gpus,
            LancetOptions {
                disable_partition: !self.shared.config.partition,
                ..LancetOptions::default()
            },
        );
        // Affinity dispatch: optimize an expert→worker plan against a
        // seeded synthetic routing histogram (Zipf skew + inter-layer
        // affinity). Workers play the role of devices, one per "node",
        // so the search spreads hot experts across the pool and the
        // dispatcher can aim each request at the worker holding its hot
        // expert. Deterministic per (model shape, runtime seed).
        let placement = if self.shared.config.affinity {
            let layers = cfg.moe_layers().len().max(1);
            let traffic = ExpertTraffic::synthetic(
                layers,
                cfg.experts(),
                4096,
                1.2,
                0.8,
                (cfg.hidden * 4) as u64,
                self.shared.config.seed,
            );
            let (plan, _) = optimize_placement(
                &traffic,
                self.shared.exec_workers,
                1,
                &PlacementOptions::default(),
            );
            Some(plan)
        } else {
            None
        };
        let mut models = self.shared.models.write().expect("models lock");
        if models.contains_key(&cfg.name) {
            return Err(ServeError::BadRequest(format!(
                "model `{}` is already registered",
                cfg.name
            )));
        }
        models.insert(
            cfg.name.clone(),
            Arc::new(ModelEntry { cfg, lancet, canonical, placement, packs }),
        );
        Ok(())
    }

    /// Submits one request — `ids` is a single sequence of token ids for
    /// `model` — and returns a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// Rejects immediately with [`ServeError::UnknownModel`] /
    /// [`ServeError::BadRequest`] on a malformed request,
    /// [`ServeError::Overloaded`] when the admission queue is at its
    /// bound, or [`ServeError::ShuttingDown`].
    pub fn submit(&self, model: &str, ids: Vec<f32>) -> Result<Ticket> {
        let shared = &self.shared;
        if shared.crashed.load(Ordering::Acquire) {
            return Err(ServeError::Crashed);
        }
        if shared.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let entry = {
            let models = shared.models.read().expect("models lock");
            models.get(model).cloned().ok_or_else(|| ServeError::UnknownModel(model.into()))?
        };
        if ids.len() != entry.cfg.seq {
            return Err(ServeError::BadRequest(format!(
                "{} token ids, model `{model}` serves sequences of {}",
                ids.len(),
                entry.cfg.seq
            )));
        }
        let vocab = entry.cfg.vocab as f32;
        if let Some(bad) = ids.iter().find(|&&t| t < 0.0 || t >= vocab || t.fract() != 0.0) {
            return Err(ServeError::BadRequest(format!(
                "token id {bad} outside vocabulary of {}",
                entry.cfg.vocab
            )));
        }

        let slot = Arc::new(ResponseSlot::new());
        {
            let mut queue = shared.admission.lock().expect("admission lock");
            if queue.len() >= shared.queue_depth {
                shared.metrics.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { depth: shared.queue_depth });
            }
            queue.push_back(Pending {
                model: model.into(),
                ids,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
        }
        shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        shared.admitted.notify_all();
        Ok(Ticket { slot })
    }

    /// [`submit`](Self::submit), then block for the response.
    ///
    /// # Errors
    ///
    /// Everything `submit` rejects with, plus execution-time failures.
    pub fn submit_blocking(&self, model: &str, ids: Vec<f32>) -> Result<Tensor> {
        self.submit(model, ids)?.wait()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        let depth = self.shared.admission.lock().expect("admission lock").len();
        self.shared.metrics.snapshot(depth, self.shared.cache.stats())
    }

    /// The plan cache (for inspection; plans are managed internally).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// The resolved admission-queue bound: the configured `queue_depth`,
    /// or — when that was `0` — `LANCET_SERVE_QUEUE_DEPTH`, falling back
    /// to the built-in default of 256.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_depth
    }

    /// Requests waiting in the admission queue right now. Cheap (one
    /// lock, no snapshot) — the fleet front-end polls this per submit
    /// for its work-stealing decision.
    pub fn queue_len(&self) -> usize {
        self.shared.admission.lock().expect("admission lock").len()
    }

    /// Pre-builds `model`'s execution plan for every batch bucket
    /// (1, 2, 4, …, up to `max_batch` rounded to a power of two) into the
    /// plan cache, so the first real requests measure steady-state
    /// service instead of plan compilation. Management-plane operation:
    /// it bypasses admission, batching, and fault injection, and is
    /// idempotent — buckets already cached are left untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if `model` was never registered;
    /// [`ServeError::Plan`] if a plan cannot be built.
    pub fn warm_model(&self, model: &str) -> Result<()> {
        let entry = {
            let models = self.shared.models.read().expect("models lock");
            models.get(model).cloned().ok_or_else(|| ServeError::UnknownModel(model.into()))?
        };
        let top = bucket_for(self.shared.config.max_batch);
        let mut bucket = 1usize;
        loop {
            let key = PlanKey {
                model: model.into(),
                bucket,
                seq: entry.cfg.seq,
                cluster: self.shared.config.cluster,
                gpus: entry.cfg.gpus,
            };
            self.shared.cache.get_or_insert_with(&key, || {
                Plan::build_with_packs(
                    &entry.lancet,
                    &entry.cfg,
                    bucket,
                    &entry.canonical,
                    entry.packs.as_deref(),
                )
            })?;
            if bucket >= top {
                break;
            }
            bucket *= 2;
        }
        Ok(())
    }

    /// Records one request's end-to-end latency (used by `serve-bench`
    /// to attribute the full submit→response time, including the
    /// caller-side wait the runtime can't see).
    #[doc(hidden)]
    pub fn record_external_latency(&self, ms: f64) {
        self.shared.metrics.record_latency(ms);
    }

    /// Stops admissions, drains both queues (every in-flight request
    /// still gets its response), and joins all runtime threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        let threads = self.threads.lock().expect("threads lock").take();
        let Some(threads) = threads else { return };
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.admitted.notify_all();
        threads.batcher.join().expect("batcher panicked");
        self.shared.batcher_done.store(true, Ordering::Release);
        self.shared.exec_not_empty.notify_all();
        for worker in threads.workers {
            worker.join().expect("exec worker panicked");
        }
    }

    /// Kills the replica abruptly (chaos testing / fleet fail-over
    /// drills). Unlike [`shutdown`](Self::shutdown) — which executes
    /// everything already admitted — `crash` answers every *queued*
    /// request with [`ServeError::Crashed`] without executing it.
    /// Batches a worker had already started still complete and deliver
    /// normally (they are in no queue), preserving exactly-once
    /// delivery: after `crash` returns, every admitted request has been
    /// answered — with its response or with `Crashed` — and
    /// [`ServeStats::outstanding`] is zero.
    ///
    /// Idempotent, and a later `shutdown` (or `Drop`) is a no-op.
    ///
    /// [`ServeStats::outstanding`]: crate::ServeStats::outstanding
    pub fn crash(&self) {
        let threads = self.threads.lock().expect("threads lock").take();
        let shared = &self.shared;
        shared.crashed.store(true, Ordering::Release);
        shared.shutting_down.store(true, Ordering::Release);
        shared.admitted.notify_all();
        shared.exec_not_full.notify_all();
        shared.exec_not_empty.notify_all();
        if let Some(threads) = threads {
            threads.batcher.join().expect("batcher panicked");
            shared.batcher_done.store(true, Ordering::Release);
            shared.exec_not_empty.notify_all();
            for worker in threads.workers {
                worker.join().expect("exec worker panicked");
            }
        }
        // All threads are gone; whatever is still queued was admitted but
        // never started. Drain it with the typed crash error.
        let queued: Vec<Pending> = shared
            .admission
            .lock()
            .expect("admission lock")
            .drain(..)
            .chain(
                shared
                    .exec
                    .lock()
                    .expect("exec lock")
                    .drain(..)
                    .flat_map(|batch| batch.entries),
            )
            .collect();
        deliver_crashed(shared, queued);
    }
}

/// Answers `entries` with [`ServeError::Crashed`], counting each.
fn deliver_crashed(shared: &Shared, entries: Vec<Pending>) {
    for pending in entries {
        shared.metrics.crashed.fetch_add(1, Ordering::Relaxed);
        let delivered = pending.slot.deliver(Err(ServeError::Crashed));
        debug_assert!(delivered, "a queued request cannot already have a response");
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The smallest power-of-two bucket that fits `n` requests.
fn bucket_for(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// The batcher: groups admitted requests into per-model buckets, shedding
/// the ones whose latency budget expired, and feeds the exec queue.
/// Exits once shutdown is flagged *and* the admission queue is drained.
fn batcher_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.admission.lock().expect("admission lock");
            loop {
                // A crash is abrupt: leave everything queued for the
                // crash drain instead of batching it.
                if shared.crashed.load(Ordering::Acquire) {
                    return;
                }
                shed_expired(shared, &mut queue);
                let Some(front) = queue.front() else {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared.admitted.wait(queue).expect("admission lock");
                    continue;
                };
                let model = front.model.clone();
                let waited = front.enqueued.elapsed();
                let matching = queue.iter().filter(|p| p.model == model).count();
                let draining = shared.shutting_down.load(Ordering::Acquire);
                if matching >= shared.config.max_batch
                    || waited >= shared.config.batch_window
                    || draining
                {
                    break extract(&mut queue, &model, shared.config.max_batch);
                }
                let (q, _) = shared
                    .admitted
                    .wait_timeout(queue, shared.config.batch_window - waited)
                    .expect("admission lock");
                queue = q;
            }
        };
        // Injected queue stall: the batcher freezes with the batch in
        // hand (admission lock released — submitters keep queueing).
        if let Some(inj) = &shared.injector {
            if let Some(delay) = inj.batcher_stall() {
                shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
            }
        }
        let mut batch = batch;
        batch.preferred = preferred_worker(shared, &batch);
        push_batch(shared, batch);
    }
}

/// Sheds queued requests that have out-waited the latency budget.
fn shed_expired(shared: &Shared, queue: &mut VecDeque<Pending>) {
    let budget = shared.config.latency_budget;
    if budget.is_zero() {
        return;
    }
    let mut kept = VecDeque::with_capacity(queue.len());
    for pending in queue.drain(..) {
        let waited = pending.enqueued.elapsed();
        if waited > budget {
            shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            let delivered = pending.slot.deliver(Err(ServeError::DeadlineExceeded {
                waited_ms: waited.as_secs_f64() * 1e3,
            }));
            debug_assert!(delivered, "a queued request cannot already have a response");
        } else {
            kept.push_back(pending);
        }
    }
    *queue = kept;
}

/// Removes up to `max` requests for `model` from the queue (preserving
/// the relative order of everything else) and wraps them in a batch.
fn extract(queue: &mut VecDeque<Pending>, model: &str, max: usize) -> Batch {
    let mut entries = Vec::new();
    let mut rest = VecDeque::with_capacity(queue.len());
    for pending in queue.drain(..) {
        if pending.model == model && entries.len() < max {
            entries.push(pending);
        } else {
            rest.push_back(pending);
        }
    }
    *queue = rest;
    Batch { model: model.into(), entries, preferred: None }
}

/// Blocks until the (bounded) exec queue has room, then enqueues. If the
/// runtime crashes while the batcher is blocked here, the in-hand batch
/// is answered with [`ServeError::Crashed`] (it can no longer execute —
/// the workers are exiting).
fn push_batch(shared: &Shared, batch: Batch) {
    let mut exec = shared.exec.lock().expect("exec lock");
    while exec.len() >= shared.exec_depth {
        if shared.crashed.load(Ordering::Acquire) {
            drop(exec);
            deliver_crashed(shared, batch.entries);
            return;
        }
        exec = shared.exec_not_full.wait(exec).expect("exec lock");
    }
    exec.push_back(batch);
    drop(exec);
    shared.exec_not_empty.notify_one();
}

/// An exec worker: pops batches, resolves their plan through the cache,
/// executes, and delivers per-request responses. Exits once the batcher
/// is done and the exec queue is empty.
fn worker_loop(shared: &Shared, index: usize) {
    loop {
        let batch = {
            let mut exec = shared.exec.lock().expect("exec lock");
            loop {
                // A crash is abrupt: stop picking up queued batches (the
                // crash drain answers them). The batch this worker may
                // already be running is not in any queue and completes.
                if shared.crashed.load(Ordering::Acquire) {
                    return;
                }
                // Affinity: take the first batch preferring this worker;
                // otherwise steal the front one (preference is soft — a
                // free worker never idles while work is queued).
                let pick = exec
                    .iter()
                    .position(|b| b.preferred == Some(index))
                    .or(if exec.is_empty() { None } else { Some(0) });
                if let Some(at) = pick {
                    let batch = exec.remove(at).expect("picked position exists");
                    shared.exec_not_full.notify_one();
                    break batch;
                }
                if shared.batcher_done.load(Ordering::Acquire) {
                    return;
                }
                exec = shared.exec_not_empty.wait(exec).expect("exec lock");
            }
        };
        if let Some(preferred) = batch.preferred {
            let requests = batch.entries.len() as u64;
            if preferred == index {
                shared.metrics.placement_hits.fetch_add(requests, Ordering::Relaxed);
            } else {
                shared.metrics.placement_misses.fetch_add(requests, Ordering::Relaxed);
            }
        }
        run_batch(shared, batch);
    }
}

/// The worker a batch should land on: each request's hot expert (a
/// deterministic hash-gate proxy over its token ids — serving has no
/// routed activations to inspect at dispatch time) is mapped through the
/// model's layer-0 placement, and the batch majority wins (ties toward
/// the lower worker index). `None` when affinity is off or the model has
/// no plan.
fn preferred_worker(shared: &Shared, batch: &Batch) -> Option<usize> {
    if !shared.config.affinity || batch.entries.is_empty() {
        return None;
    }
    let entry = {
        let models = shared.models.read().expect("models lock");
        models.get(&batch.model).cloned()?
    };
    let plan = entry.placement.as_ref()?;
    let experts = entry.cfg.experts();
    let mut votes = vec![0usize; shared.exec_workers.max(1)];
    for pending in &batch.entries {
        let worker = plan.device_of(0, hot_expert(&pending.ids, experts));
        if let Some(v) = votes.get_mut(worker) {
            *v += 1;
        }
    }
    let (worker, &count) = votes.iter().enumerate().max_by_key(|&(i, &v)| (v, usize::MAX - i))?;
    if count == 0 { None } else { Some(worker) }
}

/// The expert a request's tokens concentrate on, by a deterministic
/// hash gate: each token id hashes to an expert, the most-hit expert
/// wins (ties toward the lower index). A stand-in for the first MoE
/// layer's gate — cheap, stateless, and stable across replays.
fn hot_expert(ids: &[f32], experts: usize) -> usize {
    let experts = experts.max(1);
    let mut counts = vec![0u32; experts];
    for &id in ids {
        let mut h = (id.to_bits() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        counts[(h % experts as u64) as usize] += 1;
    }
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

// True on this thread while an *injected* panic unwinds (so the panic
// hook stays quiet for chaos the runtime is about to catch anyway).
thread_local! {
    static INJECTED_PANIC: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses the report
/// for injected panics and delegates everything else to the previous
/// hook. Only called when fault injection is configured.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !INJECTED_PANIC.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// A human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".into()
    }
}

/// Executes one micro-batch and delivers every response exactly once —
/// even if the serve path panics.
fn run_batch(shared: &Shared, batch: Batch) {
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared.metrics.batched_requests.fetch_add(batch.entries.len() as u64, Ordering::Relaxed);
    let Batch { model, entries, preferred: _ } = batch;

    // Per-request timeout: answer requests that are already past their
    // end-to-end deadline instead of spending executor time on them.
    let timeout = shared.config.request_timeout;
    let mut live = Vec::with_capacity(entries.len());
    for pending in entries {
        let waited = pending.enqueued.elapsed();
        if !timeout.is_zero() && waited > timeout {
            shared.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
            let delivered = pending
                .slot
                .deliver(Err(ServeError::TimedOut { waited_ms: waited.as_secs_f64() * 1e3 }));
            debug_assert!(delivered, "a queued request cannot already have a response");
        } else {
            live.push(pending);
        }
    }
    if live.is_empty() {
        return;
    }

    // Panic isolation: hold every slot outside the unwind boundary, so a
    // panicking serve path (injected or real) still answers each request
    // whose response hadn't been delivered when the panic hit.
    let slots: Vec<Arc<ResponseSlot>> = live.iter().map(|p| Arc::clone(&p.slot)).collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve_entries(shared, &model, live);
    }));
    INJECTED_PANIC.with(|f| f.set(false));
    if let Err(payload) = outcome {
        let why = panic_message(payload.as_ref());
        shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
        for slot in &slots {
            // First-write-wins: requests answered before the panic keep
            // their responses; only the rest see the panic error.
            if slot.deliver(Err(ServeError::WorkerPanic(why.clone()))) {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Serves `entries` as one bucket: execute (with bounded retry on
/// transient failures), degrade to two half-sized buckets if the plan
/// cannot be built, and deliver every response.
fn serve_entries(shared: &Shared, model: &str, entries: Vec<Pending>) {
    let bucket = bucket_for(entries.len());
    let mut attempt = 0u32;
    let result = loop {
        match execute_entries(shared, model, bucket, &entries) {
            // Transient execution failure: bounded retry with doubling
            // backoff. Plan failures are not retried — a deterministic
            // build fails the same way every time; they degrade below.
            Err(ServeError::Exec(_)) if attempt < shared.config.max_retries => {
                shared.metrics.retried.fetch_add(1, Ordering::Relaxed);
                let backoff = shared.config.retry_backoff * 2u32.saturating_pow(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
            other => break other,
        }
    };
    match result {
        Ok((plan, logits)) => {
            for (row, pending) in entries.iter().enumerate() {
                let response = plan.response(&logits, row);
                let waited_ms = pending.enqueued.elapsed().as_secs_f64() * 1e3;
                // Count before delivering: a waiter that wakes on this
                // response must already see it in the stats ledger.
                shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record_latency(waited_ms);
                let delivered = pending.slot.deliver(Ok(response));
                debug_assert!(delivered, "double delivery for a batched request");
            }
        }
        Err(ServeError::Plan(_)) if entries.len() > 1 => {
            // Graceful degradation: the bucket's plan can't be built, so
            // split the batch and serve each half under a smaller bucket
            // (whose plan builds independently). Recursion bottoms out at
            // single-request batches, which deliver the error typed.
            shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
            let mut front = entries;
            let back = front.split_off(front.len() / 2);
            serve_entries(shared, model, front);
            serve_entries(shared, model, back);
        }
        Err(err) => {
            for pending in &entries {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                let delivered = pending.slot.deliver(Err(err.clone()));
                debug_assert!(delivered, "double delivery for a failed request");
            }
        }
    }
}

/// One execution attempt: resolve the plan (through the cache), pad the
/// `[bucket, seq]` id tensor, run it. Fault-injection sites live here —
/// each fires at most once per attempt, so retries redraw their fate.
fn execute_entries(
    shared: &Shared,
    model: &str,
    bucket: usize,
    entries: &[Pending],
) -> Result<(Arc<Plan>, Tensor)> {
    if let Some(inj) = &shared.injector {
        if let Some(delay) = inj.worker_delay() {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if inj.worker_panic() {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            INJECTED_PANIC.with(|f| f.set(true));
            panic!("injected worker panic");
        }
    }
    let entry = {
        let models = shared.models.read().expect("models lock");
        models.get(model).cloned().ok_or_else(|| ServeError::UnknownModel(model.into()))?
    };
    let key = PlanKey {
        model: model.into(),
        bucket,
        seq: entry.cfg.seq,
        cluster: shared.config.cluster,
        gpus: entry.cfg.gpus,
    };
    let plan = shared.cache.get_or_insert_with(&key, || {
        // Plan faults fire inside the build closure: cache hits are
        // immune, exactly like a real optimizer failure would be.
        if let Some(inj) = &shared.injector {
            if inj.plan_fault() {
                shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Plan("injected plan-build fault".into()));
            }
        }
        Plan::build_with_packs(
            &entry.lancet,
            &entry.cfg,
            bucket,
            &entry.canonical,
            entry.packs.as_deref(),
        )
    })?;

    let seq = entry.cfg.seq;
    // Pad with token id 0 — rows are independent under drop-free
    // routing, so padding never leaks into a real request's response.
    let mut data = vec![0.0f32; bucket * seq];
    for (row, pending) in entries.iter().enumerate() {
        data[row * seq..(row + 1) * seq].copy_from_slice(&pending.ids);
    }
    let ids = Tensor::from_vec(vec![bucket, seq], data)
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    if let Some(inj) = &shared.injector {
        if inj.exec_fault() {
            shared.metrics.injected_faults.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Exec("injected transient execution fault".into()));
        }
    }
    let exec_started = Instant::now();
    let logits = plan.execute(&ids)?;
    // Device emulation: pad the batch out to the configured service
    // floor, so fleet-scaling runs on small hosts see accelerator-like
    // fixed service times instead of CPU contention.
    let floor = shared.config.service_floor;
    if !floor.is_zero() {
        let elapsed = exec_started.elapsed();
        if elapsed < floor {
            std::thread::sleep(floor - elapsed);
        }
    }
    Ok((plan, logits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_for(0), 1);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(3), 4);
        assert_eq!(bucket_for(8), 8);
        assert_eq!(bucket_for(9), 16);
    }

    #[test]
    fn queue_depth_env_parsing() {
        // Only exercises the parse helper (process-global env mutation
        // is unsafe under parallel tests).
        assert_eq!(env_queue_depth().or(Some(DEFAULT_QUEUE_DEPTH)).map(|d| d > 0), Some(true));
    }
}
