//! The serving runtime: admission control, deadline-bounded
//! micro-batching, and plan-cached execution on a worker pool.
//!
//! # Thread topology
//!
//! ```text
//! submitters ──► admission queue ──► batcher ──► exec queue ──► workers
//!    (N)          (bounded:          (1 thread,   (bounded)      (M threads,
//!                  Overloaded         groups by                   plan cache +
//!                  past depth)        model into                  Executor)
//!                                     buckets)
//! ```
//!
//! Both queues are bounded, so overload surfaces as a typed
//! [`ServeError::Overloaded`] at the door instead of unbounded memory
//! growth, and a slow executor backpressures the batcher rather than
//! letting batches pile up. Requests that out-wait their latency budget
//! are shed with [`ServeError::DeadlineExceeded`] before execution —
//! running them would spend executor time on an answer that is already
//! useless.
//!
//! # Transparent batching
//!
//! Registration normalizes each model's capacity factor to its expert
//! count, which makes routing *drop-free*: every expert can absorb every
//! token, so no token's output depends on what else shares its
//! micro-batch. Combined with the executor's fixed per-element reduction
//! order, a batched response is bit-identical to what solo (batch = 1)
//! serving would have produced — micro-batching is purely a throughput
//! optimization, invisible in the output bits (covered by the
//! `batched_responses_bit_identical_to_solo` integration test).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_models::GptMoeConfig;
use lancet_tensor::{pool, Tensor};

use crate::cache::PlanCache;
use crate::plan::{canonical_weights, CanonicalWeights, Plan, PlanKey};
use crate::stats::{Metrics, ServeStats};
use crate::{Result, ServeError};

/// Fallback admission-queue depth when neither the config nor
/// `LANCET_SERVE_QUEUE_DEPTH` specifies one.
const DEFAULT_QUEUE_DEPTH: usize = 256;

/// `LANCET_SERVE_QUEUE_DEPTH`, parsed per call (tests mutate it).
/// Unset, empty, unparsable, or `0` all mean "use the default".
fn env_queue_depth() -> Option<usize> {
    std::env::var("LANCET_SERVE_QUEUE_DEPTH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Serving-runtime knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Device generation the plan optimizer's cost models target.
    pub cluster: ClusterKind,
    /// Admission-queue bound; requests beyond it are rejected with
    /// [`ServeError::Overloaded`]. `0` reads `LANCET_SERVE_QUEUE_DEPTH`,
    /// falling back to 256.
    pub queue_depth: usize,
    /// Most requests per micro-batch (buckets are powers of two up to
    /// this, rounded up).
    pub max_batch: usize,
    /// How long the batcher waits for a full batch before dispatching a
    /// partial one. Zero dispatches immediately (no batching delay).
    pub batch_window: Duration,
    /// Per-request queueing budget; requests that wait longer are shed
    /// with [`ServeError::DeadlineExceeded`]. Zero disables shedding.
    pub latency_budget: Duration,
    /// Executor worker threads. `0` resolves like the compute pool's
    /// worker knob (`LANCET_WORKERS`, then machine size).
    pub exec_workers: usize,
    /// Plan-cache capacity (plans, not bytes).
    pub plan_capacity: usize,
    /// Run the Lancet partition pass when building plans. Costs more at
    /// plan-build time (all of it amortized by the cache), buys the
    /// paper's overlap schedule inside each plan.
    pub partition: bool,
    /// Seed for canonical weight initialization.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cluster: ClusterKind::A100,
            queue_depth: 0,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            latency_budget: Duration::ZERO,
            exec_workers: 0,
            plan_capacity: 16,
            partition: true,
            seed: 0x5e4e,
        }
    }
}

/// One registered model: its (capacity-normalized) config, a dedicated
/// optimizer whose partition memo is shared by every bucket's plan
/// build, and the canonical name-keyed weights every plan binds.
#[derive(Debug)]
struct ModelEntry {
    cfg: GptMoeConfig,
    lancet: Lancet,
    canonical: CanonicalWeights,
}

/// A request waiting in a queue.
struct Pending {
    model: String,
    ids: Vec<f32>,
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

/// A micro-batch handed from the batcher to an exec worker.
struct Batch {
    model: String,
    bucket: usize,
    entries: Vec<Pending>,
}

/// The write-once response cell behind a [`Ticket`].
#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<Option<Result<Tensor>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot { state: Mutex::new(None), ready: Condvar::new() }
    }

    /// First delivery wins; returns whether this call was it.
    fn deliver(&self, result: Result<Tensor>) -> bool {
        let mut state = self.state.lock().expect("slot lock");
        if state.is_some() {
            return false;
        }
        *state = Some(result);
        self.ready.notify_all();
        true
    }
}

/// A claim on one request's eventual response. Waiting consumes the
/// ticket, so a response can be received at most once — together with
/// the slot's write-once cell this gives exactly-once delivery.
#[must_use = "an unawaited ticket discards its response"]
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the response (or rejection) arrives.
    pub fn wait(self) -> Result<Tensor> {
        let mut state = self.slot.state.lock().expect("slot lock");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.ready.wait(state).expect("slot lock");
        }
    }
}

/// State shared by submitters, the batcher, and the exec workers.
struct Shared {
    config: ServeConfig,
    queue_depth: usize,
    exec_depth: usize,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    cache: PlanCache,
    metrics: Metrics,
    admission: Mutex<VecDeque<Pending>>,
    admitted: Condvar,
    exec: Mutex<VecDeque<Batch>>,
    exec_not_empty: Condvar,
    exec_not_full: Condvar,
    shutting_down: AtomicBool,
    batcher_done: AtomicBool,
}

/// Handles to the runtime's threads, held until shutdown.
struct Threads {
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// A concurrent MoE inference-serving runtime.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    threads: Mutex<Option<Threads>>,
}

impl std::fmt::Debug for ServeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRuntime").field("stats", &self.stats()).finish()
    }
}

impl ServeRuntime {
    /// Starts the runtime: one batcher thread plus the configured number
    /// of exec workers. Models are registered afterwards with
    /// [`register_model`](Self::register_model).
    pub fn start(config: ServeConfig) -> Arc<ServeRuntime> {
        let queue_depth = if config.queue_depth > 0 {
            config.queue_depth
        } else {
            env_queue_depth().unwrap_or(DEFAULT_QUEUE_DEPTH)
        };
        let exec_workers = pool::resolve_workers(config.exec_workers);
        let shared = Arc::new(Shared {
            queue_depth,
            // Enough slack that workers rarely idle, small enough that a
            // stalled executor backpressures the batcher quickly.
            exec_depth: exec_workers * 2,
            cache: PlanCache::new(config.plan_capacity),
            metrics: Metrics::new(),
            models: RwLock::new(HashMap::new()),
            admission: Mutex::new(VecDeque::new()),
            admitted: Condvar::new(),
            exec: Mutex::new(VecDeque::new()),
            exec_not_empty: Condvar::new(),
            exec_not_full: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            batcher_done: AtomicBool::new(false),
            config,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher")
        };
        let workers = (0..exec_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn exec worker")
            })
            .collect();
        Arc::new(ServeRuntime {
            shared,
            threads: Mutex::new(Some(Threads { batcher, workers })),
        })
    }

    /// Registers `cfg` under its `name`, building the canonical weights
    /// and the model's plan optimizer. The capacity factor is normalized
    /// to the expert count so routing is drop-free — the transparent-
    /// batching precondition (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if the name is already registered;
    /// [`ServeError::Plan`] if the model graph cannot be built.
    pub fn register_model(&self, cfg: GptMoeConfig) -> Result<()> {
        let cfg = cfg.clone().with_capacity_factor(cfg.experts() as f64);
        let canonical = canonical_weights(&cfg, self.shared.config.seed)?;
        let lancet = Lancet::new(
            ClusterSpec::of(self.shared.config.cluster, 1),
            cfg.gpus,
            LancetOptions {
                disable_partition: !self.shared.config.partition,
                ..LancetOptions::default()
            },
        );
        let mut models = self.shared.models.write().expect("models lock");
        if models.contains_key(&cfg.name) {
            return Err(ServeError::BadRequest(format!(
                "model `{}` is already registered",
                cfg.name
            )));
        }
        models.insert(cfg.name.clone(), Arc::new(ModelEntry { cfg, lancet, canonical }));
        Ok(())
    }

    /// Submits one request — `ids` is a single sequence of token ids for
    /// `model` — and returns a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// Rejects immediately with [`ServeError::UnknownModel`] /
    /// [`ServeError::BadRequest`] on a malformed request,
    /// [`ServeError::Overloaded`] when the admission queue is at its
    /// bound, or [`ServeError::ShuttingDown`].
    pub fn submit(&self, model: &str, ids: Vec<f32>) -> Result<Ticket> {
        let shared = &self.shared;
        if shared.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let entry = {
            let models = shared.models.read().expect("models lock");
            models.get(model).cloned().ok_or_else(|| ServeError::UnknownModel(model.into()))?
        };
        if ids.len() != entry.cfg.seq {
            return Err(ServeError::BadRequest(format!(
                "{} token ids, model `{model}` serves sequences of {}",
                ids.len(),
                entry.cfg.seq
            )));
        }
        let vocab = entry.cfg.vocab as f32;
        if let Some(bad) = ids.iter().find(|&&t| t < 0.0 || t >= vocab || t.fract() != 0.0) {
            return Err(ServeError::BadRequest(format!(
                "token id {bad} outside vocabulary of {}",
                entry.cfg.vocab
            )));
        }

        let slot = Arc::new(ResponseSlot::new());
        {
            let mut queue = shared.admission.lock().expect("admission lock");
            if queue.len() >= shared.queue_depth {
                shared.metrics.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { depth: shared.queue_depth });
            }
            queue.push_back(Pending {
                model: model.into(),
                ids,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
        }
        shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        shared.admitted.notify_all();
        Ok(Ticket { slot })
    }

    /// [`submit`](Self::submit), then block for the response.
    ///
    /// # Errors
    ///
    /// Everything `submit` rejects with, plus execution-time failures.
    pub fn submit_blocking(&self, model: &str, ids: Vec<f32>) -> Result<Tensor> {
        self.submit(model, ids)?.wait()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        let depth = self.shared.admission.lock().expect("admission lock").len();
        self.shared.metrics.snapshot(depth, self.shared.cache.stats())
    }

    /// The plan cache (for inspection; plans are managed internally).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// Records one request's end-to-end latency (used by `serve-bench`
    /// to attribute the full submit→response time, including the
    /// caller-side wait the runtime can't see).
    #[doc(hidden)]
    pub fn record_external_latency(&self, ms: f64) {
        self.shared.metrics.record_latency(ms);
    }

    /// Stops admissions, drains both queues (every in-flight request
    /// still gets its response), and joins all runtime threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        let threads = self.threads.lock().expect("threads lock").take();
        let Some(threads) = threads else { return };
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.admitted.notify_all();
        threads.batcher.join().expect("batcher panicked");
        self.shared.batcher_done.store(true, Ordering::Release);
        self.shared.exec_not_empty.notify_all();
        for worker in threads.workers {
            worker.join().expect("exec worker panicked");
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The smallest power-of-two bucket that fits `n` requests.
fn bucket_for(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// The batcher: groups admitted requests into per-model buckets, shedding
/// the ones whose latency budget expired, and feeds the exec queue.
/// Exits once shutdown is flagged *and* the admission queue is drained.
fn batcher_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.admission.lock().expect("admission lock");
            loop {
                shed_expired(shared, &mut queue);
                let Some(front) = queue.front() else {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared.admitted.wait(queue).expect("admission lock");
                    continue;
                };
                let model = front.model.clone();
                let waited = front.enqueued.elapsed();
                let matching = queue.iter().filter(|p| p.model == model).count();
                let draining = shared.shutting_down.load(Ordering::Acquire);
                if matching >= shared.config.max_batch
                    || waited >= shared.config.batch_window
                    || draining
                {
                    break extract(&mut queue, &model, shared.config.max_batch);
                }
                let (q, _) = shared
                    .admitted
                    .wait_timeout(queue, shared.config.batch_window - waited)
                    .expect("admission lock");
                queue = q;
            }
        };
        push_batch(shared, batch);
    }
}

/// Sheds queued requests that have out-waited the latency budget.
fn shed_expired(shared: &Shared, queue: &mut VecDeque<Pending>) {
    let budget = shared.config.latency_budget;
    if budget.is_zero() {
        return;
    }
    let mut kept = VecDeque::with_capacity(queue.len());
    for pending in queue.drain(..) {
        let waited = pending.enqueued.elapsed();
        if waited > budget {
            shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            let delivered = pending.slot.deliver(Err(ServeError::DeadlineExceeded {
                waited_ms: waited.as_secs_f64() * 1e3,
            }));
            debug_assert!(delivered, "a queued request cannot already have a response");
        } else {
            kept.push_back(pending);
        }
    }
    *queue = kept;
}

/// Removes up to `max` requests for `model` from the queue (preserving
/// the relative order of everything else) and wraps them in a batch.
fn extract(queue: &mut VecDeque<Pending>, model: &str, max: usize) -> Batch {
    let mut entries = Vec::new();
    let mut rest = VecDeque::with_capacity(queue.len());
    for pending in queue.drain(..) {
        if pending.model == model && entries.len() < max {
            entries.push(pending);
        } else {
            rest.push_back(pending);
        }
    }
    *queue = rest;
    Batch { model: model.into(), bucket: bucket_for(entries.len()), entries }
}

/// Blocks until the (bounded) exec queue has room, then enqueues.
fn push_batch(shared: &Shared, batch: Batch) {
    let mut exec = shared.exec.lock().expect("exec lock");
    while exec.len() >= shared.exec_depth {
        exec = shared.exec_not_full.wait(exec).expect("exec lock");
    }
    exec.push_back(batch);
    drop(exec);
    shared.exec_not_empty.notify_one();
}

/// An exec worker: pops batches, resolves their plan through the cache,
/// executes, and delivers per-request responses. Exits once the batcher
/// is done and the exec queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut exec = shared.exec.lock().expect("exec lock");
            loop {
                if let Some(batch) = exec.pop_front() {
                    shared.exec_not_full.notify_one();
                    break batch;
                }
                if shared.batcher_done.load(Ordering::Acquire) {
                    return;
                }
                exec = shared.exec_not_empty.wait(exec).expect("exec lock");
            }
        };
        run_batch(shared, batch);
    }
}

/// Executes one micro-batch and delivers every response exactly once.
fn run_batch(shared: &Shared, batch: Batch) {
    let outcome = execute_batch(shared, &batch);
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared.metrics.batched_requests.fetch_add(batch.entries.len() as u64, Ordering::Relaxed);
    match outcome {
        Ok((plan, logits)) => {
            for (row, pending) in batch.entries.iter().enumerate() {
                let response = plan.response(&logits, row);
                let waited_ms = pending.enqueued.elapsed().as_secs_f64() * 1e3;
                // Count before delivering: a waiter that wakes on this
                // response must already see it in the stats ledger.
                shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record_latency(waited_ms);
                let delivered = pending.slot.deliver(Ok(response));
                debug_assert!(delivered, "double delivery for a batched request");
            }
        }
        Err(err) => {
            for pending in &batch.entries {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                let delivered = pending.slot.deliver(Err(err.clone()));
                debug_assert!(delivered, "double delivery for a failed request");
            }
        }
    }
}

/// Resolves the batch's plan (through the cache) and runs it over the
/// padded `[bucket, seq]` id tensor.
fn execute_batch(shared: &Shared, batch: &Batch) -> Result<(Arc<Plan>, Tensor)> {
    let entry = {
        let models = shared.models.read().expect("models lock");
        models
            .get(&batch.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(batch.model.clone()))?
    };
    let key = PlanKey {
        model: batch.model.clone(),
        bucket: batch.bucket,
        cluster: shared.config.cluster,
        gpus: entry.cfg.gpus,
    };
    let plan = shared
        .cache
        .get_or_insert_with(&key, || Plan::build(&entry.lancet, &entry.cfg, batch.bucket, &entry.canonical))?;

    let seq = entry.cfg.seq;
    // Pad with token id 0 — rows are independent under drop-free
    // routing, so padding never leaks into a real request's response.
    let mut data = vec![0.0f32; batch.bucket * seq];
    for (row, pending) in batch.entries.iter().enumerate() {
        data[row * seq..(row + 1) * seq].copy_from_slice(&pending.ids);
    }
    let ids = Tensor::from_vec(vec![batch.bucket, seq], data)
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let logits = plan.execute(&ids)?;
    Ok((plan, logits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_for(0), 1);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(3), 4);
        assert_eq!(bucket_for(8), 8);
        assert_eq!(bucket_for(9), 16);
    }

    #[test]
    fn queue_depth_env_parsing() {
        // Only exercises the parse helper (process-global env mutation
        // is unsafe under parallel tests).
        assert_eq!(env_queue_depth().or(Some(DEFAULT_QUEUE_DEPTH)).map(|d| d > 0), Some(true));
    }
}
