//! `lancet-serve`: a concurrent MoE inference-serving runtime on top of
//! the Lancet optimizer stack.
//!
//! Training amortizes the Lancet compiler passes over thousands of
//! identical iterations; serving sees a *stream* of small, deadline-bound
//! requests. This crate closes that gap with three pieces:
//!
//! 1. a **micro-batcher** that groups incoming requests into power-of-two
//!    shape buckets within a bounded batching window,
//! 2. a **plan cache** that maps (model, bucket, cluster) to an optimized
//!    plan — the forward graph after the Lancet partition pass, pre-bound
//!    to the model's weights — so the optimizer's cost is paid once per
//!    key instead of once per request, and
//! 3. **admission control**: a bounded queue that rejects excess load
//!    with a typed [`ServeError::Overloaded`], plus an optional
//!    per-request latency budget that sheds already-late requests.
//!
//! Micro-batching is *transparent*: registration normalizes the model's
//! capacity factor so expert routing is drop-free, which together with
//! the executor's fixed reduction order makes every batched response
//! bit-identical to solo serving. Batching changes throughput, never
//! output bits.
//!
//! The runtime is built to *survive* faults, and ships its own chaos
//! harness to prove it: a seeded [`FaultSpec`] injects slow workers,
//! worker panics, transient execution failures, plan-build failures, and
//! batcher stalls deterministically, while per-request timeouts, bounded
//! retry with backoff, batch degradation to smaller buckets, and panic
//! isolation keep the exactly-once response contract — every admitted
//! request gets exactly one reply or one typed [`ServeError`]. Fault and
//! recovery counters surface in [`ServeStats`].
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use lancet_ir::GateKind;
//! use lancet_models::GptMoeConfig;
//! use lancet_serve::{ServeConfig, ServeRuntime};
//!
//! let runtime = ServeRuntime::start(ServeConfig {
//!     max_batch: 4,
//!     batch_window: Duration::from_millis(1),
//!     ..ServeConfig::default()
//! });
//! let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
//! runtime.register_model(cfg.clone())?;
//!
//! let logits = runtime.submit_blocking(&cfg.name, vec![1.0, 2.0, 3.0, 4.0])?;
//! assert_eq!(logits.shape(), &[cfg.seq, cfg.vocab]);
//! assert!(runtime.stats().completed >= 1);
//! runtime.shutdown();
//! # Ok::<(), lancet_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod error;
mod fault;
mod plan;
mod runtime;
mod stats;
mod trace;

pub use cache::{CacheStats, PlanCache};
pub use error::{Result, ServeError};
pub use fault::{FaultInjector, FaultSpec};
pub use plan::{canonical_weights, CanonicalWeights, PackSet, Plan, PlanKey};
pub use runtime::{ServeConfig, ServeRuntime, Ticket};
pub use stats::{Metrics, ServeStats};
pub use trace::{open_loop_trace, replay_open_loop, Lcg, ReplayReport, TraceRequest};
