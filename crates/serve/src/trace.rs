//! Deterministic synthetic request traces.
//!
//! Serving benchmarks replay an *open-loop* arrival process: requests
//! arrive on a wall-clock schedule regardless of whether the server keeps
//! up, which is what exposes queueing and backpressure behaviour (a
//! closed loop self-throttles and can never overload the runtime). The
//! schedule is Poisson-ish — exponential interarrival gaps — drawn from a
//! tiny linear congruential generator so traces are reproducible without
//! a `rand` dependency, matching the hermetic-build rule.

use std::time::{Duration, Instant};

use crate::runtime::ServeRuntime;
use crate::ServeError;

/// Knuth's MMIX linear congruential generator: deterministic, seedable,
/// and good enough to schedule arrivals and draw token ids.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // Scramble the seed once so small seeds don't start in the
        // low-entropy region of the lattice.
        let mut lcg = Lcg { state: seed ^ 0x9e37_79b9_7f4a_7c15 };
        lcg.next_u64();
        lcg
    }

    /// The next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// A uniform draw in the half-open interval `(0, 1]` (never zero, so
    /// it is safe under `ln`).
    pub fn next_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // The modulo bias is irrelevant at trace scale.
        (self.next_u64() >> 16) % bound
    }
}

/// One synthetic request: an arrival offset from trace start plus the
/// token ids to serve.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// When the request arrives, relative to the start of the replay.
    pub at: Duration,
    /// Token ids, one sequence of length `seq` (values in `[0, vocab)`).
    pub ids: Vec<f32>,
}

/// Generates `n` requests with exponential (Poisson-process) interarrival
/// gaps at `rate_hz` requests/second, each carrying `seq` uniformly drawn
/// token ids below `vocab`. Fully determined by `seed`.
///
/// # Panics
///
/// Panics if `rate_hz <= 0`, `vocab == 0`, or `seq == 0`.
pub fn open_loop_trace(n: usize, rate_hz: f64, seq: usize, vocab: usize, seed: u64) -> Vec<TraceRequest> {
    assert!(rate_hz > 0.0, "rate must be positive");
    assert!(seq > 0 && vocab > 0, "need a nonempty token space");
    let mut lcg = Lcg::new(seed);
    let mut at = 0.0f64;
    (0..n)
        .map(|_| {
            at += -lcg.next_f64().ln() / rate_hz;
            let ids = (0..seq).map(|_| lcg.next_below(vocab as u64) as f32).collect();
            TraceRequest { at: Duration::from_secs_f64(at), ids }
        })
        .collect()
}

/// Outcome tally of an open-loop trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Requests answered with logits.
    pub ok: usize,
    /// Requests rejected at admission ([`ServeError::Overloaded`]).
    pub rejected: usize,
    /// Requests shed past their latency budget.
    pub shed: usize,
    /// Requests that failed for any other reason.
    pub failed: usize,
    /// Wall-clock time from the first submission until every response
    /// was collected.
    pub wall: Duration,
}

impl ReplayReport {
    /// Requests that left the replay without any outcome — always zero
    /// under the runtime's exactly-once delivery contract.
    pub fn lost(&self, submitted: usize) -> usize {
        submitted - self.ok - self.rejected - self.shed - self.failed
    }
}

/// Replays `trace` against `runtime` open-loop: each request is
/// submitted at its arrival time regardless of how the server is keeping
/// up (the discipline that actually exercises queueing, batching, and
/// backpressure), then every outstanding ticket is awaited.
pub fn replay_open_loop(
    runtime: &ServeRuntime,
    model: &str,
    trace: &[TraceRequest],
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut tickets = Vec::with_capacity(trace.len());
    let started = Instant::now();
    for request in trace {
        if let Some(gap) = request.at.checked_sub(started.elapsed()) {
            std::thread::sleep(gap);
        }
        match runtime.submit(model, request.ids.clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded { .. }) => report.rejected += 1,
            Err(_) => report.failed += 1,
        }
    }
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => report.ok += 1,
            Err(ServeError::DeadlineExceeded { .. }) => report.shed += 1,
            Err(ServeError::Overloaded { .. }) => report.rejected += 1,
            Err(_) => report.failed += 1,
        }
    }
    report.wall = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let a = open_loop_trace(64, 100.0, 8, 11, 7);
        let b = open_loop_trace(64, 100.0, 8, 11, 7);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.ids, y.ids);
        }
        assert!(a.windows(2).all(|w| w[0].at < w[1].at), "arrivals must be monotone");
        assert!(a.iter().all(|r| r.ids.iter().all(|&t| (0.0..11.0).contains(&t))));
    }

    #[test]
    fn mean_interarrival_tracks_rate() {
        let t = open_loop_trace(4000, 50.0, 1, 11, 3);
        let mean = t.last().unwrap().at.as_secs_f64() / 4000.0;
        assert!((mean - 0.02).abs() < 0.002, "mean gap {mean} far from 1/50");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        Lcg::new(1).next_below(0);
    }
}
