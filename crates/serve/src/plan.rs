//! Serving plans: an optimized forward graph plus everything needed to
//! execute it repeatedly — pre-bound weights, input handles, and the
//! logits output to slice responses from.
//!
//! A plan is built once per (model, batch bucket, cluster) key by running
//! the Lancet forward optimizer ([`Lancet::optimize_forward`]) over the
//! bucket-sized model graph, then bound against the model's *canonical
//! weights*. Canonical weights are keyed by tensor **name**, not id:
//! the optimizer may renumber tensors while partitioning, and the
//! id-seeded weight initializer would otherwise give every bucket's plan
//! different parameters. Binding by name guarantees all buckets of a
//! model share one set of parameter values — the precondition for
//! micro-batched responses being bit-identical to solo serving.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lancet_cost::ClusterKind;
use lancet_core::{Lancet, OptimizerStats};
use lancet_exec::{init_weights, Bindings, Executor, PrepackStats};
use lancet_ir::{Op, TensorId};
use lancet_models::{build_forward, GptMoeConfig, LayerKv};
use lancet_tensor::{PackedTensor, Tensor};

use crate::{Result, ServeError};

/// What makes two serving plans interchangeable: same model, same batch
/// bucket, same cluster. Anything that changes the optimized graph or
/// its schedule must appear here, or the cache would serve stale plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Registered model name.
    pub model: String,
    /// Micro-batch bucket size (the graph's batch dimension).
    pub bucket: usize,
    /// Sequence length the graph was built for. Classic serving uses the
    /// model's fixed `cfg.seq`; decode prefill buckets sequences by
    /// length, so plans for different lengths must not collide.
    pub seq: usize,
    /// Device generation the cost models were profiled for.
    pub cluster: ClusterKind,
    /// Cluster size the plan was optimized for.
    pub gpus: usize,
}

impl PlanKey {
    /// A deterministic hash of the key, **stable across processes and
    /// runs** — FNV-1a over a canonical little-endian field encoding.
    ///
    /// The fleet router's consistent routing keys on this value: two
    /// front-end processes (or the same one after a restart) must route a
    /// given plan key to the same replica, or every restart would scatter
    /// traffic and cold every replica's plan cache. `Hash`/`HashMap`'s
    /// default `RandomState` is seeded per process and therefore must
    /// never be used on the routing path; this encoding is pinned by a
    /// regression test on its literal value.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.model.as_bytes());
        eat(&[0xFF]); // field separator: a name can't contain 0xFF (UTF-8)
        eat(&(self.bucket as u64).to_le_bytes());
        eat(&(self.seq as u64).to_le_bytes());
        eat(self.cluster.name().as_bytes());
        eat(&[0xFF]);
        eat(&(self.gpus as u64).to_le_bytes());
        h
    }
}

/// Per-device canonical weights for one model, keyed by tensor name.
pub type CanonicalWeights = Vec<HashMap<String, Tensor>>;

/// Per-device prepacked GEMM panels, keyed by weight name — what a model
/// store carries alongside [`CanonicalWeights`] so plans skip the packing
/// pass at build time (see [`Plan::build_with_packs`]).
pub type PackSet = Vec<HashMap<String, Arc<PackedTensor>>>;

/// Materializes the canonical weights for `cfg`: one name → tensor map
/// per device, initialized from the *batch = 1* forward graph so the
/// values are independent of any serving bucket's tensor numbering.
///
/// # Errors
///
/// Returns [`ServeError::Plan`] if the model graph cannot be built or a
/// weight name is not unique (the name is the cross-graph identity).
pub fn canonical_weights(cfg: &GptMoeConfig, seed: u64) -> Result<CanonicalWeights> {
    let model = build_forward(&cfg.clone().with_batch(1))
        .map_err(|e| ServeError::Plan(format!("canonical graph: {e}")))?;
    let devices = cfg.gpus;
    let bindings = init_weights(&model.graph, devices, seed);
    let mut per_device: CanonicalWeights = vec![HashMap::new(); devices];
    for id in model.graph.weights() {
        let name = model.graph.tensor(id).name.clone();
        for (d, map) in per_device.iter_mut().enumerate() {
            let value = bindings
                .get(d, id)
                .expect("init_weights binds every weight on every device")
                .clone();
            if map.insert(name.clone(), value).is_some() {
                return Err(ServeError::Plan(format!(
                    "weight name `{name}` is not unique; names key the canonical store"
                )));
            }
        }
    }
    Ok(per_device)
}

/// An executable serving plan for one (model, bucket, cluster) key.
#[derive(Debug)]
pub struct Plan {
    graph: lancet_ir::Graph,
    /// Weights pre-bound by name; cloned (refcount bump, PR 4's
    /// `Bindings` are `Arc`-backed) per execution.
    weights: Bindings,
    ids: TensorId,
    targets: TensorId,
    logits: TensorId,
    /// Zero targets to satisfy the loss head; token id 0 is always valid.
    targets_zero: Tensor,
    devices: usize,
    bucket: usize,
    /// Per-layer K/V handles harvested for decode prefill; empty for
    /// classic full-sequence plans (see [`Plan::build_prefill`]).
    kv: Vec<LayerKv>,
    /// Shape of one request's response (the logits minus the batch dim).
    response_shape: Vec<usize>,
    /// Cost-model-predicted iteration time for the plan, seconds.
    pub predicted_time: f64,
    /// Wall-clock time plan construction took (graph build + optimize +
    /// weight binding) — the cost a cache hit avoids.
    pub build_time: Duration,
    /// What prepacking the plan's weights into GEMM panel form cost in
    /// resident memory. Per-request clones share these buffers, so this is
    /// the whole footprint regardless of traffic.
    pub prepack: PrepackStats,
    /// Partition-search statistics from the optimizer.
    pub stats: OptimizerStats,
}

impl Plan {
    /// Builds and binds the plan for `bucket` requests of `cfg`'s model.
    ///
    /// `cfg`'s batch is overridden by `bucket`; its other fields (and the
    /// `lancet` optimizer's cluster) must match the key this plan will be
    /// cached under. `canonical` must come from [`canonical_weights`] of
    /// the same config.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Plan`] on graph-construction or optimization
    /// failure, or if `canonical` is missing a weight.
    pub fn build(
        lancet: &Lancet,
        cfg: &GptMoeConfig,
        bucket: usize,
        canonical: &CanonicalWeights,
    ) -> Result<Plan> {
        Plan::build_with(lancet, cfg.clone().with_batch(bucket), bucket, canonical, None, false)
    }

    /// [`Plan::build`], additionally adopting prepacked panels (typically
    /// loaded zero-copy from a model store) for the weights they name.
    /// Matching packs are installed before the prepack pass, which then
    /// skips those weights ([`PrepackStats::reused`]) — a store-loaded
    /// replica builds plans without re-packing anything. Stale or
    /// mismatched packs are rejected per weight and repacked fresh, so a
    /// wrong pack set degrades to [`Plan::build`] rather than failing.
    ///
    /// # Errors
    ///
    /// As [`Plan::build`].
    pub fn build_with_packs(
        lancet: &Lancet,
        cfg: &GptMoeConfig,
        bucket: usize,
        canonical: &CanonicalWeights,
        packs: Option<&PackSet>,
    ) -> Result<Plan> {
        Plan::build_with(lancet, cfg.clone().with_batch(bucket), bucket, canonical, packs, false)
    }

    /// Builds a **prefill** plan: `bucket` sequences of exactly `seq`
    /// tokens, with every layer's K/V projection harvested so a decode
    /// engine can seed its KV cache from one batched forward pass.
    ///
    /// Harvesting holds pre-optimization [`TensorId`]s against the
    /// optimized graph, which is only sound when the optimizer returns
    /// the graph unchanged — i.e. when partitioning is disabled
    /// ([`lancet_core::LancetOptions::decode_serving`]). Any other
    /// configuration is rejected rather than risking dangling handles.
    ///
    /// # Errors
    ///
    /// [`ServeError::Plan`] if `lancet` was not built with
    /// `disable_partition`, plus every failure mode of [`Plan::build`].
    pub fn build_prefill(
        lancet: &Lancet,
        cfg: &GptMoeConfig,
        bucket: usize,
        seq: usize,
        canonical: &CanonicalWeights,
    ) -> Result<Plan> {
        if !lancet.options().disable_partition {
            return Err(ServeError::Plan(
                "prefill KV harvest requires disable_partition (LancetOptions::decode_serving): \
                 partitioning renumbers tensors and would dangle the harvested K/V handles"
                    .into(),
            ));
        }
        Plan::build_with(
            lancet,
            cfg.clone().with_batch(bucket).with_seq(seq),
            bucket,
            canonical,
            None,
            true,
        )
    }

    fn build_with(
        lancet: &Lancet,
        cfg: GptMoeConfig,
        bucket: usize,
        canonical: &CanonicalWeights,
        packs: Option<&PackSet>,
        harvest_kv: bool,
    ) -> Result<Plan> {
        let started = Instant::now();
        let model = build_forward(&cfg).map_err(|e| ServeError::Plan(format!("graph: {e}")))?;
        let kv = if harvest_kv { model.kv.clone() } else { Vec::new() };
        let out = lancet
            .optimize_forward(model.graph)
            .map_err(|e| ServeError::Plan(format!("optimize: {e}")))?;
        let graph = out.graph;

        let input = |name: &str| {
            graph
                .inputs()
                .into_iter()
                .find(|&t| graph.tensor(t).name == name)
                .ok_or_else(|| ServeError::Plan(format!("optimized graph lost input `{name}`")))
        };
        let ids = input("ids")?;
        let targets = input("targets")?;
        // The partition pass never splits the loss head (it partitions
        // the region before it), so the logits are always input 0 of the
        // single CrossEntropy instruction.
        let ce: Vec<_> =
            graph.instrs().iter().filter(|i| matches!(i.op, Op::CrossEntropy)).collect();
        let logits = match ce.as_slice() {
            [only] => only.inputs[0],
            other => {
                return Err(ServeError::Plan(format!(
                    "expected one loss instruction, found {}",
                    other.len()
                )))
            }
        };
        let logits_shape = graph.tensor(logits).shape.dims().to_vec();
        if logits_shape.first() != Some(&bucket) {
            return Err(ServeError::Plan(format!(
                "logits shape {logits_shape:?} does not lead with bucket {bucket}"
            )));
        }

        let devices = cfg.gpus;
        if canonical.len() != devices {
            return Err(ServeError::Plan(format!(
                "canonical weights cover {} devices, plan needs {devices}",
                canonical.len()
            )));
        }
        let mut weights = Bindings::new(devices);
        for id in graph.weights() {
            let def = graph.tensor(id);
            for (d, map) in canonical.iter().enumerate() {
                let value = map.get(&def.name).ok_or_else(|| {
                    ServeError::Plan(format!("no canonical weight named `{}`", def.name))
                })?;
                if value.shape() != def.shape.dims() {
                    return Err(ServeError::Plan(format!(
                        "weight `{}`: canonical shape {:?} != plan shape {:?}",
                        def.name,
                        value.shape(),
                        def.shape.dims()
                    )));
                }
                weights.set(d, id, value.clone());
            }
        }
        // Adopt store-carried panels first: install_pack validates each
        // against the bound value, so a stale set degrades to repacking.
        if let Some(packs) = packs {
            for id in graph.weights() {
                let def = graph.tensor(id);
                for (d, map) in packs.iter().enumerate().take(devices) {
                    if let Some(pack) = map.get(&def.name) {
                        weights.install_pack(d, id, Arc::clone(pack));
                    }
                }
            }
        }
        // Pack matmul weights into the GEMM's panel layout once, at build
        // time — every execution of this cached plan then skips per-call
        // packing (the steady-state serving win PR 8 measures). Weights
        // covered by adopted panels are skipped (`PrepackStats::reused`).
        let prepack = weights.prepack_weights(&graph);

        // Harvested handles must still resolve in the optimized graph
        // (they do whenever partitioning is off and ids are preserved).
        for h in &kv {
            let k_dims = graph.tensor(h.k).shape.dims();
            if k_dims != [bucket, cfg.seq, cfg.hidden] {
                return Err(ServeError::Plan(format!(
                    "harvested K for layer {} has shape {:?}, expected {:?} — \
                     the optimizer did not preserve tensor ids",
                    h.layer,
                    k_dims,
                    [bucket, cfg.seq, cfg.hidden]
                )));
            }
        }

        Ok(Plan {
            targets_zero: Tensor::zeros(graph.tensor(targets).shape.dims()),
            response_shape: logits_shape[1..].to_vec(),
            weights,
            ids,
            targets,
            logits,
            devices,
            bucket,
            kv,
            predicted_time: out.predicted_time,
            build_time: started.elapsed(),
            prepack,
            stats: out.stats,
            graph,
        })
    }

    /// The batch bucket this plan serves.
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// The shape of one request's logits response.
    pub fn response_shape(&self) -> &[usize] {
        &self.response_shape
    }

    /// The optimized plan graph, printable via [`lancet_ir::to_text`]
    /// (tests compare a cached plan against a cold rebuild this way).
    pub fn graph(&self) -> &lancet_ir::Graph {
        &self.graph
    }

    /// Executes the plan on a `[bucket, seq]` tensor of token ids and
    /// returns the full batched logits. Weights are shared with the
    /// canonical store (refcount bump, no copy); only the two inputs are
    /// bound fresh.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on an id-shape mismatch and
    /// [`ServeError::Exec`] if the executor fails.
    pub fn execute(&self, ids: &Tensor) -> Result<Tensor> {
        let want = self.graph.tensor(self.ids).shape.dims();
        if ids.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "ids shape {:?}, plan expects {:?}",
                ids.shape(),
                want
            )));
        }
        let mut bindings = self.weights.clone();
        bindings.set_all(self.ids, ids.clone());
        bindings.set_all(self.targets, self.targets_zero.clone());
        let out = Executor::new_prevalidated(&self.graph, self.devices)
            .run(bindings)
            .map_err(|e| ServeError::Exec(e.to_string()))?;
        Ok(out
            .get(0, self.logits)
            .expect("executor produces the logits")
            .clone())
    }

    /// The per-layer K/V handles this plan harvests (empty unless built
    /// by [`Plan::build_prefill`]).
    pub fn kv_handles(&self) -> &[LayerKv] {
        &self.kv
    }

    /// Executes a prefill plan on a `[bucket, seq]` tensor of token ids,
    /// returning the batched logits **and** every layer's K/V projection
    /// (`[bucket, seq, hidden]` each, layer order) — the tensors a decode
    /// engine copies into its KV cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Plan`] if this plan was not built by
    /// [`Plan::build_prefill`]; otherwise as [`Plan::execute`].
    pub fn execute_prefill(&self, ids: &Tensor) -> Result<(Tensor, Vec<(Tensor, Tensor)>)> {
        if self.kv.is_empty() {
            return Err(ServeError::Plan(
                "plan has no harvested K/V handles; build it with Plan::build_prefill".into(),
            ));
        }
        let want = self.graph.tensor(self.ids).shape.dims();
        if ids.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "ids shape {:?}, plan expects {:?}",
                ids.shape(),
                want
            )));
        }
        let mut bindings = self.weights.clone();
        bindings.set_all(self.ids, ids.clone());
        bindings.set_all(self.targets, self.targets_zero.clone());
        let out = Executor::new_prevalidated(&self.graph, self.devices)
            .run(bindings)
            .map_err(|e| ServeError::Exec(e.to_string()))?;
        let logits = out.get(0, self.logits).expect("executor produces the logits").clone();
        let kv = self
            .kv
            .iter()
            .map(|h| {
                let k = out.get(0, h.k).expect("executor retains the harvested K").clone();
                let v = out.get(0, h.v).expect("executor retains the harvested V").clone();
                (k, v)
            })
            .collect();
        Ok((logits, kv))
    }

    /// Slices request `row`'s logits out of a batched result (shape
    /// [`Plan::response_shape`]). Rows are independent under the
    /// drop-free routing contract, so this is exactly what solo serving
    /// would have produced.
    pub fn response(&self, batched: &Tensor, row: usize) -> Tensor {
        assert!(row < self.bucket, "row {row} out of bucket {}", self.bucket);
        let per = self.response_shape.iter().product::<usize>();
        let data = batched.data()[row * per..(row + 1) * per].to_vec();
        Tensor::from_vec(self.response_shape.clone(), data).expect("slice volume matches shape")
    }
}
