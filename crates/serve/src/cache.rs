//! The plan cache: optimized serving plans keyed by model, batch bucket,
//! and cluster configuration.
//!
//! Plan construction is the expensive end of the serving pipeline (graph
//! build + partition search + cost estimation — the same work as a cold
//! [`Lancet::optimize`]); execution of a cached plan is cheap. The cache
//! therefore sits on the request hot path and keeps hit/miss/evict
//! counters in the style of `PartitionMemo`, so its effectiveness is an
//! observable quantity (`ServeStats::cache`) rather than a guess.
//!
//! Eviction is least-recently-used over a small bounded set: serving
//! traffic concentrates on a handful of (model, bucket) combinations, so
//! a linear-scan LRU is both simple and exact.
//!
//! [`Lancet::optimize`]: lancet_core::Lancet::optimize

use crate::plan::{Plan, PlanKey};
use crate::{Result, ServeError};
use std::sync::{Arc, Mutex};

/// Point-in-time cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered by a cached plan.
    pub hits: u64,
    /// Lookups that required building a plan.
    pub misses: u64,
    /// Plans evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Heap bytes held by resident plans' prepacked weight panels (the
    /// memory cost of skipping per-call GEMM packing; see
    /// [`lancet_exec::PrepackStats`]).
    pub packed_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Most-recently-used last.
    entries: Vec<(PlanKey, Arc<Plan>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe LRU cache of [`Plan`]s.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a cache that can hold nothing would
    /// turn every request into a cold optimization).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache needs capacity for at least one plan");
        PlanCache {
            inner: Mutex::new(Inner { entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }),
            capacity,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        match inner.entries.iter().position(|(k, _)| k == key) {
            Some(at) => {
                inner.hits += 1;
                let entry = inner.entries.remove(at);
                let plan = Arc::clone(&entry.1);
                inner.entries.push(entry);
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `plan` under `key`, evicting the least-recently-used entry
    /// if the cache is full. Returns the resident plan for `key` — the
    /// existing one if another thread won an insert race, otherwise the
    /// one just inserted (so concurrent callers always converge on one
    /// pointer-identical plan per key).
    pub fn insert(&self, key: PlanKey, plan: Plan) -> Arc<Plan> {
        self.insert_arc(key, Arc::new(plan))
    }

    fn insert_arc(&self, key: PlanKey, plan: Arc<Plan>) -> Arc<Plan> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if let Some(at) = inner.entries.iter().position(|(k, _)| k == &key) {
            // Lost an insert race: keep the incumbent so every caller
            // holding this key sees the same Arc.
            let entry = inner.entries.remove(at);
            let resident = Arc::clone(&entry.1);
            inner.entries.push(entry);
            return resident;
        }
        if inner.entries.len() == self.capacity {
            inner.entries.remove(0);
            inner.evictions += 1;
        }
        inner.entries.push((key, Arc::clone(&plan)));
        plan
    }

    /// Looks up `key`; on a miss, builds a plan with `build` (outside the
    /// cache lock, so other keys stay servable during a long build) and
    /// inserts it. Concurrent misses on the same key may build twice, but
    /// all callers receive the same resident plan.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; nothing is inserted on failure.
    pub fn get_or_insert_with<F>(&self, key: &PlanKey, build: F) -> Result<Arc<Plan>>
    where
        F: FnOnce() -> std::result::Result<Plan, ServeError>,
    {
        if let Some(plan) = self.get(key) {
            return Ok(plan);
        }
        let plan = build()?;
        Ok(self.insert_arc(key.clone(), Arc::new(plan)))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("plan cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
            packed_bytes: inner.entries.iter().map(|(_, p)| p.prepack.bytes).sum(),
        }
    }

    /// Resident plan count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resident keys, least-recently-used first (for debugging and
    /// tests; order is the eviction order).
    pub fn keys(&self) -> Vec<PlanKey> {
        self.inner.lock().expect("plan cache lock").entries.iter().map(|(k, _)| k.clone()).collect()
    }
}
