//! Runtime observability: counters, latency percentiles, throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::CacheStats;

/// How many latency samples the percentile window retains. Old samples
/// are overwritten ring-buffer style, so percentiles describe *recent*
/// behaviour on long-running servers while staying O(1) in memory.
const LATENCY_WINDOW: usize = 8192;

/// Shared mutable metric state, updated by every runtime thread.
///
/// Public (with public counters) so sibling runtimes — `lancet-decode`'s
/// step scheduler — report through the same instrument instead of
/// duplicating the ring/percentile machinery.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Requests accepted past the submission checks.
    pub submitted: AtomicU64,
    /// Requests (or decode streams) answered successfully.
    pub completed: AtomicU64,
    /// Requests shed at the door because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests shed because their latency budget had already lapsed.
    pub shed_deadline: AtomicU64,
    /// Requests answered with a terminal error.
    pub failed: AtomicU64,
    /// Requests answered with a timeout error.
    pub timed_out: AtomicU64,
    /// Batches executed (decode: steps run).
    pub batches: AtomicU64,
    /// Requests summed over executed batches (decode: step occupancy).
    pub batched_requests: AtomicU64,
    /// Faults the chaos injector fired.
    pub injected_faults: AtomicU64,
    /// Execution attempts retried after a transient failure.
    pub retried: AtomicU64,
    /// Batches degraded to a fallback path (smaller bucket / eager prefill).
    pub degraded: AtomicU64,
    /// Worker panics isolated (decode: partial-commit crashes survived).
    pub worker_panics: AtomicU64,
    /// Requests routed to their preferred placement.
    pub placement_hits: AtomicU64,
    /// Requests that missed their preferred placement.
    pub placement_misses: AtomicU64,
    /// Requests answered [`ServeError::Crashed`](crate::ServeError::Crashed)
    /// because their replica was killed while they were queued.
    pub crashed: AtomicU64,
    latencies: Mutex<LatencyRing>,
    /// Time-to-first-token samples (decode serving), ms.
    ttft: Mutex<LatencyRing>,
    /// Inter-token-latency samples (decode serving), ms.
    itl: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ms);
        } else {
            let at = self.next;
            self.samples[at] = ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    fn sorted(&self) -> Vec<f64> {
        let mut samples = self.samples.clone();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        samples
    }
}

impl Metrics {
    /// A fresh instrument; `started` anchors the throughput clock.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            injected_faults: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            placement_hits: AtomicU64::new(0),
            placement_misses: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::default()),
            ttft: Mutex::new(LatencyRing::default()),
            itl: Mutex::new(LatencyRing::default()),
        }
    }

    /// Records one served request's end-to-end latency in milliseconds.
    pub fn record_latency(&self, ms: f64) {
        self.latencies.lock().expect("metrics lock").push(ms);
    }

    /// Records one streamed sequence's time-to-first-token, ms.
    pub fn record_ttft(&self, ms: f64) {
        self.ttft.lock().expect("metrics lock").push(ms);
    }

    /// Records one inter-token gap on a streamed sequence, ms.
    pub fn record_itl(&self, ms: f64) {
        self.itl.lock().expect("metrics lock").push(ms);
    }

    /// Builds a consistent snapshot.
    pub fn snapshot(&self, queue_depth: usize, cache: CacheStats) -> ServeStats {
        let samples = self.latencies.lock().expect("metrics lock").sorted();
        let ttft = self.ttft.lock().expect("metrics lock").sorted();
        let itl = self.itl.lock().expect("metrics lock").sorted();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            batches,
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            placement_hits: self.placement_hits.load(Ordering::Relaxed),
            placement_misses: self.placement_misses.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
            queue_depth,
            cache,
            p50_ms: percentile(&samples, 0.50),
            p95_ms: percentile(&samples, 0.95),
            p99_ms: percentile(&samples, 0.99),
            ttft_p50_ms: percentile(&ttft, 0.50),
            ttft_p95_ms: percentile(&ttft, 0.95),
            itl_p50_ms: percentile(&itl, 0.50),
            itl_p95_ms: percentile(&itl, 0.95),
            throughput_rps: completed as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
            mean_batch: if batches == 0 {
                0.0
            } else {
                self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64
            },
            latency_samples: samples,
            ttft_samples: ttft,
            itl_samples: itl,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// The q-th percentile (nearest-rank) of an ascending-sorted sample set;
/// 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A point-in-time view of the runtime's health — the numbers an operator
/// watches and `serve-bench` records.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a response.
    pub completed: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests shed from the queue after exceeding their latency budget.
    pub shed_deadline: u64,
    /// Requests that failed during planning or execution.
    pub failed: u64,
    /// Requests answered with [`ServeError::TimedOut`] because they
    /// out-waited the per-request timeout before execution.
    ///
    /// [`ServeError::TimedOut`]: crate::ServeError::TimedOut
    pub timed_out: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Faults the configured [`FaultSpec`](crate::FaultSpec) injected
    /// (slow workers, panics, execution/plan failures, batcher stalls).
    /// Always zero without fault injection.
    pub injected_faults: u64,
    /// Execution attempts retried after a transient failure.
    pub retried: u64,
    /// Batches degraded to smaller buckets after a plan-build failure.
    pub degraded: u64,
    /// Worker panics isolated by the runtime (the worker thread and all
    /// other requests survived each one).
    pub worker_panics: u64,
    /// Requests executed by the worker their placement preferred (the
    /// one holding their hot expert). Always zero unless affinity
    /// dispatch is enabled (`ServeConfig::affinity`).
    pub placement_hits: u64,
    /// Requests whose batch was stolen by a non-preferred worker —
    /// preference is soft, so a free worker never idles while work is
    /// queued. Zero without affinity dispatch.
    pub placement_misses: u64,
    /// Requests answered [`ServeError::Crashed`] because their replica
    /// was killed while they were queued (chaos testing / fleet
    /// fail-over). The fleet front-end re-routes these; a standalone
    /// runtime surfaces them to the caller.
    ///
    /// [`ServeError::Crashed`]: crate::ServeError::Crashed
    pub crashed: u64,
    /// Requests waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Plan-cache effectiveness counters.
    pub cache: CacheStats,
    /// Median end-to-end latency over the recent window, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency over the recent window, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency over the recent window, ms.
    pub p99_ms: f64,
    /// Median time-to-first-token over the recent window, ms. Zero
    /// unless a decode runtime streams through these metrics.
    pub ttft_p50_ms: f64,
    /// 95th-percentile time-to-first-token, ms.
    pub ttft_p95_ms: f64,
    /// Median inter-token latency over the recent window, ms. Zero
    /// unless a decode runtime streams through these metrics.
    pub itl_p50_ms: f64,
    /// 95th-percentile inter-token latency, ms.
    pub itl_p95_ms: f64,
    /// Completed requests per second since the runtime started.
    pub throughput_rps: f64,
    /// Mean requests per executed micro-batch.
    pub mean_batch: f64,
    /// The sorted end-to-end latency window behind the `p*_ms` fields.
    /// Carried so [`ServeStats::merge`] can recompute exact fleet-wide
    /// percentiles instead of averaging per-replica ones (averaged
    /// percentiles are statistically meaningless under skew).
    pub latency_samples: Vec<f64>,
    /// The sorted time-to-first-token window behind `ttft_p*_ms`.
    pub ttft_samples: Vec<f64>,
    /// The sorted inter-token-latency window behind `itl_p*_ms`.
    pub itl_samples: Vec<f64>,
}

impl ServeStats {
    /// Fraction of plan lookups answered from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Requests that were admitted but never answered. Zero whenever the
    /// runtime has drained (the exactly-once delivery invariant).
    pub fn outstanding(&self) -> u64 {
        self.submitted
            - self.completed
            - self.shed_deadline
            - self.failed
            - self.timed_out
            - self.crashed
    }

    /// Aggregates per-replica snapshots into one fleet-wide view.
    ///
    /// Counters sum. Latency/TTFT/ITL percentiles are recomputed over the
    /// *pooled* sample windows — never averaged per replica, which would
    /// understate tail latency whenever one replica is slower than the
    /// rest. Throughput sums (replicas serve concurrently); `mean_batch`
    /// is weighted by each replica's batch count.
    pub fn merge(stats: &[ServeStats]) -> ServeStats {
        let mut out = ServeStats::default();
        let mut batch_weighted = 0.0;
        for s in stats {
            out.submitted += s.submitted;
            out.completed += s.completed;
            out.rejected_overload += s.rejected_overload;
            out.shed_deadline += s.shed_deadline;
            out.failed += s.failed;
            out.timed_out += s.timed_out;
            out.batches += s.batches;
            out.injected_faults += s.injected_faults;
            out.retried += s.retried;
            out.degraded += s.degraded;
            out.worker_panics += s.worker_panics;
            out.placement_hits += s.placement_hits;
            out.placement_misses += s.placement_misses;
            out.crashed += s.crashed;
            out.queue_depth += s.queue_depth;
            out.cache.hits += s.cache.hits;
            out.cache.misses += s.cache.misses;
            out.cache.evictions += s.cache.evictions;
            out.cache.len += s.cache.len;
            out.cache.packed_bytes += s.cache.packed_bytes;
            out.throughput_rps += s.throughput_rps;
            batch_weighted += s.mean_batch * s.batches as f64;
            out.latency_samples.extend_from_slice(&s.latency_samples);
            out.ttft_samples.extend_from_slice(&s.ttft_samples);
            out.itl_samples.extend_from_slice(&s.itl_samples);
        }
        let sort = |v: &mut Vec<f64>| v.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        sort(&mut out.latency_samples);
        sort(&mut out.ttft_samples);
        sort(&mut out.itl_samples);
        out.p50_ms = percentile(&out.latency_samples, 0.50);
        out.p95_ms = percentile(&out.latency_samples, 0.95);
        out.p99_ms = percentile(&out.latency_samples, 0.99);
        out.ttft_p50_ms = percentile(&out.ttft_samples, 0.50);
        out.ttft_p95_ms = percentile(&out.ttft_samples, 0.95);
        out.itl_p50_ms = percentile(&out.itl_samples, 0.50);
        out.itl_p95_ms = percentile(&out.itl_samples, 0.95);
        out.mean_batch = if out.batches == 0 { 0.0 } else { batch_weighted / out.batches as f64 };
        out
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            submitted: 0,
            completed: 0,
            rejected_overload: 0,
            shed_deadline: 0,
            failed: 0,
            timed_out: 0,
            batches: 0,
            injected_faults: 0,
            retried: 0,
            degraded: 0,
            worker_panics: 0,
            placement_hits: 0,
            placement_misses: 0,
            crashed: 0,
            queue_depth: 0,
            cache: CacheStats::default(),
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            ttft_p50_ms: 0.0,
            ttft_p95_ms: 0.0,
            itl_p50_ms: 0.0,
            itl_p95_ms: 0.0,
            throughput_rps: 0.0,
            mean_batch: 0.0,
            latency_samples: Vec::new(),
            ttft_samples: Vec::new(),
            itl_samples: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn merge_matches_single_instrument_oracle() {
        // Two replicas that each saw half the traffic must merge into the
        // same snapshot one instrument would have produced seeing it all.
        let whole = Metrics::new();
        let a = Metrics::new();
        let b = Metrics::new();
        for i in 0..200u64 {
            let ms = ((i * 37) % 91) as f64 + 0.5;
            whole.record_latency(ms);
            if i % 2 == 0 { a.record_latency(ms) } else { b.record_latency(ms) }
            if i % 3 == 0 {
                whole.record_ttft(ms * 2.0);
                a.record_ttft(ms * 2.0);
            }
            if i % 5 == 0 {
                whole.record_itl(ms / 4.0);
                b.record_itl(ms / 4.0);
            }
        }
        for (m, n) in [(&whole, 200u64), (&a, 100), (&b, 100)] {
            m.submitted.store(n + 8, Ordering::Relaxed);
            m.completed.store(n, Ordering::Relaxed);
            m.failed.store(3, Ordering::Relaxed);
            m.timed_out.store(2, Ordering::Relaxed);
            m.shed_deadline.store(2, Ordering::Relaxed);
            m.crashed.store(1, Ordering::Relaxed);
            m.batches.store(n / 4, Ordering::Relaxed);
            m.batched_requests.store(n, Ordering::Relaxed);
        }

        let oracle = whole.snapshot(3, CacheStats::default());
        let merged = ServeStats::merge(&[
            a.snapshot(1, CacheStats::default()),
            b.snapshot(2, CacheStats::default()),
        ]);

        assert_eq!(merged.completed, oracle.completed);
        assert_eq!(merged.submitted, 216);
        assert_eq!(merged.failed, 6);
        assert_eq!(merged.crashed, 2);
        assert_eq!(merged.queue_depth, 3);
        assert_eq!(merged.batches, oracle.batches);
        assert_eq!(merged.latency_samples, oracle.latency_samples);
        assert_eq!(merged.p50_ms, oracle.p50_ms);
        assert_eq!(merged.p95_ms, oracle.p95_ms);
        assert_eq!(merged.p99_ms, oracle.p99_ms);
        assert_eq!(merged.ttft_p50_ms, oracle.ttft_p50_ms);
        assert_eq!(merged.ttft_p95_ms, oracle.ttft_p95_ms);
        assert_eq!(merged.itl_p50_ms, oracle.itl_p50_ms);
        assert_eq!(merged.itl_p95_ms, oracle.itl_p95_ms);
        assert!((merged.mean_batch - oracle.mean_batch).abs() < 1e-12);
        // outstanding() accounts crashed rows: 216 - 200 - 4 - 6 - 4 - 2 = 0.
        assert_eq!(merged.outstanding(), 0);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged = ServeStats::merge(&[]);
        assert_eq!(merged.submitted, 0);
        assert_eq!(merged.p99_ms, 0.0);
        assert_eq!(merged.mean_batch, 0.0);
        assert_eq!(merged.outstanding(), 0);
    }

    #[test]
    fn latency_window_wraps() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(i as f64);
        }
        let ring = m.latencies.lock().unwrap();
        assert_eq!(ring.samples.len(), LATENCY_WINDOW);
        // The oldest 10 samples were overwritten by the newest 10.
        assert_eq!(ring.samples[0], LATENCY_WINDOW as f64);
        assert_eq!(ring.samples[9], (LATENCY_WINDOW + 9) as f64);
    }
}
