//! Runtime observability: counters, latency percentiles, throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::CacheStats;

/// How many latency samples the percentile window retains. Old samples
/// are overwritten ring-buffer style, so percentiles describe *recent*
/// behaviour on long-running servers while staying O(1) in memory.
const LATENCY_WINDOW: usize = 8192;

/// Shared mutable metric state, updated by every runtime thread.
///
/// Public (with public counters) so sibling runtimes — `lancet-decode`'s
/// step scheduler — report through the same instrument instead of
/// duplicating the ring/percentile machinery.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Requests accepted past the submission checks.
    pub submitted: AtomicU64,
    /// Requests (or decode streams) answered successfully.
    pub completed: AtomicU64,
    /// Requests shed at the door because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests shed because their latency budget had already lapsed.
    pub shed_deadline: AtomicU64,
    /// Requests answered with a terminal error.
    pub failed: AtomicU64,
    /// Requests answered with a timeout error.
    pub timed_out: AtomicU64,
    /// Batches executed (decode: steps run).
    pub batches: AtomicU64,
    /// Requests summed over executed batches (decode: step occupancy).
    pub batched_requests: AtomicU64,
    /// Faults the chaos injector fired.
    pub injected_faults: AtomicU64,
    /// Execution attempts retried after a transient failure.
    pub retried: AtomicU64,
    /// Batches degraded to a fallback path (smaller bucket / eager prefill).
    pub degraded: AtomicU64,
    /// Worker panics isolated (decode: partial-commit crashes survived).
    pub worker_panics: AtomicU64,
    /// Requests routed to their preferred placement.
    pub placement_hits: AtomicU64,
    /// Requests that missed their preferred placement.
    pub placement_misses: AtomicU64,
    latencies: Mutex<LatencyRing>,
    /// Time-to-first-token samples (decode serving), ms.
    ttft: Mutex<LatencyRing>,
    /// Inter-token-latency samples (decode serving), ms.
    itl: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ms);
        } else {
            let at = self.next;
            self.samples[at] = ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    fn sorted(&self) -> Vec<f64> {
        let mut samples = self.samples.clone();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        samples
    }
}

impl Metrics {
    /// A fresh instrument; `started` anchors the throughput clock.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            injected_faults: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            placement_hits: AtomicU64::new(0),
            placement_misses: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::default()),
            ttft: Mutex::new(LatencyRing::default()),
            itl: Mutex::new(LatencyRing::default()),
        }
    }

    /// Records one served request's end-to-end latency in milliseconds.
    pub fn record_latency(&self, ms: f64) {
        self.latencies.lock().expect("metrics lock").push(ms);
    }

    /// Records one streamed sequence's time-to-first-token, ms.
    pub fn record_ttft(&self, ms: f64) {
        self.ttft.lock().expect("metrics lock").push(ms);
    }

    /// Records one inter-token gap on a streamed sequence, ms.
    pub fn record_itl(&self, ms: f64) {
        self.itl.lock().expect("metrics lock").push(ms);
    }

    /// Builds a consistent snapshot.
    pub fn snapshot(&self, queue_depth: usize, cache: CacheStats) -> ServeStats {
        let samples = self.latencies.lock().expect("metrics lock").sorted();
        let ttft = self.ttft.lock().expect("metrics lock").sorted();
        let itl = self.itl.lock().expect("metrics lock").sorted();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            batches,
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            placement_hits: self.placement_hits.load(Ordering::Relaxed),
            placement_misses: self.placement_misses.load(Ordering::Relaxed),
            queue_depth,
            cache,
            p50_ms: percentile(&samples, 0.50),
            p95_ms: percentile(&samples, 0.95),
            p99_ms: percentile(&samples, 0.99),
            ttft_p50_ms: percentile(&ttft, 0.50),
            ttft_p95_ms: percentile(&ttft, 0.95),
            itl_p50_ms: percentile(&itl, 0.50),
            itl_p95_ms: percentile(&itl, 0.95),
            throughput_rps: completed as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
            mean_batch: if batches == 0 {
                0.0
            } else {
                self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64
            },
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// The q-th percentile (nearest-rank) of an ascending-sorted sample set;
/// 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A point-in-time view of the runtime's health — the numbers an operator
/// watches and `serve-bench` records.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a response.
    pub completed: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests shed from the queue after exceeding their latency budget.
    pub shed_deadline: u64,
    /// Requests that failed during planning or execution.
    pub failed: u64,
    /// Requests answered with [`ServeError::TimedOut`] because they
    /// out-waited the per-request timeout before execution.
    ///
    /// [`ServeError::TimedOut`]: crate::ServeError::TimedOut
    pub timed_out: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Faults the configured [`FaultSpec`](crate::FaultSpec) injected
    /// (slow workers, panics, execution/plan failures, batcher stalls).
    /// Always zero without fault injection.
    pub injected_faults: u64,
    /// Execution attempts retried after a transient failure.
    pub retried: u64,
    /// Batches degraded to smaller buckets after a plan-build failure.
    pub degraded: u64,
    /// Worker panics isolated by the runtime (the worker thread and all
    /// other requests survived each one).
    pub worker_panics: u64,
    /// Requests executed by the worker their placement preferred (the
    /// one holding their hot expert). Always zero unless affinity
    /// dispatch is enabled (`ServeConfig::affinity`).
    pub placement_hits: u64,
    /// Requests whose batch was stolen by a non-preferred worker —
    /// preference is soft, so a free worker never idles while work is
    /// queued. Zero without affinity dispatch.
    pub placement_misses: u64,
    /// Requests waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Plan-cache effectiveness counters.
    pub cache: CacheStats,
    /// Median end-to-end latency over the recent window, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency over the recent window, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency over the recent window, ms.
    pub p99_ms: f64,
    /// Median time-to-first-token over the recent window, ms. Zero
    /// unless a decode runtime streams through these metrics.
    pub ttft_p50_ms: f64,
    /// 95th-percentile time-to-first-token, ms.
    pub ttft_p95_ms: f64,
    /// Median inter-token latency over the recent window, ms. Zero
    /// unless a decode runtime streams through these metrics.
    pub itl_p50_ms: f64,
    /// 95th-percentile inter-token latency, ms.
    pub itl_p95_ms: f64,
    /// Completed requests per second since the runtime started.
    pub throughput_rps: f64,
    /// Mean requests per executed micro-batch.
    pub mean_batch: f64,
}

impl ServeStats {
    /// Fraction of plan lookups answered from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Requests that were admitted but never answered. Zero whenever the
    /// runtime has drained (the exactly-once delivery invariant).
    pub fn outstanding(&self) -> u64 {
        self.submitted - self.completed - self.shed_deadline - self.failed - self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn latency_window_wraps() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(i as f64);
        }
        let ring = m.latencies.lock().unwrap();
        assert_eq!(ring.samples.len(), LATENCY_WINDOW);
        // The oldest 10 samples were overwritten by the newest 10.
        assert_eq!(ring.samples[0], LATENCY_WINDOW as f64);
        assert_eq!(ring.samples[9], (LATENCY_WINDOW + 9) as f64);
    }
}
