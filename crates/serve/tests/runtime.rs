//! End-to-end serving-runtime contracts: transparent (bit-identical)
//! micro-batching, plan-cache equivalence with cold optimization,
//! admission control, deadline shedding, and drain-on-shutdown.

use std::sync::Arc;
use std::time::Duration;

use lancet_cost::ClusterSpec;
use lancet_core::{Lancet, LancetOptions};
use lancet_ir::{to_text, GateKind};
use lancet_models::GptMoeConfig;
use lancet_serve::{canonical_weights, Plan, PlanKey, ServeConfig, ServeError, ServeRuntime};

fn tiny() -> GptMoeConfig {
    GptMoeConfig::tiny(1, GateKind::Switch)
}

/// Distinct, deterministic token sequences for request `i`.
fn ids_for(i: usize, cfg: &GptMoeConfig) -> Vec<f32> {
    (0..cfg.seq).map(|s| ((i * 3 + s * 5 + 1) % cfg.vocab) as f32).collect()
}

/// Micro-batched responses carry exactly the bits solo serving produces:
/// batching is a throughput optimization, not a numerics change.
#[test]
fn batched_responses_bit_identical_to_solo() {
    let cfg = tiny();

    // Solo runtime: every request is its own batch of one.
    let solo = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    });
    solo.register_model(cfg.clone()).unwrap();
    let solo_responses: Vec<_> =
        (0..4).map(|i| solo.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    solo.shutdown();

    // Batched runtime: a generous window so all four requests coalesce.
    let batched = ServeRuntime::start(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    batched.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> =
        (0..4).map(|i| batched.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

    let stats = batched.stats();
    assert!(
        stats.batches < stats.completed,
        "requests must actually have shared a batch (batches {}, completed {})",
        stats.batches,
        stats.completed
    );
    batched.shutdown();

    for (i, (batched, solo)) in responses.iter().zip(&solo_responses).enumerate() {
        assert_eq!(batched.shape(), solo.shape());
        assert_eq!(
            batched.data(),
            solo.data(),
            "request {i}: batched response must be bit-identical to solo serving"
        );
    }
}

/// A cache hit returns the same plan a cold optimize would build for the
/// same key — cached serving is an optimization, never a different plan.
#[test]
fn cached_plan_matches_cold_optimize() {
    let cfg = tiny();
    let config = ServeConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let runtime = ServeRuntime::start(config.clone());
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> =
        (0..2).map(|i| runtime.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let key = PlanKey {
        model: cfg.name.clone(),
        bucket: 2,
        seq: cfg.seq,
        cluster: config.cluster,
        gpus: cfg.gpus,
    };
    let cached = runtime.plan_cache().get(&key).expect("the bucket-2 plan is resident");

    // Cold rebuild: fresh optimizer, same normalized config and seed.
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, config.seed).unwrap();
    let lancet = Lancet::new(ClusterSpec::of(config.cluster, 1), cfg.gpus, LancetOptions::default());
    let cold = Plan::build(&lancet, &normalized, 2, &canonical).unwrap();

    assert_eq!(to_text(cached.graph()), to_text(cold.graph()), "same key ⇒ same optimized plan");
    assert_eq!(cached.predicted_time, cold.predicted_time);
    runtime.shutdown();
}

/// Repeat traffic on one bucket is answered from the plan cache.
#[test]
fn repeat_traffic_hits_plan_cache() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    for i in 0..6 {
        runtime.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap();
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.cache.misses, 1, "one bucket ⇒ one plan build");
    assert_eq!(stats.cache.hits, 5);
    assert!(stats.cache_hit_rate() > 0.8);
    assert_eq!(stats.outstanding(), 0);
    runtime.shutdown();
}

/// Admission control: the bounded queue rejects excess load with a typed
/// error instead of queueing without bound.
#[test]
fn overload_is_rejected_at_admission() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        queue_depth: 2,
        max_batch: 8,
        // Long window: requests sit in the admission queue while we fill it.
        batch_window: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();

    let t1 = runtime.submit(&cfg.name, ids_for(0, &cfg)).unwrap();
    let t2 = runtime.submit(&cfg.name, ids_for(1, &cfg)).unwrap();
    let err = runtime.submit(&cfg.name, ids_for(2, &cfg)).unwrap_err();
    assert_eq!(err, ServeError::Overloaded { depth: 2 });
    assert_eq!(runtime.stats().rejected_overload, 1);

    // The admitted requests still complete (shutdown drains the queue).
    runtime.shutdown();
    t1.wait().unwrap();
    t2.wait().unwrap();
    assert_eq!(runtime.stats().completed, 2);
}

/// Requests that out-wait their latency budget are shed with a typed
/// deadline error, not silently dropped or uselessly executed.
#[test]
fn expired_requests_are_shed() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(60),
        latency_budget: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let t1 = runtime.submit(&cfg.name, ids_for(0, &cfg)).unwrap();
    let t2 = runtime.submit(&cfg.name, ids_for(1, &cfg)).unwrap();
    // Neither fills the batch, so both sit past the 1 ms budget and are
    // shed when the 60 ms window closes.
    let e1 = t1.wait().unwrap_err();
    let e2 = t2.wait().unwrap_err();
    for e in [e1, e2] {
        match e {
            ServeError::DeadlineExceeded { waited_ms } => assert!(waited_ms >= 1.0),
            other => panic!("expected deadline shed, got {other:?}"),
        }
    }
    let stats = runtime.stats();
    assert_eq!(stats.shed_deadline, 2);
    assert_eq!(stats.outstanding(), 0);
    runtime.shutdown();
}

/// Malformed requests are rejected synchronously with typed errors.
#[test]
fn malformed_requests_rejected() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig::default());
    runtime.register_model(cfg.clone()).unwrap();

    assert!(matches!(
        runtime.submit("nope", ids_for(0, &cfg)),
        Err(ServeError::UnknownModel(m)) if m == "nope"
    ));
    assert!(matches!(
        runtime.submit(&cfg.name, vec![0.0; cfg.seq + 1]),
        Err(ServeError::BadRequest(_))
    ));
    let mut oob = ids_for(0, &cfg);
    oob[0] = cfg.vocab as f32; // one past the vocabulary
    assert!(matches!(runtime.submit(&cfg.name, oob), Err(ServeError::BadRequest(_))));
    assert!(matches!(
        runtime.register_model(cfg.clone()),
        Err(ServeError::BadRequest(_))
    ));

    runtime.shutdown();
    assert!(matches!(runtime.submit(&cfg.name, ids_for(0, &cfg)), Err(ServeError::ShuttingDown)));
}

/// Shutdown drains: everything admitted before the call still gets its
/// response, and the stats ledger balances to zero outstanding.
#[test]
fn shutdown_drains_admitted_requests() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> =
        (0..3).map(|i| runtime.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    runtime.shutdown(); // long window: requests are still queued here
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.outstanding(), 0);
    assert!(stats.p50_ms > 0.0 && stats.throughput_rps > 0.0);
}

/// Two registered models serve concurrently without sharing plans.
#[test]
fn multiple_models_share_the_runtime() {
    let a = tiny();
    let mut b = tiny();
    b.name = "Tiny-MoE-B".into();
    b.layers = 1;

    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    runtime.register_model(a.clone()).unwrap();
    runtime.register_model(b.clone()).unwrap();

    let ta: Vec<_> = (0..2).map(|i| runtime.submit(&a.name, ids_for(i, &a)).unwrap()).collect();
    let tb: Vec<_> = (0..2).map(|i| runtime.submit(&b.name, ids_for(i, &b)).unwrap()).collect();
    let ra: Vec<_> = ta.into_iter().map(|t| t.wait().unwrap()).collect();
    let rb: Vec<_> = tb.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(ra[0].shape(), &[a.seq, a.vocab]);
    assert_eq!(rb[0].shape(), &[b.seq, b.vocab]);
    // A one-layer and a two-layer model cannot produce identical logits.
    assert_ne!(ra[0].data(), rb[0].data());
    let keys = runtime.plan_cache().keys();
    assert!(keys.iter().any(|k| k.model == a.name) && keys.iter().any(|k| k.model == b.name));
    runtime.shutdown();
}

/// The runtime is usable through an `Arc` from many owners, and dropping
/// the last handle shuts it down cleanly (no thread leak, no hang).
#[test]
fn drop_shuts_down() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig::default());
    runtime.register_model(cfg.clone()).unwrap();
    let clone = Arc::clone(&runtime);
    clone.submit_blocking(&cfg.name, ids_for(0, &cfg)).unwrap();
    drop(clone);
    drop(runtime); // Drop must join the batcher and workers without hanging.
}

/// Affinity dispatch: with one exec worker every batch's preferred
/// worker IS that worker, so each completed request is a placement hit —
/// the deterministic floor the placement-bench smoke asserts. Responses
/// stay bit-identical to a no-affinity run (affinity only picks *which*
/// worker executes, never *what* it computes).
#[test]
fn affinity_single_worker_hits_every_request() {
    let cfg = tiny();
    let plain = ServeRuntime::start(ServeConfig {
        exec_workers: 1,
        ..ServeConfig::default()
    });
    plain.register_model(cfg.clone()).unwrap();
    let baseline: Vec<_> =
        (0..4).map(|i| plain.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    assert_eq!(plain.stats().placement_hits, 0, "affinity off ⇒ no counting");
    plain.shutdown();

    let runtime = ServeRuntime::start(ServeConfig {
        exec_workers: 1,
        affinity: true,
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let responses: Vec<_> =
        (0..4).map(|i| runtime.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    let stats = runtime.stats();
    runtime.shutdown();
    assert_eq!(stats.placement_hits, 4, "single worker: every request lands preferred");
    assert_eq!(stats.placement_misses, 0);
    for (a, b) in responses.iter().zip(&baseline) {
        assert_eq!(a.data(), b.data(), "affinity must not change response bits");
    }
}

/// With several workers, every affinity-tagged request is accounted as
/// exactly one hit or one miss (work stealing keeps the pool busy but
/// never loses a request), and all responses arrive.
#[test]
fn affinity_multi_worker_accounts_every_request() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        exec_workers: 2,
        affinity: true,
        max_batch: 1,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> =
        (0..16).map(|i| runtime.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = runtime.stats();
    runtime.shutdown();
    assert_eq!(stats.completed, 16);
    assert_eq!(
        stats.placement_hits + stats.placement_misses,
        16,
        "every affinity batch is a hit or a miss (hits {}, misses {})",
        stats.placement_hits,
        stats.placement_misses
    );
}
