//! Configuration-surface contracts: `LANCET_SERVE_QUEUE_DEPTH` parsing
//! through the runtime's resolved queue capacity, and the stability of
//! `ServeError`'s typed variants and Display strings (clients match on
//! both; changing them is a breaking change that must fail a test).

use lancet_serve::{ServeConfig, ServeError, ServeRuntime};

/// Every `LANCET_SERVE_QUEUE_DEPTH` parsing variant in one test —
/// process-global env mutation is not safe under the parallel test
/// harness across multiple `#[test]`s, so the scenarios run sequentially
/// here. The resolved bound is observed via `ServeRuntime::queue_capacity`.
#[test]
fn queue_depth_env_parsing() {
    let capacity_with = |env: Option<&str>, configured: usize| -> usize {
        match env {
            Some(v) => std::env::set_var("LANCET_SERVE_QUEUE_DEPTH", v),
            None => std::env::remove_var("LANCET_SERVE_QUEUE_DEPTH"),
        }
        let runtime = ServeRuntime::start(ServeConfig {
            queue_depth: configured,
            exec_workers: 1,
            ..ServeConfig::default()
        });
        let capacity = runtime.queue_capacity();
        runtime.shutdown();
        capacity
    };

    assert_eq!(capacity_with(None, 0), 256, "unset env ⇒ built-in default");
    assert_eq!(capacity_with(Some("64"), 0), 64, "valid env value is honoured");
    assert_eq!(capacity_with(Some(" 32 "), 0), 32, "surrounding whitespace tolerated");
    assert_eq!(capacity_with(Some("garbage"), 0), 256, "unparsable ⇒ default");
    assert_eq!(capacity_with(Some(""), 0), 256, "empty ⇒ default");
    assert_eq!(capacity_with(Some("0"), 0), 256, "zero would admit nothing ⇒ default");
    assert_eq!(capacity_with(Some("-5"), 0), 256, "negative ⇒ default");
    assert_eq!(capacity_with(Some("64"), 8), 8, "an explicit config beats the env");
    std::env::remove_var("LANCET_SERVE_QUEUE_DEPTH");
}

/// Display strings are a stable part of the serving API: operators grep
/// logs for them and clients surface them verbatim.
#[test]
fn error_display_is_stable() {
    let cases: [(ServeError, &str); 9] = [
        (ServeError::UnknownModel("m".into()), "unknown model `m`"),
        (ServeError::BadRequest("why".into()), "bad request: why"),
        (ServeError::Overloaded { depth: 4 }, "overloaded: admission queue full at depth 4"),
        (
            ServeError::DeadlineExceeded { waited_ms: 3.25 },
            "deadline exceeded after 3.2 ms in queue",
        ),
        (ServeError::TimedOut { waited_ms: 7.06 }, "timed out after 7.1 ms"),
        (ServeError::ShuttingDown, "runtime is shutting down"),
        (ServeError::Plan("p".into()), "plan construction failed: p"),
        (ServeError::Exec("e".into()), "execution failed: e"),
        (ServeError::WorkerPanic("w".into()), "worker panicked: w"),
    ];
    for (err, expected) in cases {
        assert_eq!(err.to_string(), expected);
    }
}

/// The typed variants carry their payloads intact (equality and clone
/// are part of the contract — chaos tests and clients compare them).
#[test]
fn error_variants_round_trip() {
    let errors = [
        ServeError::UnknownModel("a".into()),
        ServeError::BadRequest("b".into()),
        ServeError::Overloaded { depth: 16 },
        ServeError::DeadlineExceeded { waited_ms: 1.5 },
        ServeError::TimedOut { waited_ms: 2.5 },
        ServeError::ShuttingDown,
        ServeError::Plan("c".into()),
        ServeError::Exec("d".into()),
        ServeError::WorkerPanic("e".into()),
    ];
    for err in &errors {
        assert_eq!(err, &err.clone(), "clone must preserve the variant and payload");
    }
    // Pairwise distinct: no two variants compare equal.
    for (i, a) in errors.iter().enumerate() {
        for (j, b) in errors.iter().enumerate() {
            assert_eq!(a == b, i == j);
        }
    }
    // They are real std errors (boxable, displayable through the trait).
    let boxed: Box<dyn std::error::Error> = Box::new(ServeError::ShuttingDown);
    assert_eq!(boxed.to_string(), "runtime is shutting down");
}
