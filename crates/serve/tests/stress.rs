//! Concurrency stress: many submitter threads hammering one runtime.
//! The contract under load is exactly-once delivery — every admitted
//! request gets exactly one response — and no deadlock (the test
//! finishing is the assertion).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{ServeConfig, ServeRuntime};

#[test]
fn eight_submitter_threads_all_responses_exactly_once() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 24;

    let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    // Pinned so the assertions below cannot flake on scheduler luck:
    //
    // * `exec_workers: 1` serializes plan builds. The cache's
    //   `get_or_insert_with` deliberately builds outside its lock, so two
    //   workers missing the same key concurrently may both build; with
    //   one worker there is exactly one build per bucket, making the
    //   `misses <= 3` assertion (buckets 1, 2, 4) schedule-independent.
    // * `batch_window: 50ms` makes batching certain rather than likely:
    //   the batcher dispatches a partial batch only after the window
    //   expires, and with eight blocking submitters some pair is always
    //   in the queue together long before 50 ms elapses — so at least one
    //   multi-request batch forms and `mean_batch > 1.0` holds on any
    //   machine, loaded or not.
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(50),
        queue_depth: THREADS * PER_THREAD, // no overload rejections
        exec_workers: 1,
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();

    let ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let runtime = &runtime;
            let cfg = &cfg;
            let ok = &ok;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let ids: Vec<f32> = (0..cfg.seq)
                        .map(|s| ((thread * 31 + i * 7 + s) % cfg.vocab) as f32)
                        .collect();
                    // `wait` consumes the ticket, so a response can be
                    // observed at most once; counting successes proves
                    // "at least once"; together: exactly once.
                    let logits = runtime.submit_blocking(&cfg.name, ids).unwrap();
                    assert_eq!(logits.shape(), &[cfg.seq, cfg.vocab]);
                    assert!(logits.data().iter().all(|x| x.is_finite()));
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(ok.load(Ordering::Relaxed), total);
    let stats = runtime.stats();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed_deadline, 0);
    assert_eq!(stats.rejected_overload, 0);
    assert_eq!(stats.outstanding(), 0, "no request may be lost or double-counted");
    // Concurrent submitters must actually have been batched, and after
    // the first build per bucket every plan lookup is a hit. (See the
    // config comment above for why these cannot flake.)
    assert!(stats.mean_batch > 1.0, "mean batch {}", stats.mean_batch);
    assert!(stats.cache_hit_rate() > 0.9, "hit rate {}", stats.cache_hit_rate());
    assert!(stats.cache.misses <= 3, "at most one build per power-of-two bucket");
    runtime.shutdown();

    // Shutdown is a fence: stats are final and still balanced.
    let after = runtime.stats();
    assert_eq!(after.completed, total);
    assert_eq!(after.queue_depth, 0);
}
