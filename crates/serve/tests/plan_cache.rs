//! Plan-cache semantics: pointer-equal hits, key discrimination,
//! LRU eviction, and scripted counter sequences.

use std::sync::Arc;

use lancet_cost::{ClusterKind, ClusterSpec};
use lancet_core::{Lancet, LancetOptions};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{canonical_weights, Plan, PlanCache, PlanKey};

fn tiny_cfg() -> GptMoeConfig {
    let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    let experts = cfg.experts() as f64;
    cfg.with_capacity_factor(experts)
}

fn optimizer(cluster: ClusterKind, gpus: usize) -> Lancet {
    Lancet::new(ClusterSpec::of(cluster, 1), gpus, LancetOptions::default())
}

fn key(model: &str, bucket: usize, cluster: ClusterKind) -> PlanKey {
    PlanKey { model: model.into(), bucket, seq: 4, cluster, gpus: 1 }
}

fn build_plan(cluster: ClusterKind, bucket: usize) -> Plan {
    let cfg = tiny_cfg();
    let canonical = canonical_weights(&cfg, 7).unwrap();
    Plan::build(&optimizer(cluster, cfg.gpus), &cfg, bucket, &canonical).unwrap()
}

#[test]
fn same_key_returns_pointer_equal_plan() {
    let cache = PlanCache::new(4);
    let k = key("tiny", 2, ClusterKind::A100);
    let first = cache.get_or_insert_with(&k, || Ok(build_plan(ClusterKind::A100, 2))).unwrap();
    let second = cache.get_or_insert_with(&k, || panic!("second lookup must hit")).unwrap();
    assert!(Arc::ptr_eq(&first, &second), "a cache hit must return the resident plan");
}

#[test]
fn distinct_cluster_configs_get_distinct_entries() {
    let cache = PlanCache::new(4);
    let a100 = cache
        .get_or_insert_with(&key("tiny", 1, ClusterKind::A100), || {
            Ok(build_plan(ClusterKind::A100, 1))
        })
        .unwrap();
    let v100 = cache
        .get_or_insert_with(&key("tiny", 1, ClusterKind::V100), || {
            Ok(build_plan(ClusterKind::V100, 1))
        })
        .unwrap();
    assert!(!Arc::ptr_eq(&a100, &v100), "cluster kind must discriminate plans");
    assert_eq!(cache.len(), 2);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}

#[test]
fn eviction_respects_capacity_and_lru_order() {
    let cache = PlanCache::new(2);
    for bucket in [1usize, 2, 4] {
        let k = key("tiny", bucket, ClusterKind::A100);
        cache.get_or_insert_with(&k, || Ok(build_plan(ClusterKind::A100, bucket))).unwrap();
    }
    assert_eq!(cache.len(), 2, "capacity bound must hold");
    assert_eq!(cache.stats().evictions, 1);
    // Bucket 1 was least recently used and must be the one evicted.
    let resident: Vec<usize> = cache.keys().into_iter().map(|k| k.bucket).collect();
    assert_eq!(resident, vec![2, 4]);

    // Touching bucket 2 protects it from the next eviction.
    assert!(cache.get(&key("tiny", 2, ClusterKind::A100)).is_some());
    cache.get_or_insert_with(&key("tiny", 8, ClusterKind::A100), || {
        Ok(build_plan(ClusterKind::A100, 8))
    })
    .unwrap();
    let resident: Vec<usize> = cache.keys().into_iter().map(|k| k.bucket).collect();
    assert_eq!(resident, vec![2, 8], "bucket 4 was LRU after the touch");
}

#[test]
fn counters_match_scripted_sequence() {
    let cache = PlanCache::new(2);
    let k1 = key("tiny", 1, ClusterKind::A100);
    let k2 = key("tiny", 2, ClusterKind::A100);

    assert!(cache.get(&k1).is_none()); //                         miss 1
    cache.insert(k1.clone(), build_plan(ClusterKind::A100, 1));
    assert!(cache.get(&k1).is_some()); //                         hit 1
    assert!(cache.get(&k1).is_some()); //                         hit 2
    assert!(cache.get(&k2).is_none()); //                         miss 2
    cache.get_or_insert_with(&k2, || Ok(build_plan(ClusterKind::A100, 2))).unwrap(); // miss 3
    cache.get_or_insert_with(&k2, || panic!("must hit")).unwrap(); //               hit 3

    let stats = cache.stats();
    assert_eq!(stats.hits, 3, "scripted hits");
    assert_eq!(stats.misses, 3, "scripted misses");
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.len, 2);
    assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn packed_bytes_track_resident_plans() {
    let cache = PlanCache::new(2);
    let k1 = key("tiny", 1, ClusterKind::A100);
    let plan = cache.get_or_insert_with(&k1, || Ok(build_plan(ClusterKind::A100, 1))).unwrap();
    assert!(plan.prepack.tensors > 0, "a GPT-MoE plan has matmul weights to prepack");
    assert!(plan.prepack.bytes > 0);
    assert_eq!(cache.stats().packed_bytes, plan.prepack.bytes);

    let k2 = key("tiny", 2, ClusterKind::A100);
    let plan2 = cache.get_or_insert_with(&k2, || Ok(build_plan(ClusterKind::A100, 2))).unwrap();
    assert_eq!(cache.stats().packed_bytes, plan.prepack.bytes + plan2.prepack.bytes);

    // Eviction releases the evicted plan's share of the footprint.
    let k3 = key("tiny", 4, ClusterKind::A100);
    let plan3 = cache.get_or_insert_with(&k3, || Ok(build_plan(ClusterKind::A100, 4))).unwrap();
    assert_eq!(cache.stats().packed_bytes, plan2.prepack.bytes + plan3.prepack.bytes);
}

#[test]
fn stable_hash_is_pinned_across_processes() {
    // Fleet routing keys on this value; it must never depend on process
    // state (`RandomState`, ASLR, …). The literal pins the FNV-1a
    // construction — if this test breaks, replicas built from different
    // binaries would route the same key to different shards.
    let k = key("tiny", 2, ClusterKind::A100);
    assert_eq!(k.stable_hash(), 0xf7a9_5dee_d97e_f35c);
    assert_eq!(k.stable_hash(), k.clone().stable_hash(), "pure function of the key");

    // Every field must perturb the hash.
    let base = k.stable_hash();
    let variants = [
        key("tinz", 2, ClusterKind::A100),
        key("tiny", 4, ClusterKind::A100),
        key("tiny", 2, ClusterKind::V100),
        PlanKey { seq: 8, ..k.clone() },
        PlanKey { gpus: 2, ..k.clone() },
    ];
    for v in variants {
        assert_ne!(v.stable_hash(), base, "{v:?} must hash differently");
    }
}

#[test]
fn failed_build_inserts_nothing() {
    let cache = PlanCache::new(2);
    let k = key("tiny", 1, ClusterKind::A100);
    let err = cache
        .get_or_insert_with(&k, || Err(lancet_serve::ServeError::Plan("boom".into())))
        .unwrap_err();
    assert!(matches!(err, lancet_serve::ServeError::Plan(_)));
    assert!(cache.is_empty());
    assert_eq!(cache.stats().misses, 1);
}
