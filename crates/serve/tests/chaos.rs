//! Chaos conformance for the serving runtime: under deterministic fault
//! injection, every admitted request still gets exactly one reply (a
//! response or a typed error), seeded replays reproduce identical fault
//! counters, and the optimized (partitioned) plans stay bit-identical to
//! unpartitioned references even on a fault-degraded backend.

use std::time::Duration;

use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{FaultSpec, ServeConfig, ServeError, ServeRuntime, ServeStats};

fn tiny() -> GptMoeConfig {
    GptMoeConfig::tiny(1, GateKind::Switch)
}

/// Distinct, deterministic token sequences for request `i`.
fn ids_for(i: usize, cfg: &GptMoeConfig) -> Vec<f32> {
    (0..cfg.seq).map(|s| ((i * 3 + s * 5 + 1) % cfg.vocab) as f32).collect()
}

/// The counters a seeded replay must reproduce exactly. Latency
/// percentiles and throughput are wall-clock and excluded by design.
fn fault_ledger(stats: &ServeStats) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.timed_out,
        stats.injected_faults,
        stats.retried,
        stats.degraded,
        stats.worker_panics,
    )
}

/// Drives `n` sequential requests through a single-worker, batch-of-one
/// runtime — the deterministic configuration: every fault draw happens in
/// one fixed global order, so counters are replayable.
fn deterministic_drive(seed: u64, n: usize) -> (ServeStats, Vec<Result<Vec<f32>, ServeError>>) {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        exec_workers: 1,
        fault: Some(FaultSpec::chaos(seed)),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let replies: Vec<_> = (0..n)
        .map(|i| runtime.submit_blocking(&cfg.name, ids_for(i, &cfg)).map(|t| t.data().to_vec()))
        .collect();
    runtime.shutdown();
    (runtime.stats(), replies)
}

/// Exactly-once under chaos: every admitted request gets one reply — a
/// response or a *typed* error — and the ledger drains to zero
/// outstanding. No fault schedule may lose a ticket.
#[test]
fn no_admitted_request_is_lost_under_chaos() {
    let cfg = tiny();
    for seed in [0xC4A05u64, 3, 77] {
        let runtime = ServeRuntime::start(ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            fault: Some(FaultSpec::chaos(seed)),
            ..ServeConfig::default()
        });
        runtime.register_model(cfg.clone()).unwrap();
        let tickets: Vec<_> =
            (0..24).map(|i| runtime.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
        let mut ok = 0u64;
        let mut typed_errors = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(response) => {
                    assert_eq!(response.shape(), &[cfg.seq, cfg.vocab]);
                    ok += 1;
                }
                Err(
                    ServeError::Exec(_)
                    | ServeError::Plan(_)
                    | ServeError::WorkerPanic(_)
                    | ServeError::TimedOut { .. },
                ) => typed_errors += 1,
                Err(other) => panic!("seed {seed}: untyped chaos outcome {other:?}"),
            }
        }
        runtime.shutdown();
        let stats = runtime.stats();
        assert_eq!(ok + typed_errors, 24, "seed {seed}: every ticket answered exactly once");
        assert_eq!(stats.outstanding(), 0, "seed {seed}: ledger must drain");
        assert_eq!(stats.completed, ok);
    }
}

/// Seeded replay: the same chaos seed over the same request sequence
/// reproduces the fault/recovery counters *and* every reply bit, run
/// after run.
#[test]
fn seeded_chaos_replay_reproduces_stats() {
    let seed = 0xC4A05;
    let (stats_a, replies_a) = deterministic_drive(seed, 16);
    let (stats_b, replies_b) = deterministic_drive(seed, 16);
    assert_eq!(fault_ledger(&stats_a), fault_ledger(&stats_b), "replay must reproduce counters");
    assert_eq!(replies_a, replies_b, "replay must reproduce every reply bit");
    assert!(stats_a.injected_faults > 0, "the chaos spec must actually inject");
    // A different seed is a different experiment.
    let (stats_c, _) = deterministic_drive(seed ^ 1, 16);
    assert_ne!(
        fault_ledger(&stats_a),
        fault_ledger(&stats_c),
        "different seeds should draw different fault schedules"
    );
}

/// Bounded retry masks transient execution failures: with headroom in
/// `max_retries`, injected exec faults cost retries, not failed requests.
#[test]
fn retry_masks_transient_exec_failures() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        exec_workers: 1,
        max_retries: 8,
        retry_backoff: Duration::from_micros(100),
        fault: Some(FaultSpec { exec_fail: 0.4, ..FaultSpec::quiet(0xC4A05) }),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    for i in 0..8 {
        runtime.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap();
    }
    runtime.shutdown();
    let stats = runtime.stats();
    assert_eq!(stats.completed, 8, "retries must absorb every transient fault");
    assert_eq!(stats.failed, 0);
    assert!(stats.retried > 0, "the 40% fault rate must have fired at least once");
    assert_eq!(stats.injected_faults, stats.retried, "every exec fault costs one retry");
}

/// Plan-build failure degrades the batch to smaller buckets instead of
/// failing wholesale, and bottoms out in typed errors when no bucket
/// builds.
#[test]
fn plan_failure_degrades_then_fails_typed() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(250),
        exec_workers: 1,
        fault: Some(FaultSpec { plan_fail: 1.0, ..FaultSpec::quiet(5) }),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    let tickets: Vec<_> =
        (0..4).map(|i| runtime.submit(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    for t in tickets {
        match t.wait() {
            Err(ServeError::Plan(_)) => {}
            other => panic!("expected a typed plan failure, got {other:?}"),
        }
    }
    runtime.shutdown();
    let stats = runtime.stats();
    assert_eq!(stats.failed, 4);
    assert_eq!(stats.outstanding(), 0);
    if stats.batches < stats.submitted {
        // Requests actually shared a batch, so the halving path ran
        // before bottoming out at single-request buckets.
        assert!(stats.degraded >= 1, "multi-request batch with failing plans must degrade");
    }
}

/// A panicking worker is isolated: its batch gets typed errors, the
/// worker thread survives, and later requests are served normally.
#[test]
fn worker_panic_is_isolated() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        exec_workers: 1,
        fault: Some(FaultSpec { worker_panic: 1.0, ..FaultSpec::quiet(9) }),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    for i in 0..3 {
        match runtime.submit_blocking(&cfg.name, ids_for(i, &cfg)) {
            Err(ServeError::WorkerPanic(why)) => assert!(why.contains("injected")),
            other => panic!("expected an isolated panic, got {other:?}"),
        }
    }
    runtime.shutdown();
    let stats = runtime.stats();
    // Three panics answered by the same lone worker thread: isolation,
    // not thread replacement, keeps the pool alive.
    assert_eq!(stats.worker_panics, 3);
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.outstanding(), 0);
}

/// The per-request timeout answers stale requests with a typed error: a
/// stalled batcher holds the batch past the deadline, and the worker
/// refuses to execute it late.
#[test]
fn timeout_answers_stale_requests() {
    let cfg = tiny();
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        exec_workers: 1,
        request_timeout: Duration::from_millis(5),
        fault: Some(FaultSpec {
            queue_stall: 1.0,
            stall_delay: Duration::from_millis(20),
            ..FaultSpec::quiet(2)
        }),
        ..ServeConfig::default()
    });
    runtime.register_model(cfg.clone()).unwrap();
    match runtime.submit_blocking(&cfg.name, ids_for(0, &cfg)) {
        Err(ServeError::TimedOut { waited_ms }) => assert!(waited_ms >= 5.0),
        other => panic!("expected a timeout, got {other:?}"),
    }
    runtime.shutdown();
    let stats = runtime.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.outstanding(), 0);
}

/// The optimized (partitioned) plans stay bit-identical to unpartitioned
/// references even when the backend is fault-degraded — slow workers,
/// transient failures masked by retries, stalled batches. Faults may cost
/// time, never bits.
#[test]
fn optimized_plans_bit_identical_on_degraded_backend() {
    let cfg = tiny();

    // Healthy, unpartitioned reference.
    let reference = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        partition: false,
        ..ServeConfig::default()
    });
    reference.register_model(cfg.clone()).unwrap();
    let expected: Vec<_> =
        (0..6).map(|i| reference.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap()).collect();
    reference.shutdown();

    // Partitioned plans on a degraded (slow but correct) backend.
    let degraded = ServeRuntime::start(ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        exec_workers: 1,
        partition: true,
        max_retries: 16,
        retry_backoff: Duration::from_micros(100),
        fault: Some(FaultSpec {
            slow_worker: 0.5,
            slow_delay: Duration::from_millis(1),
            exec_fail: 0.3,
            queue_stall: 0.25,
            stall_delay: Duration::from_millis(1),
            ..FaultSpec::quiet(0xC4A05)
        }),
        ..ServeConfig::default()
    });
    degraded.register_model(cfg.clone()).unwrap();
    for (i, want) in expected.iter().enumerate() {
        let got = degraded.submit_blocking(&cfg.name, ids_for(i, &cfg)).unwrap();
        assert_eq!(got.shape(), want.shape());
        assert_eq!(
            got.data(),
            want.data(),
            "request {i}: degraded partitioned response must be bit-identical"
        );
    }
    degraded.shutdown();
    let stats = degraded.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 0);
    assert!(stats.injected_faults > 0, "the degraded run must actually have been degraded");
}
